"""The fleet as a third request source in both engines."""

import pytest

from repro.core.algorithms import Algorithm
from repro.core.fast import FastEngine
from repro.core.simulation import ReferenceEngine
from tests.conftest import small_config


def fleet_config(algorithm=Algorithm.IPP, **overrides):
    """The 20-page system plus a 40-client fleet at aggregate load 0.25."""
    return small_config(algorithm, fleet__num_clients=40,
                        fleet__think_time=160.0, fleet__cache_size=5,
                        **overrides)


class TestFleetInEngines:
    @pytest.mark.parametrize("engine_cls", [FastEngine, ReferenceEngine])
    def test_run_result_carries_fleet_snapshot(self, engine_cls):
        fleet = engine_cls(fleet_config()).run().fleet
        assert fleet is not None
        assert fleet["num_clients"] == 40
        assert fleet["generated"] > 0
        assert fleet["delivered"] > 0
        assert fleet["offered"] > 0
        assert fleet["mean_wait"] >= 0.0
        assert 0.0 < fleet["jain_index"] <= 1.0

    def test_without_fleet_result_field_is_none(self):
        assert FastEngine(small_config()).run().fleet is None

    def test_same_seed_repeats_exactly(self):
        config = fleet_config()
        assert FastEngine(config).run().fleet == FastEngine(config).run().fleet

    def test_seed_change_varies_fleet_statistics(self):
        first = FastEngine(fleet_config()).run().fleet
        other = FastEngine(fleet_config(run__seed=99)).run().fleet
        assert first != other

    def test_fleet_disables_pure_push_analytic_shortcut(self):
        """Pure Push normally takes the analytic path, which never ticks
        individual slots; a fleet needs them, so the general loop runs."""
        result = FastEngine(fleet_config(Algorithm.PURE_PUSH)).run()
        assert result.fleet is not None
        assert result.fleet["delivered"] > 0
        # No backchannel: fleet pulls are discarded, never enqueued.
        assert result.requests_enqueued == 0

    @pytest.mark.parametrize("engine_cls", [FastEngine, ReferenceEngine])
    def test_heterogeneous_fleet_runs(self, engine_cls):
        config = fleet_config(fleet__think_time_spread=0.5,
                              fleet__zipf_offset_spread=5,
                              fleet__cache_size_spread=0.5)
        fleet = engine_cls(config).run().fleet
        assert fleet["users_measured"] > 0
        assert 0.0 < fleet["jain_index"] <= 1.0

    def test_fleet_counters_cover_only_the_measured_window(self):
        """Doubling the measured window roughly doubles fleet activity —
        the engine resets fleet accounting at the measure boundary."""
        short = FastEngine(fleet_config(run__measure_accesses=150)).run()
        long = FastEngine(fleet_config(run__measure_accesses=300)).run()
        ratio = long.measured_slots / short.measured_slots
        assert long.fleet["generated"] == pytest.approx(
            short.fleet["generated"] * ratio, rel=0.35)

    def test_generated_partitions_into_hits_and_misses(self):
        result = FastEngine(fleet_config()).run()
        fleet = result.fleet
        misses = fleet["delivered"] + fleet["still_waiting"]
        # Deliveries of requests issued before the measurement boundary
        # can exceed the post-boundary miss count by at most the fleet
        # size (each client has at most one outstanding request).
        assert abs(fleet["generated"] - fleet["absorbed"] - misses) <= 40
