"""Fleet sweep figure and aggregate-parity harness at tiny scale."""

import math

import pytest

from repro.core.fast import FastEngine
from repro.experiments.base import Profile
from repro.fleet import (
    FAIRNESS_METRICS,
    PAPER_PULL_BWS,
    PARITY_PULL_BWS,
    fleet_parity_report,
    fleet_sweep_figure,
)
from tests.conftest import small_config

TINY = Profile(settle_accesses=20, measure_accesses=60, replicates=2,
               base_seed=3)


class TestFairnessMetrics:
    def test_metric_requires_fleet_statistics(self):
        result = FastEngine(small_config()).run()
        with pytest.raises(ValueError):
            FAIRNESS_METRICS["mean user wait"](result)

    def test_parity_grid_is_a_stable_subset_of_the_papers(self):
        assert set(PARITY_PULL_BWS) < set(PAPER_PULL_BWS)
        assert 0.30 not in PARITY_PULL_BWS  # the saturation-cliff point


class TestFleetSweepFigure:
    def test_tiny_sweep_produces_all_series(self):
        figure = fleet_sweep_figure(TINY, num_clients=30,
                                    pull_bws=(0.2, 0.5), think_time=120.0)
        assert figure.figure_id == "fleet-pullbw"
        assert [s.label for s in figure.series] == list(FAIRNESS_METRICS)
        for series in figure.series:
            assert series.x == [0.2, 0.5]
            assert len(series.points) == 2
        by_label = {s.label: s for s in figure.series}
        assert all(math.isfinite(y) for y in by_label["mean user wait"].y)
        assert all(0.0 < y <= 1.0 for y in by_label["jain index"].y)
        assert figure.manifest is not None

    def test_dispersion_brackets_the_mean(self):
        figure = fleet_sweep_figure(TINY, num_clients=30,
                                    pull_bws=(0.3,), think_time=120.0)
        by_label = {s.label: s for s in figure.series}
        low = by_label["min user wait"].y[0]
        mean = by_label["mean user wait"].y[0]
        high = by_label["max user wait"].y[0]
        assert low <= mean <= high


class TestFleetParityReport:
    def test_tiny_parity_report_structure(self):
        report = fleet_parity_report(TINY, num_clients=20,
                                     pull_bws=(0.2, 0.5))
        assert set(report) >= {
            "num_clients", "fleet_think_time", "aggregate_response",
            "fleet_response", "comparison", "rate_checks",
            "worst_rate_error", "rate_ok", "ordering_ok", "exit_code"}
        # Tiny runs are noisy; parity may drift (1) but must never be
        # structurally broken (2).
        assert report["exit_code"] in (0, 1)
        assert len(report["aggregate_response"]) == 2
        assert len(report["fleet_response"]) == 2
        assert len(report["rate_checks"]) == 2 * TINY.replicates
        for check in report["rate_checks"]:
            assert check["observed_rate"] > 0.0
            assert check["expected_rate"] > 0.0
            assert check["relative_error"] >= 0.0
        assert report["comparison"]["left"] == "aggregate-vc"
        assert report["comparison"]["right"] == "homogeneous-fleet"
