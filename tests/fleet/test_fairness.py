"""Unit tests for Jain's fairness index."""

import math

import numpy as np
import pytest

from repro.fleet import jain_index


class TestJainIndex:
    def test_empty_population_is_nan(self):
        assert math.isnan(jain_index([]))

    def test_equal_allocation_is_one(self):
        assert jain_index([3.0, 3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_all_zero_is_perfectly_fair(self):
        assert jain_index([0.0, 0.0, 0.0]) == 1.0

    def test_single_user_dominating_approaches_one_over_n(self):
        assert jain_index([7.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_known_value(self):
        # (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
        assert jain_index([1.0, 2.0, 3.0]) == pytest.approx(36.0 / 42.0)

    def test_scale_invariant(self):
        values = [1.0, 2.0, 5.0, 9.0]
        scaled = [v * 1000.0 for v in values]
        assert jain_index(values) == pytest.approx(jain_index(scaled))

    def test_accepts_numpy_arrays(self):
        assert jain_index(np.ones(100)) == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index([1.0, -0.5])

    def test_non_finite_rejected(self):
        for bad in (math.nan, math.inf):
            with pytest.raises(ValueError):
                jain_index([1.0, bad])
