"""Unit tests for the struct-of-arrays client fleet."""

import math

import numpy as np
import pytest

from repro.fleet.state import FleetState
from repro.workload.zipf import zipf_probabilities


def make_fleet(num_clients=8, mean_think_time=5.0, think_time_spread=0.0,
               zipf_offset_spread=0, cache_size=3, cache_size_spread=0.0,
               steady_state_perc=0.0, db_size=20, seed=0):
    probs = zipf_probabilities(db_size, 0.95)
    return FleetState(
        num_clients=num_clients, mean_think_time=mean_think_time,
        think_time_spread=think_time_spread,
        zipf_offset_spread=zipf_offset_spread,
        cache_size=cache_size, cache_size_spread=cache_size_spread,
        steady_state_perc=steady_state_perc, probabilities=probs,
        value_order=np.arange(db_size, dtype=np.int64),
        threshold=None, rng=np.random.default_rng(seed))


class TestConstruction:
    def test_zero_clients_rejected(self):
        with pytest.raises(ValueError):
            make_fleet(num_clients=0)

    def test_nonpositive_think_time_rejected(self):
        with pytest.raises(ValueError):
            make_fleet(mean_think_time=0.0)

    def test_homogeneous_population(self):
        fleet = make_fleet()
        assert (fleet.offsets == 0).all()
        assert np.allclose(fleet.think_means, 5.0)
        assert (fleet.cache_sizes == 3).all()
        assert not fleet.steady.any()

    def test_heterogeneous_draws_stay_bounded(self):
        fleet = make_fleet(num_clients=200, think_time_spread=0.5,
                           zipf_offset_spread=7, cache_size_spread=0.5)
        assert fleet.think_means.min() >= 2.5 - 1e-9
        assert fleet.think_means.max() <= 7.5 + 1e-9
        assert len(set(fleet.think_means.tolist())) > 1
        assert fleet.offsets.min() >= 0
        assert fleet.offsets.max() <= 7
        assert (fleet.cache_sizes >= 0).all()

    def test_think_spread_does_not_shift_other_draws(self):
        """Static attributes are drawn in a fixed order, so toggling one
        heterogeneity knob must not change later knobs' sequences."""
        base = make_fleet(num_clients=50, seed=3)
        spread = make_fleet(num_clients=50, seed=3, think_time_spread=0.5)
        assert np.array_equal(base.offsets, spread.offsets)
        assert np.array_equal(base.cache_sizes, spread.cache_sizes)
        assert np.array_equal(base.steady, spread.steady)


class TestGenerateDeliver:
    def test_no_accesses_before_horizon(self):
        fleet = make_fleet()
        fleet.next_access[:] = 100.0
        assert fleet.generate(0, 0).size == 0
        assert fleet.generated == 0

    def test_miss_registers_waiter(self):
        fleet = make_fleet(num_clients=4, db_size=1)
        fleet.next_access[:] = 0.25
        pages = fleet.generate(0, 0)
        assert pages.tolist() == [0, 0, 0, 0]
        assert (fleet.outstanding == 0).all()
        assert np.isinf(fleet.next_access).all()
        assert fleet.generated == 4
        assert fleet.offered == 4

    def test_deliver_completes_every_snooper(self):
        fleet = make_fleet(num_clients=4, db_size=1)
        fleet.next_access[:] = 0.25
        fleet.generate(0, 0)
        fleet.deliver(0, 3.0)
        assert fleet.delivered == 4
        assert (fleet.wait_count == 1).all()
        assert np.allclose(fleet.wait_sum, 2.75)
        assert (fleet.outstanding == -1).all()
        assert np.isfinite(fleet.next_access).all()

    def test_deliver_unwaited_page_is_noop(self):
        fleet = make_fleet()
        fleet.deliver(5, 1.0)
        assert fleet.delivered == 0

    def test_warm_cache_absorbs_everything_within_reach(self):
        fleet = make_fleet(num_clients=6, db_size=4, cache_size=5,
                           steady_state_perc=1.0, mean_think_time=20.0)
        fleet.next_access[:] = 0.5
        out = fleet.generate(0, 0)
        assert out.size == 0
        assert fleet.absorbed_by_cache == fleet.generated
        assert fleet.generated >= 6
        assert (fleet.wait_count >= 1).all()
        snap = fleet.snapshot()
        assert snap["user_wait_mean"] == 0.0
        assert snap["jain_index"] == 1.0

    def test_offset_rotates_wire_pages(self):
        base = make_fleet(num_clients=5, db_size=4, seed=11)
        rotated = make_fleet(num_clients=5, db_size=4, seed=11)
        rotated.offsets[:] = 2
        base.next_access[:] = 0.5
        rotated.next_access[:] = 0.5
        pages = base.generate(0, 0)
        assert rotated.generate(0, 0).tolist() == ((pages + 2) % 4).tolist()


class TestResetAndSnapshot:
    def test_reset_keeps_inflight_request_times(self):
        fleet = make_fleet(num_clients=3, db_size=1)
        fleet.next_access[:] = 0.5
        fleet.generate(0, 0)
        fleet.reset_stats()
        assert fleet.generated == 0
        assert fleet.offered == 0
        assert fleet.snapshot()["still_waiting"] == 3
        fleet.deliver(0, 4.0)
        # The pre-reset request time survives: waits span the boundary.
        assert np.allclose(fleet.wait_sum, 3.5)

    def test_snapshot_without_completions_is_nan(self):
        snap = make_fleet().snapshot()
        assert snap["users_measured"] == 0
        assert math.isnan(snap["mean_wait"])
        assert math.isnan(snap["user_wait_p99"])
        assert math.isnan(snap["jain_index"])

    def test_snapshot_keys_are_stable(self):
        assert set(make_fleet().snapshot()) == {
            "num_clients", "users_measured", "still_waiting",
            "generated", "absorbed", "filtered", "offered", "delivered",
            "mean_wait", "max_wait",
            "user_wait_mean", "user_wait_min", "user_wait_max",
            "user_wait_p50", "user_wait_p90", "user_wait_p99",
            "jain_index",
        }

    def test_still_waiting_clients_are_censored(self):
        fleet = make_fleet(num_clients=2, db_size=20, seed=1)
        fleet.next_access[:] = 0.5
        fleet.generate(0, 0)
        first, second = fleet.outstanding.tolist()
        assert first != second  # distinct pages for this seed
        fleet.deliver(first, 2.0)
        snap = fleet.snapshot()
        assert snap["users_measured"] == 1
        assert snap["still_waiting"] == 1
        assert snap["mean_wait"] == pytest.approx(1.5)

    def test_set_threshold_slots_updates_fast_path(self):
        fleet = make_fleet()
        fleet.set_threshold_slots(7.0)
        assert fleet._threshold_slots == 7.0
