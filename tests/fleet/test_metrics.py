"""Unit tests for the fleet -> metrics-registry adapter."""

import math

from repro.fleet import bind_fleet_metrics
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY

COUNTERS = ("generated", "absorbed", "filtered", "offered", "delivered")
GAUGES = ("num_clients", "users_measured", "still_waiting",
          "mean_wait", "max_wait",
          "user_wait_mean", "user_wait_min", "user_wait_max",
          "user_wait_p50", "user_wait_p90", "user_wait_p99",
          "jain_index")


class StubFleet:
    """Snapshot-only stand-in for a FleetState."""

    def __init__(self):
        self.stats = {name: 0 for name in COUNTERS}
        self.stats.update({name: math.nan for name in GAUGES})
        self.stats.update(num_clients=10, users_measured=0, still_waiting=0)

    def snapshot(self):
        return dict(self.stats)


class TestFleetMetricsAdapter:
    def test_bind_creates_full_instrument_set_at_zero(self):
        registry = MetricsRegistry()
        bind_fleet_metrics(registry, StubFleet())
        for name in COUNTERS:
            assert registry.counter(f"fleet_{name}_total").value == 0
        for name in GAUGES:
            assert f"fleet_{name}" in registry

    def test_counters_export_deltas(self):
        registry = MetricsRegistry()
        fleet = StubFleet()
        adapter = bind_fleet_metrics(registry, fleet)
        fleet.stats["generated"] = 5
        adapter.sync()
        assert registry.counter("fleet_generated_total").value == 5
        fleet.stats["generated"] = 8
        adapter.sync()
        assert registry.counter("fleet_generated_total").value == 8

    def test_backward_jump_treated_as_reset(self):
        registry = MetricsRegistry()
        fleet = StubFleet()
        adapter = bind_fleet_metrics(registry, fleet)
        fleet.stats["delivered"] = 8
        adapter.sync()
        # The fleet reset its counters (measurement boundary) and
        # accumulated 3 since; the registry counter keeps going up.
        fleet.stats["delivered"] = 3
        adapter.sync()
        assert registry.counter("fleet_delivered_total").value == 11

    def test_nan_gauges_read_zero(self):
        registry = MetricsRegistry()
        fleet = StubFleet()
        adapter = bind_fleet_metrics(registry, fleet)
        assert registry.gauge("fleet_jain_index").value == 0.0
        fleet.stats["jain_index"] = 0.87
        adapter.sync()
        assert registry.gauge("fleet_jain_index").value == 0.87

    def test_custom_prefix(self):
        registry = MetricsRegistry()
        bind_fleet_metrics(registry, StubFleet(), prefix="pop")
        assert "pop_generated_total" in registry
        assert "fleet_generated_total" not in registry

    def test_disabled_registry_is_inert(self):
        adapter = bind_fleet_metrics(NULL_REGISTRY, StubFleet())
        adapter.sync()
        assert len(NULL_REGISTRY) == 0
