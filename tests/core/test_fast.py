"""Unit tests for the fast engine's protocol and shortcuts."""

import pytest

from repro.core.algorithms import Algorithm
from repro.core.fast import FastEngine, SimulationStall, simulate, simulate_warmup
from tests.conftest import small_config


class TestSteadyStateProtocol:
    def test_measure_access_count_honoured(self, ipp_config):
        result = FastEngine(ipp_config).run()
        assert (result.mc_hits + result.mc_misses
                == ipp_config.run.measure_accesses)

    def test_response_all_counts_every_access(self, ipp_config):
        result = FastEngine(ipp_config).run()
        assert result.response_all.count == ipp_config.run.measure_accesses
        assert result.response_miss.count == result.mc_misses

    def test_hits_have_zero_delay(self, push_config):
        result = FastEngine(push_config).run()
        # all-access mean == miss mean * miss rate.
        expected = result.response_miss.mean * result.mc_miss_rate
        assert result.response_all.mean == pytest.approx(expected, rel=1e-9)

    def test_deterministic_given_seed(self, ipp_config):
        a = FastEngine(ipp_config).run()
        b = FastEngine(ipp_config).run()
        assert a == b

    def test_different_seeds_differ(self, ipp_config):
        a = FastEngine(ipp_config).run()
        b = FastEngine(ipp_config.with_(run__seed=8)).run()
        assert a.response_miss.mean != b.response_miss.mean

    def test_pure_push_ignores_virtual_client(self, push_config):
        result = FastEngine(push_config).run()
        assert result.vc_generated == 0
        assert result.requests_enqueued == 0

    def test_pure_pull_uses_no_push_slots(self, pull_config):
        result = FastEngine(pull_config).run()
        assert result.slots_push == 0
        assert result.slots_pull > 0

    def test_ipp_mixes_push_and_pull(self, ipp_config):
        result = FastEngine(ipp_config).run()
        assert result.slots_push > 0
        assert result.slots_pull > 0

    def test_measured_slots_positive(self, ipp_config):
        result = FastEngine(ipp_config).run()
        assert 0 < result.measured_slots <= result.total_slots


class TestAnalyticShortcut:
    def test_analytic_matches_general_loop_exactly(self, push_config):
        analytic = FastEngine(push_config).run()
        general = FastEngine(push_config, force_general=True).run()
        assert analytic.response_miss.mean == pytest.approx(
            general.response_miss.mean)
        assert analytic.mc_hits == general.mc_hits
        assert analytic.mc_misses == general.mc_misses

    def test_analytic_warmup_matches_general(self, push_config):
        analytic = FastEngine(push_config).run_warmup()
        general = FastEngine(push_config, force_general=True).run_warmup()
        assert analytic.warmup_times == general.warmup_times

    def test_synthesized_slot_counts_are_plausible(self, push_config):
        result = FastEngine(push_config).run()
        total = result.slots_push + result.slots_padding
        assert total == pytest.approx(result.measured_slots, abs=1.0)


class TestWarmupProtocol:
    def test_warmup_times_monotone(self, ipp_config):
        result = FastEngine(ipp_config).run_warmup()
        assert result.warmup_times
        levels = sorted(result.warmup_times)
        times = [result.warmup_times[level] for level in levels]
        assert times == sorted(times)
        assert 0.95 in result.warmup_times

    def test_steady_run_has_no_warmup_times(self, ipp_config):
        assert FastEngine(ipp_config).run().warmup_times is None

    def test_warmup_requires_cache(self):
        config = small_config(client__cache_size=0)
        with pytest.raises(ValueError):
            FastEngine(config).run_warmup()


class TestGuards:
    def test_max_slots_stall_raises(self, ipp_config):
        config = ipp_config.with_(run__max_slots=50)
        with pytest.raises(SimulationStall):
            FastEngine(config).run()

    def test_controller_requires_ipp(self, push_config):
        from repro.core.adaptive import AdaptiveController, AdaptivePolicy

        controller = AdaptiveController(AdaptivePolicy(), 0.5, 0.0)
        with pytest.raises(ValueError):
            FastEngine(push_config, controller=controller)


class TestModuleHelpers:
    def test_simulate(self, ipp_config):
        result = simulate(ipp_config)
        assert result.algorithm == "ipp"

    def test_simulate_warmup(self, ipp_config):
        result = simulate_warmup(ipp_config)
        assert result.warmup_times

    def test_zero_cache_client_always_misses(self):
        config = small_config(Algorithm.PURE_PULL, client__cache_size=0,
                              run__measure_accesses=50)
        result = simulate(config)
        assert result.mc_hits == 0
        assert result.mc_misses == 50
