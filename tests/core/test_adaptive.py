"""Unit tests for the adaptive PullBW/threshold controller."""

import math

import pytest

from repro.core.adaptive import AdaptiveController, AdaptivePolicy
from repro.core.fast import FastEngine
from tests.conftest import small_config


class TestAdaptivePolicy:
    @pytest.mark.parametrize("kwargs", [
        {"interval": 0},
        {"low_drop": 0.5, "high_drop": 0.2},
        {"min_pull_bw": 0.8, "max_pull_bw": 0.2},
        {"min_thresh": 0.9, "max_thresh": 0.1},
        {"high_pull_share": 0.0},
        {"high_pull_share": 1.5},
        {"tail_wait_budget": 0.0},
        {"tail_wait_budget": -3.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AdaptivePolicy(**kwargs)


class TestAdaptiveController:
    def policy(self):
        return AdaptivePolicy(interval=100, high_drop=0.10, low_drop=0.01,
                              thresh_step=0.05, pull_bw_step=0.05,
                              min_pull_bw=0.1, max_pull_bw=0.9,
                              min_thresh=0.0, max_thresh=0.5)

    def test_saturation_raises_threshold_and_lowers_pull_bw(self):
        controller = AdaptiveController(self.policy(), 0.5, 0.0)
        pull_bw, thresh = controller.decide(100.0, total_offers=100,
                                            total_dropped=50)
        assert thresh == pytest.approx(0.05)
        assert pull_bw == pytest.approx(0.45)

    def test_idle_relaxes_both(self):
        controller = AdaptiveController(self.policy(), 0.5, 0.2)
        pull_bw, thresh = controller.decide(100.0, total_offers=100,
                                            total_dropped=0)
        assert thresh == pytest.approx(0.15)
        assert pull_bw == pytest.approx(0.55)

    def test_moderate_drop_holds_steady(self):
        controller = AdaptiveController(self.policy(), 0.5, 0.2)
        pull_bw, thresh = controller.decide(100.0, total_offers=100,
                                            total_dropped=5)
        assert (pull_bw, thresh) == (0.5, 0.2)

    def test_bounds_respected(self):
        controller = AdaptiveController(self.policy(), 0.1, 0.5)
        for step in range(20):
            pull_bw, thresh = controller.decide(
                float(step), total_offers=100 * (step + 1),
                total_dropped=90 * (step + 1))
        assert pull_bw == pytest.approx(0.1)
        assert thresh == pytest.approx(0.5)

    def test_counter_reset_resyncs(self):
        controller = AdaptiveController(self.policy(), 0.5, 0.0)
        controller.decide(1.0, total_offers=1000, total_dropped=500)
        # Engine reset its counters; smaller totals must not underflow.
        pull_bw, thresh = controller.decide(2.0, total_offers=10,
                                            total_dropped=0)
        assert 0.0 <= thresh <= 0.5
        assert 0.1 <= pull_bw <= 0.9

    def test_no_offers_holds_parameters(self):
        """Regression: a window with zero offers carries no load signal
        and must not be mistaken for an idle (relax) verdict."""
        controller = AdaptiveController(self.policy(), 0.5, 0.2)
        pull_bw, thresh = controller.decide(1.0, 0, 0)
        assert (pull_bw, thresh) == (0.5, 0.2)
        assert controller.trace[-1][4] == "no-signal"
        assert math.isnan(controller.trace[-1][3])

    def test_repeated_empty_windows_never_move_parameters(self):
        """Regression: the old behaviour relaxed one step per empty
        window, walking an unused backchannel to the pull-heavy corner."""
        controller = AdaptiveController(self.policy(), 0.5, 0.2)
        for step in range(1, 20):
            pull_bw, thresh = controller.decide(float(step), 0, 0)
        assert (pull_bw, thresh) == (0.5, 0.2)
        assert all(reason == "no-signal"
                   for *_, reason in controller.trace)

    def test_trace_recorded(self):
        controller = AdaptiveController(self.policy(), 0.5, 0.0)
        controller.decide(1.0, 10, 0)
        controller.decide(2.0, 20, 10)
        assert len(controller.trace) == 2
        assert controller.trace[1][3] == pytest.approx(1.0)

    def test_initial_values_clamped(self):
        controller = AdaptiveController(self.policy(), 0.99, 0.99)
        assert controller.pull_bw == 0.9
        assert controller.thresh_perc == 0.5


class TestDecompositionSignals:
    """The wait-decomposition and fleet tail-wait inputs."""

    def policy(self, **overrides):
        kwargs = dict(interval=100, high_drop=0.10, low_drop=0.01,
                      thresh_step=0.05, pull_bw_step=0.05,
                      min_pull_bw=0.1, max_pull_bw=0.9,
                      min_thresh=0.0, max_thresh=0.5)
        kwargs.update(overrides)
        return AdaptivePolicy(**kwargs)

    def test_pull_dominated_wait_saturates_without_drops(self):
        """A deep-but-not-dropping pull queue is invisible to the drop
        rate; the decomposition share must trigger the response."""
        policy = self.policy(high_pull_share=0.8)
        controller = AdaptiveController(policy, 0.5, 0.2)
        pull_bw, thresh = controller.decide(1.0, 100, 0,
                                            push_wait=10.0, pull_wait=90.0)
        assert thresh == pytest.approx(0.25)
        assert pull_bw == pytest.approx(0.45)
        assert controller.trace[-1][4] == "saturated"

    def test_push_dominated_wait_still_relaxes(self):
        policy = self.policy(high_pull_share=0.8)
        controller = AdaptiveController(policy, 0.5, 0.2)
        pull_bw, thresh = controller.decide(1.0, 100, 0,
                                            push_wait=90.0, pull_wait=10.0)
        assert thresh == pytest.approx(0.15)
        assert pull_bw == pytest.approx(0.55)
        assert controller.trace[-1][4] == "idle"

    def test_wait_totals_are_differenced_per_window(self):
        """The engine feeds cumulative tracer totals; only the window's
        increment may drive the verdict."""
        policy = self.policy(high_pull_share=0.8)
        controller = AdaptiveController(policy, 0.5, 0.2)
        # First window: pull-dominated history.
        controller.decide(1.0, 100, 0, push_wait=10.0, pull_wait=90.0)
        # Second window adds purely push wait; cumulative pull share is
        # still high but the window share is 0 -> idle, not saturated.
        controller.decide(2.0, 200, 0, push_wait=110.0, pull_wait=90.0)
        assert controller.trace[-1][4] == "idle"

    def test_default_policy_ignores_decomposition(self):
        """high_pull_share defaults to 1.0, which a share can never
        exceed: feeding wait totals alone must not change behaviour."""
        controller = AdaptiveController(self.policy(), 0.5, 0.2)
        pull_bw, thresh = controller.decide(1.0, 100, 0,
                                            push_wait=0.0, pull_wait=500.0)
        assert controller.trace[-1][4] == "idle"

    def test_tail_wait_over_budget_saturates(self):
        policy = self.policy(tail_wait_budget=50.0)
        controller = AdaptiveController(policy, 0.5, 0.2)
        pull_bw, thresh = controller.decide(1.0, 100, 0, tail_wait=80.0)
        assert thresh == pytest.approx(0.25)
        assert pull_bw == pytest.approx(0.45)
        assert controller.trace[-1][4] == "saturated"

    def test_tail_wait_overrides_empty_window(self):
        """A zero-offer window is no-signal — unless the fleet tail is
        over budget, which is a positive saturation signal on its own."""
        policy = self.policy(tail_wait_budget=50.0)
        controller = AdaptiveController(policy, 0.5, 0.2)
        pull_bw, thresh = controller.decide(1.0, 0, 0, tail_wait=80.0)
        assert controller.trace[-1][4] == "saturated"
        assert thresh == pytest.approx(0.25)

    def test_tail_wait_under_budget_is_not_a_signal(self):
        policy = self.policy(tail_wait_budget=50.0)
        controller = AdaptiveController(policy, 0.5, 0.2)
        controller.decide(1.0, 0, 0, tail_wait=10.0)
        assert controller.trace[-1][4] == "no-signal"


class TestControllerConvergence:
    """Behaviour at the extremes: zero drops, saturation, clamping."""

    def policy(self):
        return AdaptivePolicy(interval=100, high_drop=0.10, low_drop=0.01,
                              thresh_step=0.05, pull_bw_step=0.05,
                              min_pull_bw=0.1, max_pull_bw=0.9,
                              min_thresh=0.0, max_thresh=0.5)

    def test_zero_drop_rate_converges_to_relaxed_bounds(self):
        """A permanently clear queue walks the knobs all the way to the
        pull-heavy corner: max PullBW, zero threshold."""
        controller = AdaptiveController(self.policy(), 0.5, 0.5)
        for step in range(1, 30):
            pull_bw, thresh = controller.decide(
                float(step * 100), total_offers=50 * step, total_dropped=0)
        assert pull_bw == pytest.approx(0.9)
        assert thresh == pytest.approx(0.0)

    def test_saturation_converges_to_conservative_bounds(self):
        """A saturated queue walks to min PullBW / max threshold and the
        trajectory is monotone (no oscillation on a constant signal)."""
        controller = AdaptiveController(self.policy(), 0.9, 0.0)
        pull_trajectory, thresh_trajectory = [], []
        for step in range(1, 30):
            pull_bw, thresh = controller.decide(
                float(step * 100), total_offers=100 * step,
                total_dropped=60 * step)
            pull_trajectory.append(pull_bw)
            thresh_trajectory.append(thresh)
        assert pull_trajectory[-1] == pytest.approx(0.1)
        assert thresh_trajectory[-1] == pytest.approx(0.5)
        assert pull_trajectory == sorted(pull_trajectory, reverse=True)
        assert thresh_trajectory == sorted(thresh_trajectory)

    def test_initial_values_clamped_from_below(self):
        policy = AdaptivePolicy(min_pull_bw=0.2, max_pull_bw=0.8,
                                min_thresh=0.1, max_thresh=0.6)
        controller = AdaptiveController(policy, 0.01, 0.0)
        assert controller.pull_bw == pytest.approx(0.2)
        assert controller.thresh_perc == pytest.approx(0.1)

    def test_decisions_always_within_bounds(self):
        """Whatever the drop-rate sequence, every decision stays inside
        [min, max] for both knobs."""
        policy = self.policy()
        controller = AdaptiveController(policy, 0.5, 0.25)
        offers = dropped = 0
        for step, window_drop in enumerate(
                (0.0, 1.0, 0.0, 0.5, 0.02, 1.0, 1.0, 0.0, 0.0, 0.0,
                 0.9, 0.9, 0.9, 0.9, 0.9, 0.0)):
            offers += 100
            dropped += int(100 * window_drop)
            pull_bw, thresh = controller.decide(float(step), offers, dropped)
            assert policy.min_pull_bw <= pull_bw <= policy.max_pull_bw
            assert policy.min_thresh <= thresh <= policy.max_thresh


class TestAdaptiveEngineIntegration:
    def test_controller_engages_under_saturation(self):
        """Under heavy load the controller should have ratcheted the
        threshold up / pull bandwidth down by the end of the run."""
        config = small_config(client__think_time_ratio=100,
                              run__measure_accesses=300)
        policy = AdaptivePolicy(interval=500, high_drop=0.05)
        controller = AdaptiveController(policy, config.server.pull_bw, 0.0)
        FastEngine(config, controller=controller).run()
        assert controller.trace  # decisions happened
        assert (controller.thresh_perc > 0.0
                or controller.pull_bw < config.server.pull_bw)

    def test_controller_stays_relaxed_when_idle(self):
        config = small_config(client__think_time_ratio=2,
                              run__measure_accesses=200)
        policy = AdaptivePolicy(interval=500)
        controller = AdaptiveController(policy, 0.5, 0.3)
        FastEngine(config, controller=controller).run()
        assert controller.thresh_perc <= 0.3
