"""Unit tests for configuration dataclasses (Tables 1-3)."""

import pytest

from repro.core.algorithms import Algorithm
from repro.core.config import (
    PAPER_SETTINGS,
    ClientConfig,
    RunConfig,
    ServerConfig,
    SystemConfig,
)


class TestClientConfig:
    def test_paper_defaults(self):
        client = ClientConfig()
        assert client.cache_size == 100
        assert client.think_time == 20.0
        assert client.steady_state_perc == 0.95
        assert client.zipf_theta == 0.95

    @pytest.mark.parametrize("field,value", [
        ("cache_size", -1),
        ("think_time", 0.0),
        ("think_time_ratio", 0.0),
        ("steady_state_perc", 1.5),
        ("noise", -0.2),
        ("zipf_theta", -1.0),
    ])
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            ClientConfig(**{field: value})


class TestServerConfig:
    def test_paper_defaults(self):
        server = ServerConfig()
        assert server.db_size == 1000
        assert server.disk_sizes == (100, 400, 500)
        assert server.rel_freqs == (3, 2, 1)
        assert server.queue_size == 100
        assert server.offset is True

    def test_disk_sizes_must_sum_to_db(self):
        with pytest.raises(ValueError, match="sum"):
            ServerConfig(db_size=1000, disk_sizes=(100, 400, 400))

    def test_disks_and_freqs_must_align(self):
        with pytest.raises(ValueError, match="align"):
            ServerConfig(disk_sizes=(500, 500), rel_freqs=(3, 2, 1))

    @pytest.mark.parametrize("field,value", [
        ("queue_size", 0),
        ("pull_bw", 1.2),
        ("thresh_perc", -0.1),
        ("chop", 1000),
    ])
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            ServerConfig(**{field: value})


class TestRunConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RunConfig(settle_accesses=-1)
        with pytest.raises(ValueError):
            RunConfig(measure_accesses=0)
        with pytest.raises(ValueError):
            RunConfig(max_slots=0)


class TestSystemConfig:
    def test_pure_push_cannot_chop(self):
        with pytest.raises(ValueError, match="chop"):
            SystemConfig(algorithm=Algorithm.PURE_PUSH,
                         server=ServerConfig(chop=100))

    def test_cache_must_fit_on_slowest_disk(self):
        with pytest.raises(ValueError, match="slowest disk"):
            SystemConfig(client=ClientConfig(cache_size=600))

    def test_effective_pull_bw_per_algorithm(self):
        assert SystemConfig(algorithm=Algorithm.PURE_PUSH).pull_bw == 0.0
        assert SystemConfig(algorithm=Algorithm.PURE_PULL).pull_bw == 1.0
        ipp = SystemConfig(algorithm=Algorithm.IPP,
                           server=ServerConfig(pull_bw=0.3))
        assert ipp.pull_bw == 0.3

    def test_effective_thresh_perc_only_for_ipp(self):
        base = ServerConfig(thresh_perc=0.25)
        assert SystemConfig(algorithm=Algorithm.IPP,
                            server=base).thresh_perc == 0.25
        assert SystemConfig(algorithm=Algorithm.PURE_PULL,
                            server=base).thresh_perc == 0.0

    def test_with_updates_nested_fields(self):
        config = SystemConfig()
        updated = config.with_(client__think_time_ratio=250,
                               server__pull_bw=0.1,
                               run__seed=99)
        assert updated.client.think_time_ratio == 250
        assert updated.server.pull_bw == 0.1
        assert updated.run.seed == 99
        # Original untouched (frozen dataclasses).
        assert config.client.think_time_ratio == 10.0

    def test_with_top_level_field(self):
        config = SystemConfig().with_(algorithm=Algorithm.PURE_PULL)
        assert config.algorithm is Algorithm.PURE_PULL

    def test_with_unknown_section_rejected(self):
        with pytest.raises(TypeError):
            SystemConfig().with_(bogus__field=1)

    def test_with_revalidates(self):
        with pytest.raises(ValueError):
            SystemConfig().with_(client__cache_size=600)


class TestPaperSettings:
    def test_table3_values(self):
        assert PAPER_SETTINGS["ThinkTimeRatio"] == (10, 25, 50, 100, 250)
        assert PAPER_SETTINGS["PullBW"] == (0.10, 0.20, 0.30, 0.40, 0.50)
        assert PAPER_SETTINGS["ThresPerc"] == (0.0, 0.10, 0.25, 0.35)
        assert PAPER_SETTINGS["DiskSizes"] == ((100, 400, 500),)

    def test_defaults_agree_with_table3(self):
        config = SystemConfig()
        assert config.client.cache_size in PAPER_SETTINGS["CacheSize"]
        assert config.server.queue_size in PAPER_SETTINGS["ServerQSize"]
        assert config.server.rel_freqs in PAPER_SETTINGS["RelFreqs"]
