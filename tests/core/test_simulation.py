"""Unit tests for the reference (event-driven) engine."""

import pytest

from repro.core.fast import FastEngine, SimulationStall
from repro.core.simulation import ReferenceEngine
from tests.conftest import small_config


class TestReferenceEngine:
    def test_pure_push_matches_fast_engine_exactly(self, push_config):
        """Pure-Push is deterministic: both engines must agree bit-for-bit."""
        fast = FastEngine(push_config).run()
        ref = ReferenceEngine(push_config).run()
        assert ref.response_miss.mean == pytest.approx(
            fast.response_miss.mean)
        assert ref.mc_hits == fast.mc_hits
        assert ref.mc_misses == fast.mc_misses

    def test_measure_access_count_honoured(self, ipp_config):
        result = ReferenceEngine(ipp_config).run()
        assert (result.mc_hits + result.mc_misses
                == ipp_config.run.measure_accesses)

    def test_deterministic_given_seed(self, ipp_config):
        a = ReferenceEngine(ipp_config).run()
        b = ReferenceEngine(ipp_config).run()
        assert a == b

    def test_warmup_run(self, ipp_config):
        result = ReferenceEngine(ipp_config).run_warmup()
        assert result.warmup_times
        assert 0.95 in result.warmup_times

    def test_warmup_requires_cache(self):
        config = small_config(client__cache_size=0)
        with pytest.raises(ValueError):
            ReferenceEngine(config).run_warmup()

    def test_max_slots_stall_raises(self, ipp_config):
        config = ipp_config.with_(run__max_slots=30)
        with pytest.raises(SimulationStall):
            ReferenceEngine(config).run()

    def test_closed_loop_vc_produces_less_load(self, ipp_config):
        """A closed-loop VC blocks on every response, so it offers fewer
        requests per unit time than the open-loop model."""
        open_loop = ReferenceEngine(
            ipp_config.with_(client__think_time_ratio=20.0)).run()
        closed = ReferenceEngine(
            ipp_config.with_(client__think_time_ratio=20.0,
                             run__vc_closed_loop=True)).run()
        open_rate = open_loop.request_offers / open_loop.measured_slots
        closed_rate = closed.request_offers / closed.measured_slots
        assert closed_rate < open_rate

    def test_pure_pull_runs(self, pull_config):
        result = ReferenceEngine(pull_config).run()
        assert result.slots_push == 0
        assert result.response_miss.count == result.mc_misses

    def test_chopped_program_runs(self):
        """Non-broadcast pages must be pulled; the reference engine's
        arrival-event plumbing has to deliver them too."""
        config = small_config(server__chop=8, server__pull_bw=0.5,
                              run__measure_accesses=150)
        result = ReferenceEngine(config).run()
        assert result.mc_misses > 0
        assert result.slots_pull > 0

    def test_threshold_suppresses_reference_requests(self):
        free = ReferenceEngine(small_config()).run()
        filtered = ReferenceEngine(
            small_config(server__thresh_perc=1.0)).run()
        # With a full-cycle threshold only chopped pages could be pulled,
        # and nothing is chopped here: the MC sends no requests at all.
        assert filtered.mc_pulls_sent == 0
        assert free.mc_pulls_sent > 0
