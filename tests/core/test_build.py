"""Unit tests for system construction."""

import numpy as np
import pytest

from repro.cache.p import PPolicy
from repro.cache.pix import PixPolicy
from repro.core.build import build_system
from tests.conftest import small_config


class TestBuildPushProgram:
    def test_pure_pull_has_no_program(self, pull_config):
        state = build_system(pull_config)
        assert state.schedule is None

    def test_offset_applied_by_default(self, ipp_config):
        state = build_system(ipp_config)
        assert state.schedule is not None
        assignment = state.schedule.assignment
        # With offset, disk 1 starts at rank cache_size (5), not rank 0.
        assert assignment.disks[0].pages[0] == 5

    def test_offset_disabled(self):
        config = small_config(server__offset=False)
        state = build_system(config)
        assert state.schedule.assignment.disks[0].pages[0] == 0

    def test_chop_shrinks_program(self):
        config = small_config(server__chop=10)
        state = build_system(config)
        assert len(state.schedule.pages) == 10

    def test_chopped_pages_are_pull_only(self):
        config = small_config(server__chop=10)
        state = build_system(config)
        missing = set(range(20)) - set(state.schedule.pages)
        assert len(missing) == 10


class TestBuildSystem:
    def test_cache_policy_matches_algorithm(self, ipp_config, pull_config,
                                            push_config):
        assert isinstance(build_system(ipp_config).mc.cache.policy,
                          PixPolicy)
        assert isinstance(build_system(push_config).mc.cache.policy,
                          PixPolicy)
        assert isinstance(build_system(pull_config).mc.cache.policy,
                          PPolicy)

    def test_steady_set_size_is_cache_minus_one(self, ipp_config):
        state = build_system(ipp_config)
        assert len(state.steady_set) == ipp_config.client.cache_size - 1

    def test_warmup_target_size_is_cache_size(self, ipp_config):
        state = build_system(ipp_config)
        assert len(state.warmup_target) == ipp_config.client.cache_size

    def test_pure_pull_steady_set_is_hottest_pages(self, pull_config):
        state = build_system(pull_config)
        expected = frozenset(range(pull_config.client.cache_size - 1))
        assert state.steady_set == expected

    def test_noise_zero_means_identical_probabilities(self, ipp_config):
        state = build_system(ipp_config)
        assert np.allclose(state.mc_probabilities, state.vc_probabilities)

    def test_noise_perturbs_only_mc(self):
        config = small_config(client__noise=0.35)
        state = build_system(config)
        assert not np.allclose(state.mc_probabilities,
                               state.vc_probabilities)
        # Same multiset: noise permutes, never alters, probabilities.
        assert np.allclose(np.sort(state.mc_probabilities),
                           np.sort(state.vc_probabilities))

    def test_same_seed_same_system(self, ipp_config):
        a = build_system(ipp_config)
        b = build_system(ipp_config)
        assert a.schedule.slots == b.schedule.slots
        assert a.steady_set == b.steady_set
        assert a.mc.draw_page() == b.mc.draw_page()

    def test_server_pull_bw_follows_algorithm(self, push_config,
                                              pull_config, ipp_config):
        assert build_system(push_config).server.mux.pull_bw == 0.0
        assert build_system(pull_config).server.mux.pull_bw == 1.0
        assert build_system(ipp_config).server.mux.pull_bw == 0.5

    def test_vc_rate(self, ipp_config):
        state = build_system(ipp_config)
        expected = (ipp_config.client.think_time_ratio
                    / ipp_config.client.think_time)
        assert state.vc.rate == pytest.approx(expected)

    def test_cache_policy_override(self):
        from repro.cache.lix import LixPolicy
        from repro.cache.lru import LruPolicy

        for name, expected in (("lru", LruPolicy), ("lix", LixPolicy),
                               ("p", PPolicy), ("pix", PixPolicy)):
            state = build_system(small_config(client__cache_policy=name))
            assert isinstance(state.mc.cache.policy, expected), name

    def test_cache_policy_validated(self):
        with pytest.raises(ValueError, match="cache_policy"):
            small_config(client__cache_policy="fifo")

    def test_noise_does_not_shift_other_streams(self):
        """Spawned RNG streams are independent: toggling noise must not
        change the virtual client's draw sequence."""
        quiet = build_system(small_config())
        noisy = build_system(small_config(client__noise=0.35))
        quiet_draws = quiet.vc.arrivals_for_slots(50)
        noisy_draws = noisy.vc.arrivals_for_slots(50)
        assert quiet_draws == noisy_draws
