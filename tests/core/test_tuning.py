"""Unit tests for the parameter-setting advisor."""

import pytest

from repro.core.algorithms import Algorithm
from repro.experiments.base import Profile
from repro.tuning import Candidate, TuningReport, TuningSpec, recommend
from tests.conftest import small_config

TINY = Profile(settle_accesses=20, measure_accesses=60, replicates=1,
               base_seed=2)


class TestTuningSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            TuningSpec(loads=())
        with pytest.raises(ValueError):
            TuningSpec(objective="median")
        with pytest.raises(ValueError):
            TuningSpec(pull_bw_grid=())


class TestCandidate:
    def test_aggregates(self):
        candidate = Candidate(0.5, 0.25, 0, (10.0, 30.0))
        assert candidate.worst_case == 30.0
        assert candidate.mean == 20.0

    def test_describe(self):
        assert "PullBW=50%" in Candidate(0.5, 0.25, 0, (1.0,)).describe()
        assert "chop=100" in Candidate(0.5, 0.25, 100, (1.0,)).describe()
        assert "chop" not in Candidate(0.5, 0.25, 0, (1.0,)).describe()


class TestRecommend:
    def spec(self):
        return TuningSpec(loads=(2.0, 30.0), pull_bw_grid=(0.3, 0.5),
                          thresh_grid=(0.0, 0.5), chop_grid=(0,))

    def test_requires_ipp(self):
        with pytest.raises(ValueError, match="IPP"):
            recommend(small_config(Algorithm.PURE_PULL), self.spec(), TINY)

    def test_covers_the_grid(self):
        report = recommend(small_config(), self.spec(), TINY)
        assert len(report.candidates) == 4
        settings = {(c.pull_bw, c.thresh_perc) for c in report.candidates}
        assert settings == {(0.3, 0.0), (0.3, 0.5), (0.5, 0.0), (0.5, 0.5)}

    def test_sorted_by_worst_case(self):
        report = recommend(small_config(), self.spec(), TINY)
        worsts = [c.worst_case for c in report.candidates]
        assert worsts == sorted(worsts)

    def test_mean_objective(self):
        spec = TuningSpec(loads=(2.0, 30.0), pull_bw_grid=(0.3, 0.5),
                          thresh_grid=(0.0, 0.5), objective="mean")
        report = recommend(small_config(), spec, TINY)
        means = [c.mean for c in report.candidates]
        assert means == sorted(means)

    def test_light_load_only_tuning_rejects_thresholds(self):
        """At light load thresholds only constrain clients (§4.2), so a
        tuning sweep restricted to light loads must recommend ThresPerc=0.
        (The converse — wide ranges favouring thresholds — shows at paper
        scale; the miniature system's short cycle caps saturation RTs at
        noise level, see the full-scale tuning bench.)"""
        spec = TuningSpec(loads=(2.0,), pull_bw_grid=(0.5,),
                          thresh_grid=(0.0, 0.5))
        report = recommend(small_config(), spec, TINY)
        assert report.best.thresh_perc == 0.0

    def test_report_format(self):
        report = recommend(small_config(), self.spec(), TINY)
        text = report.format()
        assert "recommended (worst_case)" in text
        assert "TTR 2" in text and "TTR 30" in text

    def test_empty_report_best_raises(self):
        with pytest.raises(ValueError):
            TuningReport(self.spec()).best
