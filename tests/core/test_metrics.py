"""Unit tests for run-result records."""

import math
import pickle

import pytest

from repro.core.metrics import RunResult, TallySnapshot
from repro.sim.monitor import Tally


def make_result(**overrides):
    defaults = dict(
        algorithm="ipp", seed=0,
        response_miss=TallySnapshot(count=10, mean=50.0, stddev=5.0,
                                    min=40.0, max=60.0),
        response_all=TallySnapshot(count=20, mean=25.0, stddev=3.0,
                                   min=0.0, max=60.0),
        mc_hits=10, mc_misses=10, mc_pulls_sent=8,
        requests_enqueued=100, requests_duplicate=30, requests_dropped=70,
        requests_served=95,
        slots_push=500, slots_pull=300, slots_padding=10, slots_idle=0,
        queue_length_mean=12.0, measured_slots=810.0, total_slots=2000.0,
    )
    defaults.update(overrides)
    return RunResult(**defaults)


class TestTallySnapshot:
    def test_of_empty_tally(self):
        snapshot = TallySnapshot.of(Tally())
        assert snapshot.count == 0
        assert math.isnan(snapshot.mean)

    def test_of_populated_tally(self):
        tally = Tally()
        for value in (1.0, 3.0):
            tally.add(value)
        snapshot = TallySnapshot.of(tally)
        assert snapshot.count == 2
        assert snapshot.mean == 2.0
        assert snapshot.min == 1.0 and snapshot.max == 3.0


class TestRunResult:
    def test_miss_rate(self):
        assert make_result().mc_miss_rate == pytest.approx(0.5)

    def test_miss_rate_no_accesses_is_nan(self):
        result = make_result(mc_hits=0, mc_misses=0)
        assert math.isnan(result.mc_miss_rate)

    def test_drop_rate(self):
        result = make_result()
        assert result.request_offers == 200
        assert result.drop_rate == pytest.approx(0.35)

    def test_drop_rate_no_offers(self):
        result = make_result(requests_enqueued=0, requests_duplicate=0,
                             requests_dropped=0)
        assert result.drop_rate == 0.0

    def test_pull_slot_share(self):
        assert make_result().pull_slot_share == pytest.approx(300 / 810)

    def test_to_dict_round_trip(self):
        data = make_result(warmup_times={0.5: 100.0}).to_dict()
        assert data["warmup_times"] == {"0.5": 100.0}
        assert data["drop_rate"] == pytest.approx(0.35)
        assert data["response_miss"]["mean"] == 50.0

    def test_picklable(self):
        result = make_result()
        clone = pickle.loads(pickle.dumps(result))
        assert clone == result

    def test_params_bag(self):
        result = make_result(params={"ttr": 50})
        assert result.params["ttr"] == 50
