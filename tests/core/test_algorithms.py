"""Unit tests for algorithm descriptors."""

from repro.core.algorithms import Algorithm


class TestAlgorithm:
    def test_push_program_presence(self):
        assert Algorithm.PURE_PUSH.has_push_program
        assert Algorithm.IPP.has_push_program
        assert not Algorithm.PURE_PULL.has_push_program

    def test_backchannel_usage(self):
        assert not Algorithm.PURE_PUSH.uses_backchannel
        assert Algorithm.PURE_PULL.uses_backchannel
        assert Algorithm.IPP.uses_backchannel

    def test_cache_metric_follows_footnote4(self):
        assert Algorithm.PURE_PUSH.cache_metric == "pix"
        assert Algorithm.IPP.cache_metric == "pix"
        assert Algorithm.PURE_PULL.cache_metric == "p"

    def test_effective_pull_bw(self):
        assert Algorithm.PURE_PUSH.effective_pull_bw(0.5) == 0.0
        assert Algorithm.PURE_PULL.effective_pull_bw(0.5) == 1.0
        assert Algorithm.IPP.effective_pull_bw(0.5) == 0.5

    def test_effective_thresh_perc(self):
        assert Algorithm.PURE_PUSH.effective_thresh_perc(0.35) == 0.0
        assert Algorithm.PURE_PULL.effective_thresh_perc(0.35) == 0.0
        assert Algorithm.IPP.effective_thresh_perc(0.35) == 0.35

    def test_round_trips_by_value(self):
        for algorithm in Algorithm:
            assert Algorithm(algorithm.value) is algorithm
