"""Unit tests for the shared server state machine."""

import numpy as np
import pytest

from repro.broadcast.program import Disk, DiskAssignment, build_schedule
from repro.server.broadcast_server import BroadcastServer, SlotKind


def fig1_schedule():
    return build_schedule(DiskAssignment((
        Disk((0,), 4), Disk((1, 2), 2), Disk((3, 4, 5, 6), 1))))


def make_server(pull_bw=0.5, queue_size=3, seed=0, schedule="fig1"):
    sched = fig1_schedule() if schedule == "fig1" else schedule
    return BroadcastServer(sched, queue_size, pull_bw,
                           np.random.default_rng(seed))


class TestConstruction:
    def test_pure_pull_requires_full_pull_bw(self):
        with pytest.raises(ValueError):
            BroadcastServer(None, 10, 0.5, np.random.default_rng(0))

    def test_pure_pull_without_schedule_allowed(self):
        server = BroadcastServer(None, 10, 1.0, np.random.default_rng(0))
        assert server.schedule is None


class TestPushOnly:
    def test_follows_schedule_in_order(self):
        server = make_server(pull_bw=0.0)
        pages = [server.tick()[0] for _ in range(12)]
        assert pages == [0, 1, 3, 0, 2, 4, 0, 1, 5, 0, 2, 6]

    def test_schedule_wraps(self):
        server = make_server(pull_bw=0.0)
        first = [server.tick()[0] for _ in range(12)]
        second = [server.tick()[0] for _ in range(12)]
        assert first == second

    def test_requests_ignored_slots_still_push(self):
        server = make_server(pull_bw=0.0)
        server.request(6)
        page, kind = server.tick()
        assert kind is SlotKind.PUSH
        assert server.pending_requests == 1  # queued but never served

    def test_padding_slots_reported(self):
        schedule = build_schedule(DiskAssignment((
            Disk((0,), 2), Disk((1, 2, 3), 1))))
        server = BroadcastServer(schedule, 3, 0.0, np.random.default_rng(0))
        kinds = [server.tick()[1] for _ in range(len(schedule))]
        assert kinds.count(SlotKind.PADDING) == schedule.num_empty_slots


class TestPullInterleaving:
    def test_empty_queue_gives_slot_back_to_push(self):
        server = make_server(pull_bw=1.0)
        page, kind = server.tick()
        assert kind is SlotKind.PUSH
        assert page == 0

    def test_queued_request_served_on_pull_slot(self):
        server = make_server(pull_bw=1.0)
        server.request(6)
        page, kind = server.tick()
        assert (page, kind) == (6, SlotKind.PULL)

    def test_pull_slot_does_not_advance_program(self):
        server = make_server(pull_bw=1.0)
        server.request(6)
        server.tick()                      # pull slot
        page, kind = server.tick()         # program resumes where it was
        assert (page, kind) == (0, SlotKind.PUSH)

    def test_pure_pull_idles_when_queue_empty(self):
        server = BroadcastServer(None, 5, 1.0, np.random.default_rng(0))
        page, kind = server.tick()
        assert (page, kind) == (None, SlotKind.IDLE)

    def test_pull_share_tracks_pull_bw(self):
        server = make_server(pull_bw=0.3, queue_size=1000, seed=11)
        # Keep the queue non-empty throughout.
        for page in range(1000):
            server.queue.offer(page)
        kinds = [server.tick()[1] for _ in range(2000)]
        share = kinds.count(SlotKind.PULL) / len(kinds)
        assert share == pytest.approx(0.3, abs=0.03)

    def test_slot_counts_accumulate(self):
        server = make_server(pull_bw=1.0)
        server.request(4)
        server.tick()
        server.tick()
        assert server.slot_counts[SlotKind.PULL] == 1
        assert server.slot_counts[SlotKind.PUSH] == 1

    def test_reset_stats(self):
        server = make_server(pull_bw=0.0)
        server.tick()
        server.reset_stats()
        assert all(count == 0 for count in server.slot_counts.values())
