"""Tests for the pull-scheduler discipline zoo and push reprogramming.

Three layers:

- property tests: every discipline preserves the bounded queue's
  invariants (counters partition offers, depth bounded, dedup) under
  arbitrary offer/pop/clock sequences,
- behaviour tests: each discipline picks the page its priority rule says
  it should, with FIFO tie-breaks,
- parity: the FIFO discipline is bit-identical to a replica of the
  pre-refactor queue (hard-coded head service, no scheduler hooks)
  through both engines' full slot traces.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SchedulerConfig
from repro.core.fast import FastEngine
from repro.core.simulation import ReferenceEngine
from repro.obs.trace import MemorySink, SlotTracer
from repro.server.queue import BoundedRequestQueue, Offer
from repro.server.schedulers import (
    DISCIPLINES,
    FifoScheduler,
    LwfScheduler,
    PushReprogrammer,
    RxWScheduler,
    make_scheduler,
)
from tests.conftest import small_config


class TestMakeScheduler:
    @pytest.mark.parametrize("discipline", DISCIPLINES)
    def test_names_round_trip(self, discipline):
        assert make_scheduler(discipline).name == discipline

    def test_unknown_discipline_rejected(self):
        with pytest.raises(ValueError, match="unknown discipline"):
            make_scheduler("lifo")

    def test_negative_aging_rejected(self):
        with pytest.raises(ValueError, match="aging"):
            RxWScheduler(aging=-0.5)

    def test_types(self):
        assert isinstance(make_scheduler("fifo"), FifoScheduler)
        assert isinstance(make_scheduler("rxw"), RxWScheduler)
        assert isinstance(make_scheduler("lwf"), LwfScheduler)


#: op = (kind, page): kind 0 -> offer(page), 1 -> pop, 2 -> advance clock.
_OPS = st.lists(st.tuples(st.integers(0, 2), st.integers(0, 9)),
                max_size=300)


class TestDisciplineInvariants:
    """The queue's contract holds whatever discipline reorders service."""

    @pytest.mark.parametrize("discipline", DISCIPLINES)
    @settings(max_examples=60, deadline=None)
    @given(ops=_OPS, capacity=st.integers(min_value=1, max_value=5))
    def test_invariants_under_arbitrary_traffic(self, discipline, ops,
                                                capacity):
        queue = BoundedRequestQueue(
            capacity, make_scheduler(discipline, track_temperature=True))
        seen: list[tuple[int, Offer]] = []
        queue.attach_observer(lambda page, outcome:
                              seen.append((page, outcome)))
        offered = popped = 0
        for kind, page in ops:
            if kind == 2:
                queue.now += 1
                continue
            if kind == 1:
                if len(queue):
                    before = len(queue)
                    served = queue.pop()
                    popped += 1
                    assert served not in queue
                    assert len(queue) == before - 1
                continue
            offered += 1
            was_queued = page in queue
            was_full = queue.is_full
            outcome = queue.offer(page)
            if was_queued:
                assert outcome is Offer.DUPLICATE
            elif was_full:
                assert outcome is Offer.DROPPED
            else:
                assert outcome is Offer.ENQUEUED
                assert page in queue
            # Depth never exceeds capacity.
            assert len(queue) <= capacity

        # Counters partition the offers.
        assert queue.offers == offered
        assert (queue.enqueued + queue.duplicates + queue.dropped
                == offered)
        assert queue.distinct_offers == queue.enqueued + queue.dropped
        # Service accounting: can't serve what never entered.
        assert queue.served == popped
        assert queue.served <= queue.enqueued
        assert len(queue) == queue.enqueued - queue.served
        # Scheduler decision counters mirror the queue's accounting.
        assert queue.scheduler.pops == popped
        assert 0 <= queue.scheduler.reordered <= queue.scheduler.pops
        if discipline == "fifo":
            assert queue.scheduler.reordered == 0
        # Temperature saw every offer, of any outcome.
        assert sum(queue.scheduler.temperature.values()) == offered
        # The observer saw every outcome, in order.
        assert len(seen) == offered
        assert ([outcome for _, outcome in seen].count(Offer.ENQUEUED)
                == queue.enqueued)

    @pytest.mark.parametrize("discipline", DISCIPLINES)
    @settings(max_examples=30, deadline=None)
    @given(ops=_OPS, capacity=st.integers(min_value=1, max_value=5))
    def test_peek_agrees_with_pop(self, discipline, ops, capacity):
        queue = BoundedRequestQueue(capacity, make_scheduler(discipline))
        for kind, page in ops:
            if kind == 2:
                queue.now += 1
            elif kind == 1 and len(queue):
                assert queue.peek() == queue.pop()
            elif kind == 0:
                queue.offer(page)
        if not len(queue):
            assert queue.peek() is None

    @pytest.mark.parametrize("discipline", DISCIPLINES)
    def test_reset_stats_clears_decisions_keeps_temperature(self,
                                                            discipline):
        queue = BoundedRequestQueue(
            3, make_scheduler(discipline, track_temperature=True))
        queue.offer(1)
        queue.offer(1)
        queue.pop()
        queue.reset_stats()
        assert queue.scheduler.pops == 0
        assert queue.scheduler.reordered == 0
        assert queue.scheduler.temperature == {1: 2}

    def test_temperature_off_by_default(self):
        queue = BoundedRequestQueue(3)
        queue.offer(1)
        assert queue.scheduler.temperature == {}


class TestRxW:
    def queue(self, aging=1.0):
        return BoundedRequestQueue(10, RxWScheduler(aging=aging))

    def test_more_waiters_win_at_equal_wait(self):
        queue = self.queue()
        queue.offer(1)
        queue.offer(2)
        queue.offer(2)   # duplicate: page 2 has two waiters
        assert queue.pop() == 2
        assert queue.scheduler.reordered == 1

    def test_longer_wait_wins_at_equal_waiters(self):
        queue = self.queue()
        queue.offer(1)
        queue.now += 5
        queue.offer(2)
        assert queue.pop() == 1

    def test_tie_breaks_in_fifo_order(self):
        queue = self.queue()
        queue.offer(3)
        queue.offer(1)
        queue.offer(2)
        assert [queue.pop(), queue.pop(), queue.pop()] == [3, 1, 2]
        assert queue.scheduler.reordered == 0

    def test_aging_zero_is_pure_waiter_count(self):
        queue = self.queue(aging=0.0)
        queue.offer(1)           # oldest, 1 waiter
        queue.now += 100
        queue.offer(2)
        queue.offer(2)           # 2 waiters, brand new
        assert queue.pop() == 2

    def test_large_aging_favours_the_starving_page(self):
        queue = self.queue(aging=3.0)
        queue.offer(1)           # old single request
        queue.now += 10
        for _ in range(4):       # popular page, much younger
            queue.offer(2)
        assert queue.pop() == 1

    def test_waiters_cleared_on_service(self):
        queue = self.queue()
        queue.offer(1)
        queue.offer(1)
        assert queue.scheduler.waiters(1) == 2
        queue.pop()
        assert queue.scheduler.waiters(1) == 0
        # Re-request starts fresh, no stale priority.
        queue.offer(1)
        assert queue.scheduler.waiters(1) == 1


class TestLwf:
    def queue(self):
        return BoundedRequestQueue(10, LwfScheduler())

    def test_accumulated_wait_beats_single_old_request(self):
        queue = self.queue()
        queue.offer(1)               # one request at t=0
        queue.now += 4
        queue.offer(2)               # three requests at t=4
        queue.offer(2)
        queue.offer(2)
        queue.now += 4
        # t=8: page 1 waited 1*9=9 (with +1), page 2 waited 3*5=15.
        assert queue.scheduler.total_wait(1, queue.now) == pytest.approx(9.0)
        assert queue.scheduler.total_wait(2, queue.now) == pytest.approx(15.0)
        assert queue.pop() == 2

    def test_single_requests_reduce_to_fifo(self):
        queue = self.queue()
        queue.offer(5)
        queue.now += 1
        queue.offer(3)
        queue.now += 1
        queue.offer(7)
        assert [queue.pop(), queue.pop(), queue.pop()] == [5, 3, 7]
        assert queue.scheduler.reordered == 0

    def test_total_wait_zero_when_not_queued(self):
        assert LwfScheduler().total_wait(9, 100) == 0.0


class TestPushReprogrammer:
    def reprogrammer(self, **overrides):
        kwargs = dict(db_size=20, disk_sizes=(4, 6, 10), rel_freqs=(3, 2, 1),
                      interval=100, min_requests=5)
        kwargs.update(overrides)
        return PushReprogrammer(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"interval": 0}, {"min_requests": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            self.reprogrammer(**kwargs)

    def test_ranking_hot_first_then_cold_in_id_order(self):
        reprogrammer = self.reprogrammer()
        ranking = reprogrammer.ranking({7: 3, 2: 9, 5: 3})
        assert ranking[:3] == [2, 5, 7]      # demand desc, id tie-break
        assert ranking[3:] == [p for p in range(20) if p not in (2, 5, 7)]
        assert sorted(ranking) == list(range(20))

    def test_below_min_requests_is_no_signal(self):
        reprogrammer = self.reprogrammer(min_requests=10)
        scheduler = FifoScheduler(track_temperature=True)
        for page in range(9):
            scheduler.on_enqueued(page, 0)
        assert reprogrammer.maybe_reprogram(100, scheduler) is None
        assert reprogrammer.reprograms == 0

    def test_rebuild_moves_hot_page_to_fast_disk(self):
        reprogrammer = self.reprogrammer()
        scheduler = FifoScheduler(track_temperature=True)
        # Page 19 (slowest disk in the default aggregate ranking) becomes
        # the hottest observed page.
        for _ in range(50):
            scheduler.on_enqueued(19, 0)
            scheduler.on_served(19, 0)
        schedule = reprogrammer.maybe_reprogram(100, scheduler)
        assert schedule is not None
        frequencies = schedule.frequencies()
        # Hot page now broadcasts as often as the fastest disk spins.
        assert frequencies[19] == max(frequencies.values())
        assert reprogrammer.reprograms == 1
        assert reprogrammer.trace == [(100, 50)]

    def test_demand_window_is_differenced(self):
        reprogrammer = self.reprogrammer(min_requests=5)
        scheduler = FifoScheduler(track_temperature=True)
        for _ in range(6):
            scheduler.on_enqueued(3, 0)
            scheduler.on_served(3, 0)
        assert reprogrammer.maybe_reprogram(100, scheduler) is not None
        # No *new* demand since: the cumulative total must not re-trigger.
        assert reprogrammer.maybe_reprogram(200, scheduler) is None


class LegacyQueue(BoundedRequestQueue):
    """The pre-refactor queue, verbatim: hard-coded FIFO service, no
    scheduler hooks, no slot clock.  The parity fixture the FIFO
    discipline must be bit-identical to."""

    def offer(self, page: int) -> Offer:
        if page in self._queued:
            self.duplicates += 1
            return Offer.DUPLICATE
        if len(self._fifo) >= self.capacity:
            self.dropped += 1
            return Offer.DROPPED
        self._fifo.append(page)
        self._queued.add(page)
        self.enqueued += 1
        return Offer.ENQUEUED

    def peek(self):
        return self._fifo[0] if self._fifo else None

    def pop(self) -> int:
        page = self._fifo.popleft()
        self._queued.remove(page)
        self.served += 1
        return page

    def reset_stats(self) -> None:
        self.enqueued = 0
        self.duplicates = 0
        self.dropped = 0
        self.served = 0


def _slot_trace(engine_cls, config, legacy: bool):
    from repro.core.build import build_system

    state = build_system(config)
    if legacy:
        state.server.queue = LegacyQueue(config.server.queue_size)
    sink = MemorySink()
    engine_cls(config, state=state, tracer=SlotTracer(sink)).run()
    return [record.to_dict() for record in sink.records]


@pytest.mark.parametrize("engine_cls", [FastEngine, ReferenceEngine])
def test_fifo_discipline_bit_identical_to_legacy_queue(engine_cls):
    """The scheduler refactor must not move a single slot: a full run's
    trace through the FIFO discipline equals the same run through a
    replica of the pre-refactor queue, for both engines."""
    config = small_config(client__think_time_ratio=40,
                          run__measure_accesses=400, run__seed=11)
    refactored = _slot_trace(engine_cls, config, legacy=False)
    legacy = _slot_trace(engine_cls, config, legacy=True)
    assert refactored == legacy


def test_fifo_discipline_config_is_the_default():
    config = small_config()
    assert config.scheduler == SchedulerConfig()
    assert config.scheduler.discipline == "fifo"


@pytest.mark.parametrize("discipline", DISCIPLINES)
def test_disciplines_run_through_both_engines(discipline):
    """Every discipline completes a small run on both engines and the
    queue snapshot carries its name."""
    config = small_config(client__think_time_ratio=40,
                          run__measure_accesses=150,
                          scheduler__discipline=discipline)
    for engine_cls in (FastEngine, ReferenceEngine):
        from repro.core.build import build_system

        state = build_system(config)
        result = engine_cls(config, state=state).run()
        assert result.response_miss.count > 0
        snapshot = state.server.queue.snapshot()
        assert snapshot["scheduler"]["discipline"] == discipline
