"""Unit and property tests for the bounded request queue."""

import pytest
from hypothesis import given, strategies as st

from repro.server.queue import BoundedRequestQueue, Offer


class TestOfferSemantics:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            BoundedRequestQueue(0)

    def test_enqueue_until_full_then_drop(self):
        queue = BoundedRequestQueue(2)
        assert queue.offer(1) is Offer.ENQUEUED
        assert queue.offer(2) is Offer.ENQUEUED
        assert queue.offer(3) is Offer.DROPPED
        assert len(queue) == 2

    def test_duplicate_detected(self):
        queue = BoundedRequestQueue(5)
        queue.offer(7)
        assert queue.offer(7) is Offer.DUPLICATE
        assert len(queue) == 1

    def test_duplicate_checked_before_capacity(self):
        """A re-request of a queued page is a DUPLICATE even when full —
        the paper's server 'will also ignore a new request for a page that
        is already in the request queue'."""
        queue = BoundedRequestQueue(1)
        queue.offer(1)
        assert queue.offer(1) is Offer.DUPLICATE

    def test_fifo_pop_order(self):
        queue = BoundedRequestQueue(10)
        for page in (5, 3, 9):
            queue.offer(page)
        assert [queue.pop() for _ in range(3)] == [5, 3, 9]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            BoundedRequestQueue(2).pop()

    def test_page_can_be_requeued_after_pop(self):
        queue = BoundedRequestQueue(2)
        queue.offer(4)
        queue.pop()
        assert queue.offer(4) is Offer.ENQUEUED

    def test_contains(self):
        queue = BoundedRequestQueue(2)
        queue.offer(8)
        assert 8 in queue and 9 not in queue


class TestAccounting:
    def test_counters(self):
        queue = BoundedRequestQueue(2)
        queue.offer(1)
        queue.offer(1)
        queue.offer(2)
        queue.offer(3)
        queue.pop()
        assert queue.enqueued == 2
        assert queue.duplicates == 1
        assert queue.dropped == 1
        assert queue.served == 1
        assert queue.offers == 4

    def test_drop_rate_over_distinct_offers(self):
        """Duplicates are excluded from both sides of the ratio: a dropped
        request among one enqueued and any number of duplicates is a 50%
        drop rate, however often the queued page is re-requested."""
        queue = BoundedRequestQueue(1)
        queue.offer(1)   # enqueued
        queue.offer(1)   # duplicate
        queue.offer(2)   # dropped
        assert queue.distinct_offers == 2
        assert queue.drop_rate == pytest.approx(1 / 2)
        # More duplicates must not dilute the rate.
        queue.offer(1)
        queue.offer(1)
        assert queue.drop_rate == pytest.approx(1 / 2)

    def test_drop_rate_empty(self):
        assert BoundedRequestQueue(1).drop_rate == 0.0

    def test_reset_stats_keeps_contents(self):
        queue = BoundedRequestQueue(3)
        queue.offer(1)
        queue.offer(2)
        queue.reset_stats()
        assert queue.enqueued == queue.dropped == queue.served == 0
        assert len(queue) == 2
        assert queue.pop() == 1


class TestInvariants:
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 9)),
                    max_size=300),
           st.integers(min_value=1, max_value=5))
    def test_queue_invariants_under_arbitrary_traffic(self, ops, capacity):
        """Length never exceeds capacity; the dedup set mirrors the FIFO;
        counters partition the offers."""
        queue = BoundedRequestQueue(capacity)
        for is_pop, page in ops:
            if is_pop and len(queue):
                queue.pop()
            else:
                queue.offer(page)
            assert len(queue) <= capacity
            assert len(queue._queued) == len(queue._fifo)
            assert set(queue._fifo) == queue._queued
        assert queue.offers == queue.enqueued + queue.duplicates + queue.dropped
        assert queue.served + len(queue) == queue.enqueued


class TestObserver:
    """attach_observer / detach_observer edge cases.

    The observer mechanism shadows ``offer`` with an instance attribute;
    the request tracers and the net server's telemetry both depend on
    attach/detach being deterministic and fully reversible.
    """

    def test_observer_sees_every_outcome(self):
        queue = BoundedRequestQueue(1)
        seen = []
        queue.attach_observer(lambda page, outcome: seen.append(
            (page, outcome)))
        queue.offer(1)
        queue.offer(1)
        queue.offer(2)
        assert seen == [(1, Offer.ENQUEUED), (1, Offer.DUPLICATE),
                        (2, Offer.DROPPED)]

    def test_attach_twice_raises_and_keeps_first(self):
        queue = BoundedRequestQueue(2)
        first = []
        queue.attach_observer(lambda page, outcome: first.append(page))
        with pytest.raises(RuntimeError, match="already attached"):
            queue.attach_observer(lambda page, outcome: None)
        # The losing attach must not have disturbed the first observer.
        queue.offer(7)
        assert first == [7]

    def test_detach_restores_plain_bound_method(self):
        queue = BoundedRequestQueue(2)
        unobserved = queue.offer
        queue.attach_observer(lambda page, outcome: None)
        assert queue.offer is not unobserved  # shadowed while attached
        queue.detach_observer()
        assert "offer" not in queue.__dict__
        assert queue.offer == unobserved  # the plain bound method again

    def test_detach_without_attach_is_a_noop(self):
        queue = BoundedRequestQueue(2)
        queue.detach_observer()
        assert queue.offer(1) is Offer.ENQUEUED

    def test_detach_stops_callbacks_but_keeps_semantics(self):
        queue = BoundedRequestQueue(1)
        seen = []
        queue.attach_observer(lambda page, outcome: seen.append(page))
        queue.offer(1)
        queue.detach_observer()
        assert queue.offer(1) is Offer.DUPLICATE
        assert queue.offer(2) is Offer.DROPPED
        assert seen == [1]

    def test_reattach_after_detach(self):
        queue = BoundedRequestQueue(2)
        queue.attach_observer(lambda page, outcome: None)
        queue.detach_observer()
        second = []
        queue.attach_observer(lambda page, outcome: second.append(outcome))
        queue.offer(3)
        assert second == [Offer.ENQUEUED]

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 9)),
                    max_size=300),
           st.integers(min_value=1, max_value=5))
    def test_counters_hold_with_observer_attached(self, ops, capacity):
        """The observed queue keeps the exact unobserved accounting:
        ``enqueued + duplicates + dropped == offers`` and
        ``served <= enqueued``, with the observer log matching the
        counters outcome-for-outcome."""
        queue = BoundedRequestQueue(capacity)
        log = []
        queue.attach_observer(lambda page, outcome: log.append(outcome))
        offers = 0
        for is_pop, page in ops:
            if is_pop and len(queue):
                queue.pop()
            else:
                queue.offer(page)
                offers += 1
        assert queue.offers == offers == len(log)
        assert queue.enqueued + queue.duplicates + queue.dropped == offers
        assert queue.served <= queue.enqueued
        assert queue.served + len(queue) == queue.enqueued
        assert log.count(Offer.ENQUEUED) == queue.enqueued
        assert log.count(Offer.DUPLICATE) == queue.duplicates
        assert log.count(Offer.DROPPED) == queue.dropped
