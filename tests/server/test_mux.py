"""Unit tests for the PullBW-weighted MUX."""

import numpy as np
import pytest

from repro.server.mux import PushPullMux


class TestPushPullMux:
    def test_bounds_validated(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            PushPullMux(-0.1, rng)
        with pytest.raises(ValueError):
            PushPullMux(1.1, rng)

    def test_pure_push_never_pulls(self):
        mux = PushPullMux(0.0, np.random.default_rng(0))
        assert not any(mux.wants_pull() for _ in range(1000))

    def test_pure_pull_always_pulls(self):
        mux = PushPullMux(1.0, np.random.default_rng(0))
        assert all(mux.wants_pull() for _ in range(1000))

    @pytest.mark.parametrize("pull_bw", [0.1, 0.3, 0.5])
    def test_coin_is_calibrated(self, pull_bw):
        mux = PushPullMux(pull_bw, np.random.default_rng(7))
        draws = [mux.wants_pull() for _ in range(50_000)]
        assert np.mean(draws) == pytest.approx(pull_bw, abs=0.01)

    def test_deterministic_given_seed(self):
        a = PushPullMux(0.5, np.random.default_rng(3))
        b = PushPullMux(0.5, np.random.default_rng(3))
        assert [a.wants_pull() for _ in range(100)] == \
            [b.wants_pull() for _ in range(100)]

    def test_degenerate_settings_do_not_consume_randomness(self):
        rng = np.random.default_rng(5)
        mux = PushPullMux(0.0, rng)
        before = rng.random()
        for _ in range(100):
            mux.wants_pull()
        rng2 = np.random.default_rng(5)
        assert before == rng2.random()
