"""The client fleet: workload fidelity, accounting, censoring."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.algorithms import Algorithm
from repro.core.config import SystemConfig
from repro.net.client import ClientFleet, FleetSettings
from repro.net.server import NetServer, NetServerSettings
from repro.obs.metrics import MetricsRegistry

CONFIG = SystemConfig(algorithm=Algorithm.IPP)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=30))


async def _drive(config, fleet_settings, *, seed=0, slots=500,
                 slot_duration=0.001, registry=None):
    """Run a server to completion with a fleet attached; return results."""
    server = NetServer(config, NetServerSettings(
        slot_duration=slot_duration, max_slots=slots))
    await server.start()
    fleet = ClientFleet(config, "127.0.0.1", server.port, slot_duration,
                        fleet_settings, seed=seed, registry=registry)
    try:
        await fleet.start()
        await server.wait_finished()
        await asyncio.sleep(10 * slot_duration)
        result = await fleet.stop(fetch_stats=True)
    finally:
        await server.stop()
    return result


class TestSettings:
    @pytest.mark.parametrize("kwargs", [
        {"num_clients": 0},
        {"think_time": 0.0},
        {"settle_slots": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FleetSettings(**kwargs)

    def test_slot_duration_must_be_positive(self):
        with pytest.raises(ValueError, match="slot_duration"):
            ClientFleet(CONFIG, "127.0.0.1", 1, 0.0)

    def test_cannot_start_twice(self):
        fleet = ClientFleet(CONFIG, "127.0.0.1", 1, 0.001,
                            FleetSettings(num_clients=1))

        async def scenario():
            fleet._started = True
            await fleet.start()

        with pytest.raises(RuntimeError, match="already started"):
            run(scenario())


class TestWarmCaches:
    def test_warm_fleet_starts_with_full_caches(self):
        fleet = ClientFleet(CONFIG, "127.0.0.1", 1, 0.001,
                            FleetSettings(num_clients=3))
        for client in fleet._clients:
            assert len(client.cache) == CONFIG.client.cache_size

    def test_cold_fleet_starts_empty(self):
        fleet = ClientFleet(CONFIG, "127.0.0.1", 1, 0.001,
                            FleetSettings(num_clients=3, warm_caches=False))
        for client in fleet._clients:
            assert len(client.cache) == 0

    def test_cache_size_override(self):
        fleet = ClientFleet(CONFIG, "127.0.0.1", 1, 0.001,
                            FleetSettings(num_clients=1, cache_size=5))
        assert fleet._clients[0].cache.capacity == 5

    def test_clients_draw_distinct_streams(self):
        fleet = ClientFleet(CONFIG, "127.0.0.1", 1, 0.001,
                            FleetSettings(num_clients=2))
        a, b = fleet._clients
        draws_a = [int(a.sampler.sample_one()) for _ in range(50)]
        draws_b = [int(b.sampler.sample_one()) for _ in range(50)]
        assert draws_a != draws_b


class TestAgainstLiveServer:
    def test_accounting_invariants(self):
        registry = MetricsRegistry()
        result = run(_drive(
            CONFIG,
            FleetSettings(num_clients=10, think_time=20.0),
            slots=600, registry=registry))
        assert result.accesses == result.hits + result.misses
        assert result.accesses > 0
        assert result.requests_sent <= result.misses
        assert result.pages_seen > 0
        assert 0.0 <= result.hit_rate <= 1.0
        # Completed + still-pending misses account for every miss.
        completed = len(result.all_latencies_slots)
        assert completed + result.censored == result.misses
        assert all(v >= 0 for v in result.all_latencies_slots)
        # The live registry mirrors the aggregate counts.
        snapshot = registry.snapshot()
        assert snapshot["fleet_accesses_total"]["value"] == result.accesses
        assert snapshot["fleet_hits_total"]["value"] == result.hits
        assert snapshot["fleet_misses_total"]["value"] == result.misses
        # stop(fetch_stats=True) captured the server's view.
        assert result.server_stats is not None
        assert "server" in result.server_stats

    def test_effective_slot_duration_is_fitted(self):
        result = run(_drive(
            CONFIG, FleetSettings(num_clients=4, think_time=50.0),
            slots=400))
        nominal = 0.001
        # Loaded CI hosts run the clock slower than nominal, never faster.
        assert result.effective_slot_duration == pytest.approx(
            nominal, rel=3.0)
        assert result.first_slot is not None
        assert result.last_slot is not None
        assert result.last_slot > result.first_slot

    def test_pure_push_sends_no_requests(self):
        config = SystemConfig(algorithm=Algorithm.PURE_PUSH)
        result = run(_drive(
            config, FleetSettings(num_clients=6, think_time=20.0),
            slots=600))
        assert result.requests_sent == 0
        assert result.accesses > 0
        # Misses still complete by snooping the push broadcast.
        assert result.pages_seen > 0

    def test_settle_slots_censor_early_latencies(self):
        settled = run(_drive(
            CONFIG,
            FleetSettings(num_clients=8, think_time=10.0, settle_slots=10_000),
            slots=500))
        # Every request was issued before slot 10000, so nothing is
        # "measured" — but the raw record keeps them all.
        assert settled.latencies_slots == []
        assert settled.quantiles() is None
        assert len(settled.all_latencies_slots) + settled.censored == (
            settled.misses)


class TestCensoring:
    def test_pending_misses_are_censored_when_server_never_answers(self):
        """Against a black-hole server every miss waits forever."""
        async def scenario():
            async def swallow(reader, writer):
                while await reader.read(1 << 16):
                    pass

            server = await asyncio.start_server(
                swallow, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            fleet = ClientFleet(
                CONFIG, "127.0.0.1", port, 0.001,
                FleetSettings(num_clients=5, think_time=1.0,
                              warm_caches=False))
            await fleet.start()
            assert not await fleet.wait_for_slot(0, timeout=0.05)
            await asyncio.sleep(0.3)
            result = await fleet.stop()
            server.close()
            await server.wait_closed()
            return result

        result = run(scenario())
        # Cold caches + no PAGE frames: every client's first access is a
        # miss that never resolves.
        assert result.censored == 5
        assert result.misses == 5
        assert result.hits == 0
        assert result.all_latencies_slots == []
        assert result.requests_sent == 5  # IPP has a backchannel
