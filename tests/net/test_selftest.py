"""The loopback self-test: figure schema, ordering check, tiny-scale run."""

from __future__ import annotations

import math

import pytest

from repro.experiments.base import figure_from_dict
from repro.net.selftest import (
    FLEET_LABEL,
    SIM_LABEL,
    SelfTestResult,
    SelfTestSettings,
    run_selftest,
)

#: Small enough to finish in seconds, large enough to exercise the path.
TINY = SelfTestSettings(num_clients=4, slots=250, slot_duration=0.001,
                        think_time=20.0, pull_bws=(0.0, 1.0),
                        settle_fraction=0.1, seed=7)


class TestSettings:
    @pytest.mark.parametrize("kwargs", [
        {"num_clients": 0},
        {"slots": 0},
        {"pull_bws": ()},
        {"settle_fraction": 1.0},
        {"settle_fraction": -0.1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SelfTestSettings(**kwargs)

    def test_equivalent_ttr_matches_offered_load(self):
        # N clients / think T units at MCThinkTime 20: N*20/T.
        settings = SelfTestSettings(num_clients=200, think_time=200.0)
        assert settings.equivalent_ttr == 20.0
        assert SelfTestSettings(num_clients=50,
                                think_time=100.0).equivalent_ttr == 10.0

    def test_point_timeout_scales_with_run_length(self):
        short = SelfTestSettings(slots=100, slot_duration=0.001)
        long = SelfTestSettings(slots=10_000, slot_duration=0.005)
        assert long.point_timeout > short.point_timeout


class TestOrdering:
    def _result(self, fleet, sim):
        return SelfTestResult(figure=None, fleet_p90=fleet, sim_p90=sim)

    def test_matching_order_ok(self):
        assert self._result([1.0, 3.0, 2.0], [10.0, 30.0, 20.0]).ordering_ok

    def test_mismatched_order_fails(self):
        assert not self._result([1.0, 3.0, 2.0], [10.0, 20.0, 30.0]).ok

    def test_nan_fails(self):
        assert not self._result([1.0, math.nan], [1.0, 2.0]).ordering_ok
        assert not self._result([1.0, 2.0], [math.nan, 2.0]).ordering_ok

    def test_empty_or_ragged_fails(self):
        assert not self._result([], []).ordering_ok
        assert not self._result([1.0], [1.0, 2.0]).ordering_ok


class TestTinyRun:
    @pytest.fixture(scope="class")
    def result(self):
        return run_selftest(settings=TINY)

    def test_figure_shape(self, result):
        figure = result.figure
        assert figure.figure_id == "net_selftest"
        fleet = figure.series_by_label(FLEET_LABEL)
        sim = figure.series_by_label(SIM_LABEL)
        assert fleet.x == list(TINY.pull_bws)
        assert sim.x == list(TINY.pull_bws)
        assert len(result.fleet_p90) == len(TINY.pull_bws)
        assert len(result.sim_p90) == len(TINY.pull_bws)

    def test_figure_round_trips_through_schema(self, result):
        loaded = figure_from_dict(result.figure.to_dict())
        assert loaded.figure_id == "net_selftest"
        assert [s.label for s in loaded.series] == [FLEET_LABEL, SIM_LABEL]
        restored = loaded.series_by_label(FLEET_LABEL)
        original = result.figure.series_by_label(FLEET_LABEL)
        assert [p.p90 for p in restored.points] == [
            p.p90 for p in original.points]

    def test_manifest_records_the_fleet_scale(self, result):
        manifest = result.figure.manifest
        assert manifest["engine"] == "net"
        selftest = manifest["selftest"]
        assert selftest["num_clients"] == TINY.num_clients
        assert selftest["slots"] == TINY.slots
        assert selftest["equivalent_ttr"] == TINY.equivalent_ttr

    def test_diagnostics_cover_every_point(self, result):
        assert [d["pull_bw"] for d in result.diagnostics] == list(
            TINY.pull_bws)
        for diagnostic in result.diagnostics:
            fleet = diagnostic["fleet"]
            assert fleet["accesses"] == fleet["hits"] + fleet["misses"]
            assert diagnostic["server_stats"]["slot"] == TINY.slots

    def test_sim_series_is_populated(self, result):
        # The simulator side always yields finite quantiles.
        assert all(not math.isnan(v) for v in result.sim_p90)

    def test_to_dict_is_json_shaped(self, result):
        import json

        payload = result.to_dict()
        assert set(payload) >= {"ok", "ordering_ok", "fleet_p90",
                                "sim_p90", "figure", "diagnostics"}
        json.dumps(payload)  # must not raise
