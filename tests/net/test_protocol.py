"""Wire-format round trips and malformed-frame handling."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, strategies as st

from repro.net.protocol import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    FrameError,
    Hello,
    Page,
    Request,
    Stats,
    StatsRequest,
    decode_payload,
    encode_frame,
)
from repro.obs.events import SLOT_KINDS

FRAMES = [
    Hello(0),
    Hello(123456789),
    Page(0, 0, "push"),
    Page(999, 2**40, "pull"),
    Request(42),
    StatsRequest(),
    Stats({}),
    Stats({"slot": 7, "metrics": {"a": [1, 2.5, None]}, "s": "text"}),
]


class TestRoundTrip:
    @pytest.mark.parametrize("frame", FRAMES, ids=lambda f: repr(f)[:40])
    def test_encode_decode(self, frame):
        blob = encode_frame(frame)
        assert decode_payload(blob[4:]) == frame

    def test_length_prefix_counts_body(self):
        blob = encode_frame(Request(1))
        (length,) = struct.unpack("!I", blob[:4])
        assert length == len(blob) - 4

    def test_page_kind_is_slot_kind_vocabulary(self):
        for kind in ("push", "pull"):
            assert kind in SLOT_KINDS
            frame = Page(5, 9, kind)
            assert decode_payload(encode_frame(frame)[4:]).kind == kind

    def test_unknown_kind_rejected_at_encode(self):
        with pytest.raises(FrameError, match="unknown slot kind"):
            encode_frame(Page(1, 2, "warp"))


class TestMalformed:
    def test_empty_body(self):
        with pytest.raises(FrameError, match="empty"):
            decode_payload(b"")

    def test_unknown_type(self):
        with pytest.raises(FrameError, match="unknown frame type"):
            decode_payload(bytes([250]))

    def test_truncated_payload(self):
        blob = encode_frame(Request(7))
        with pytest.raises(FrameError, match="truncated"):
            decode_payload(blob[4:-2])

    def test_stats_request_with_payload(self):
        with pytest.raises(FrameError, match="no payload"):
            decode_payload(bytes([4]) + b"x")

    def test_stats_bad_json(self):
        with pytest.raises(FrameError, match="bad STATS payload"):
            decode_payload(bytes([5]) + b"{nope")

    def test_stats_non_object(self):
        with pytest.raises(FrameError, match="JSON object"):
            decode_payload(bytes([5]) + b"[1,2]")

    def test_page_unknown_kind_code(self):
        body = bytes([2]) + struct.pack("!qqB", 1, 2, 200)
        with pytest.raises(FrameError, match="slot-kind code"):
            decode_payload(body)

    def test_decoder_rejects_zero_length(self):
        with pytest.raises(FrameError, match="bad frame length"):
            FrameDecoder().feed(struct.pack("!I", 0) + b"x")

    def test_decoder_rejects_oversized_length(self):
        with pytest.raises(FrameError, match="bad frame length"):
            FrameDecoder().feed(struct.pack("!I", MAX_FRAME_BYTES + 1))


class TestDecoder:
    def test_whole_stream_at_once(self):
        blob = b"".join(encode_frame(f) for f in FRAMES)
        assert FrameDecoder().feed(blob) == FRAMES

    def test_empty_feed(self):
        decoder = FrameDecoder()
        assert decoder.feed(b"") == []
        assert decoder.pending_bytes == 0

    @given(st.integers(min_value=1, max_value=7))
    def test_arbitrary_chunking(self, chunk):
        blob = b"".join(encode_frame(f) for f in FRAMES)
        decoder = FrameDecoder()
        out = []
        for index in range(0, len(blob), chunk):
            out.extend(decoder.feed(blob[index:index + chunk]))
        assert out == FRAMES
        assert decoder.pending_bytes == 0

    def test_pending_bytes_mid_frame(self):
        blob = encode_frame(Hello(5))
        decoder = FrameDecoder()
        assert decoder.feed(blob[:6]) == []
        assert decoder.pending_bytes == 6
        assert decoder.feed(blob[6:]) == [Hello(5)]
