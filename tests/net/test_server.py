"""The asyncio broadcast server: slot clock, fan-out, slow consumers."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.algorithms import Algorithm
from repro.core.config import SystemConfig
from repro.net.protocol import (
    Hello,
    Page,
    Request,
    Stats,
    StatsRequest,
    read_frame,
    write_frame,
)
from repro.net.server import NetServer, NetServerSettings
from repro.obs.metrics import MetricsRegistry

CONFIG = SystemConfig(algorithm=Algorithm.IPP)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=30))


async def _collect_pages(reader, count):
    pages = []
    while len(pages) < count:
        frame = await read_frame(reader)
        if isinstance(frame, Page):
            pages.append(frame)
    return pages


class TestSettings:
    @pytest.mark.parametrize("kwargs", [
        {"slot_duration": 0.0},
        {"send_queue_frames": 0},
        {"drop_after": 0},
        {"max_slots": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            NetServerSettings(**kwargs)


class TestSlotClock:
    def test_emits_monotonic_slots_and_finishes(self):
        async def scenario():
            server = NetServer(CONFIG, NetServerSettings(
                slot_duration=0.001, max_slots=120))
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            pages = await _collect_pages(reader, 30)
            await server.wait_finished()
            stats = server.stats_snapshot()
            await server.stop()
            writer.close()
            return pages, stats

        pages, stats = run(scenario())
        slots = [p.slot for p in pages]
        assert slots == sorted(slots)
        assert all(p.kind in ("push", "pull") for p in pages)
        assert stats["slot"] == 120
        # The wrapped state machine did the ticking: its slot-kind
        # counters account for every emitted slot.
        assert sum(stats["server"]["slots"].values()) == 120

    def test_wraps_state_machine_unchanged(self):
        """The net server drives repro.server's BroadcastServer as-is."""
        from repro.core.build import build_system
        from repro.server.broadcast_server import BroadcastServer

        server = NetServer(CONFIG, NetServerSettings(max_slots=1))
        assert isinstance(server.server, BroadcastServer)
        assert server.server is server.state.server
        reference = build_system(CONFIG)
        assert type(server.state) is type(reference)


class TestBackchannel:
    def test_requests_reach_the_bounded_queue(self):
        async def scenario():
            server = NetServer(CONFIG, NetServerSettings(
                slot_duration=0.001, max_slots=300))
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            write_frame(writer, Hello(0))
            for page in (900, 901, 901):  # one duplicate
                write_frame(writer, Request(page))
            await writer.drain()
            await asyncio.sleep(0.05)
            queue = server.server.queue
            counts = (queue.enqueued, queue.duplicates)
            await server.stop()
            writer.close()
            return counts

        enqueued, duplicates = run(scenario())
        assert enqueued == 2
        assert duplicates == 1

    def test_stats_frame_round_trip(self):
        async def scenario():
            registry = MetricsRegistry()
            server = NetServer(CONFIG, NetServerSettings(
                slot_duration=0.001, max_slots=500), registry=registry)
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            write_frame(writer, StatsRequest())
            await writer.drain()
            while True:
                frame = await read_frame(reader)
                if isinstance(frame, Stats):
                    break
            await server.stop()
            writer.close()
            return frame.payload

        payload = run(scenario())
        assert payload["connected_clients"] == 1
        assert "server" in payload and "queue" in payload["server"]
        metrics = payload["metrics"]
        assert metrics["net_connections_total"]["value"] == 1
        # The sim-side adapter instruments are present in the same
        # snapshot (shared export path).
        assert "server_slots_push_total" in metrics


class TestSlowConsumer:
    def test_non_reader_is_shed_then_dropped_without_stalling(self):
        """A client that stops reading loses frames (counted), then its
        connection; the slot clock and other clients never stall."""
        async def scenario():
            registry = MetricsRegistry()
            server = NetServer(CONFIG, NetServerSettings(
                slot_duration=0.001, max_slots=400,
                send_queue_frames=4, drop_after=8), registry=registry)
            await server.start()
            good_reader, good_writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            write_frame(good_writer, Hello(0))
            bad_reader, bad_writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            write_frame(bad_writer, Hello(1))
            await good_writer.drain()
            await bad_writer.drain()
            while {c.client_id for c in server._connections.values()} != {
                    0, 1}:  # both HELLOs processed
                await asyncio.sleep(0.001)
            # Simulate a wedged consumer: stall the server-side sender so
            # its bounded queue stops draining (the OS socket buffers
            # would otherwise absorb far more than this test's frames).
            for conn in server._connections.values():
                if conn.client_id == 1:
                    conn.sender.cancel()
            # The good client keeps reading the whole time.
            pages = await _collect_pages(good_reader, 300)
            await server.wait_finished()
            snapshot = registry.snapshot()
            connected = server.connected_clients
            await server.stop()
            good_writer.close()
            bad_writer.close()
            return pages, snapshot, connected

        pages, snapshot, connected = run(scenario())
        # The reading client observed a monotone slot stream to the end.
        slots = [p.slot for p in pages]
        assert slots == sorted(slots)
        assert snapshot["net_frames_shed_total"]["value"] > 0
        assert snapshot["net_clients_dropped_total"]["value"] == 1
        assert connected == 1  # only the reading client survived
