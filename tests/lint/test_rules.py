"""Unit tests for individual rules on tiny in-memory trees."""

from __future__ import annotations

import textwrap

from repro.lint.engine import run_lint


def lint_source(tmp_path, code, name="mod.py", select=None):
    path = tmp_path / name
    path.write_text(textwrap.dedent(code))
    return run_lint([path], select=select)


class TestDeterminism:
    def test_from_import_alias_is_resolved(self, tmp_path):
        result = lint_source(tmp_path, """\
            from time import monotonic as tick

            def f():
                return tick()
            """)
        assert [f.rule for f in result.findings] == ["REP001"]
        assert "time.monotonic" in result.findings[0].message

    def test_module_alias_is_resolved(self, tmp_path):
        result = lint_source(tmp_path, """\
            import numpy.random as npr

            def f():
                return npr.randint(10)
            """)
        assert [f.rule for f in result.findings] == ["REP001"]

    def test_seeded_rng_methods_are_fine(self, tmp_path):
        result = lint_source(tmp_path, """\
            import numpy as np

            def f(seed):
                rng = np.random.default_rng(seed)
                return rng.random()
            """)
        assert result.ok

    def test_local_named_random_not_confused(self, tmp_path):
        # A local variable named 'random' is not the random module.
        result = lint_source(tmp_path, """\
            def f(random):
                return random.choice([1, 2])
            """)
        assert result.ok


class TestSeedDiscipline:
    def test_positional_seed_ok(self, tmp_path):
        result = lint_source(tmp_path, """\
            import numpy as np

            def f():
                return np.random.default_rng(42)
            """)
        assert result.ok

    def test_keyword_seed_none_flagged(self, tmp_path):
        result = lint_source(tmp_path, """\
            from numpy.random import default_rng

            def f():
                return default_rng(seed=None)
            """)
        assert [f.rule for f in result.findings] == ["REP002"]


class TestSimTimeEquality:
    def test_suffix_match(self, tmp_path):
        result = lint_source(tmp_path, """\
            def f(record):
                return record.arrival_time == record.service_time
            """)
        assert [f.rule for f in result.findings] == ["REP003"]

    def test_ordering_comparisons_ok(self, tmp_path):
        result = lint_source(tmp_path, """\
            def f(now, deadline):
                return now >= deadline
            """)
        assert result.ok

    def test_is_none_ok(self, tmp_path):
        result = lint_source(tmp_path, """\
            def f(end_time):
                return end_time is not None
            """)
        assert result.ok


class TestProjectRules:
    def test_parity_skips_tree_without_engines(self, tmp_path):
        # A config.py alone (no fast.py/simulation.py) is a partial scan,
        # not a parity violation.
        (tmp_path / "config.py").write_text(textwrap.dedent("""\
            from dataclasses import dataclass

            @dataclass
            class SystemConfig:
                knob: int = 0
            """))
        assert run_lint([tmp_path], select=["REP004"]).ok

    def test_enum_without_registry_is_flagged(self, tmp_path):
        (tmp_path / "broadcast_server.py").write_text(textwrap.dedent("""\
            import enum

            class SlotKind(str, enum.Enum):
                PUSH = "push"
            """))
        result = run_lint([tmp_path], select=["REP005"])
        assert [f.rule for f in result.findings] == ["REP005"]
        assert "no events.py registry" in result.findings[0].message

    def test_hook_symmetry_needs_both_engines(self, tmp_path):
        (tmp_path / "fast.py").write_text(textwrap.dedent("""\
            def run(tracer):
                tracer.on_slot(None)
            """))
        assert run_lint([tmp_path], select=["REP006"]).ok
