"""Scope/symbol-table layer: bindings, resolution, canonical names."""

from __future__ import annotations

import ast

from repro.lint.scopes import (
    ASYNC_FUNCTION,
    COMPREHENSION,
    ScopeTable,
)


def table(code: str) -> ScopeTable:
    return ScopeTable.of(ast.parse(code))


def scope_named(t: ScopeTable, name: str):
    return next(s for s in t.module.walk() if s.name == name)


class TestBindings:
    def test_tuple_unpacking_aligns_elementwise(self):
        t = table("a, b = compute(), 2\n")
        a = t.module.bindings["a"][0]
        b = t.module.bindings["b"][0]
        assert isinstance(a.value, ast.Call) and not a.unpacked
        assert isinstance(b.value, ast.Constant) and not b.unpacked

    def test_tuple_unpacking_of_opaque_rhs_marks_unpacked(self):
        t = table("a, b = pair()\n")
        a = t.module.bindings["a"][0]
        assert isinstance(a.value, ast.Call)
        assert a.unpacked

    def test_starred_target_is_unpacked(self):
        t = table("first, *rest = [1, 2, 3]\n")
        assert t.module.bindings["rest"][0].unpacked

    def test_augmented_assignment_reads_and_rebinds(self):
        t = table("total = 0\ntotal += 1\n")
        kinds = [b.kind for b in t.module.bindings["total"]]
        assert kinds == ["assign", "augassign"]
        # The augmented assignment also counts as a load of the name.
        assert len(t.module.loads["total"]) == 1

    def test_for_loop_binds_element_of_iterable(self):
        t = table("for item in items():\n    pass\n")
        binding = t.module.bindings["item"][0]
        assert isinstance(binding.value, ast.Call)
        assert binding.unpacked


class TestResolution:
    CODE = """
def outer():
    total = 0
    def inner():
        nonlocal total
        total = 1
    def shadow():
        total = 2
    return inner, shadow

counter = 0
def bump():
    global counter
    counter = 1
"""

    def test_nonlocal_resolves_to_enclosing_function(self):
        t = table(self.CODE)
        inner = scope_named(t, "inner")
        assert t.resolving_scope(inner, "total") is scope_named(t, "outer")

    def test_local_shadow_resolves_locally(self):
        t = table(self.CODE)
        shadow = scope_named(t, "shadow")
        assert t.resolving_scope(shadow, "total") is shadow

    def test_global_resolves_to_module(self):
        t = table(self.CODE)
        bump = scope_named(t, "bump")
        assert t.resolving_scope(bump, "counter") is t.module

    def test_class_scope_is_skipped_by_methods(self):
        t = table("""
value = 1
class C:
    value = 2
    def method(self):
        return value
""")
        method = scope_named(t, "method")
        assert t.resolving_scope(method, "value") is t.module

    def test_class_body_sees_its_own_binding(self):
        t = table("""
class C:
    value = 2
    doubled = value * 2
""")
        c = scope_named(t, "C")
        assert t.resolving_scope(c, "value") is c


class TestComprehensions:
    def test_comprehension_gets_its_own_scope(self):
        t = table("xs = [item for item in range(3)]\n")
        comp = next(s for s in t.module.walk()
                    if s.kind == COMPREHENSION)
        assert comp.binds("item")
        assert not t.module.binds("item")

    def test_first_iterable_evaluates_in_enclosing_scope(self):
        t = table("xs = [a for a in source]\n")
        load = t.module.loads["source"][0]
        assert t.scope_of(load) is t.module

    def test_later_clauses_run_inside_the_comprehension(self):
        t = table("xs = [a for a in src for b in a.parts if b]\n")
        comp = next(s for s in t.module.walk()
                    if s.kind == COMPREHENSION)
        assert comp.binds("a") and comp.binds("b")
        # 'a.parts' (the second iterable) loads 'a' inside the comp.
        assert comp.loads.get("a")


class TestAsyncAndDecorators:
    CODE = """
import functools
import asyncio

@functools.wraps(print)
async def runner():
    await asyncio.sleep(0)
"""

    def test_decorated_async_def_scope_kind(self):
        t = table(self.CODE)
        runner = scope_named(t, "runner")
        assert runner.kind == ASYNC_FUNCTION

    def test_decorator_evaluates_in_defining_scope(self):
        t = table(self.CODE)
        load = t.module.loads["functools"][0]
        assert t.scope_of(load) is t.module

    def test_in_async_function(self):
        t = table(self.CODE)
        tree = t.module.node
        sleep_call = next(n for n in ast.walk(tree)
                          if isinstance(n, ast.Call)
                          and isinstance(n.func, ast.Attribute)
                          and n.func.attr == "sleep")
        assert t.in_async_function(sleep_call)


class TestLoadsAndCanonical:
    def test_loads_resolving_to_sees_closure_uses(self):
        t = table("""
def outer():
    task = make()
    def reader():
        return task
    return reader
""")
        outer = scope_named(t, "outer")
        assert len(t.loads_resolving_to(outer, "task")) == 1

    def test_loads_resolving_to_ignores_shadowed_uses(self):
        t = table("""
def outer():
    task = make()
    def shadow():
        task = other()
        return task
""")
        outer = scope_named(t, "outer")
        assert t.loads_resolving_to(outer, "task") == []

    def test_canonical_resolves_import_aliases(self):
        t = table("import numpy as np\nrng = np.random.default_rng(0)\n")
        call = next(n for n in ast.walk(t.module.node)
                    if isinstance(n, ast.Call))
        assert t.canonical(call.func) == "numpy.random.default_rng"

    def test_canonical_refuses_shadowed_imports(self):
        t = table("""
import time

def fake(stub):
    time = stub
    return time.sleep
""")
        fake = scope_named(t, "fake")
        load = fake.loads["time"][0]
        attribute = t.parent_of(load)
        assert t.canonical(attribute) is None

    def test_canonical_from_import(self):
        t = table("from time import sleep as snooze\nsnooze(1)\n")
        call = next(n for n in ast.walk(t.module.node)
                    if isinstance(n, ast.Call))
        assert t.canonical(call.func) == "time.sleep"
