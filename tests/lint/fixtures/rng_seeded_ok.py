"""Fixture: properly seeded RNG constructions (clean for REP001/REP002)."""

import numpy as np


def build_rngs(seed):
    seed_seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seed_seq.spawn(3)]


def derived(config):
    return np.random.default_rng(np.random.SeedSequence((config.seed, 7)))
