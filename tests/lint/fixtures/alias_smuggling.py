"""Fixture: aliased imports and bare references must still be caught."""

import time
from time import time as clock


def aliased_call():
    return clock()


def smuggled_reference():
    pc = time.perf_counter
    return pc()
