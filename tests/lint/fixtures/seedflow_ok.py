"""Seed-flow clean fixture: every RNG roots in configuration."""
import numpy as np


def build_rngs(config) -> list:
    seed_seq = np.random.SeedSequence(config.run.seed)
    return [np.random.default_rng(child) for child in seed_seq.spawn(3)]


def derived(seed: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence((seed, 0xBEEF)))


def caller(config) -> np.random.Generator:
    return derived(config.run.seed)
