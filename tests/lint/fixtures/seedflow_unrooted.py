"""REP010 fixture: seeds that derive from entropy, not configuration."""
import os

import numpy as np


def direct() -> np.random.Generator:
    return np.random.default_rng(os.getpid())


def via_local() -> np.random.Generator:
    entropy = os.getpid()
    return np.random.default_rng(entropy)


def via_helper() -> np.random.Generator:
    return np.random.default_rng(worker_token())


def worker_token() -> int:
    return os.getpid() % 1000
