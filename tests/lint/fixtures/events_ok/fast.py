"""Fast engine: registry-member literals, hooks symmetric with reference."""


def emit(tracer, record):
    if record.kind == "push":
        tracer.on_slot(record)
    tracer.on_served(record)
