"""Reference engine: same literals and hook set as the fast engine."""


def emit(tracer, record):
    if record.kind != "idle":
        tracer.on_slot(record)
    tracer.on_served(record)
