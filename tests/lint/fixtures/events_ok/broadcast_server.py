"""Server enum in sync with the registry."""

import enum


class SlotKind(str, enum.Enum):
    PUSH = "push"
    PULL = "pull"
    PADDING = "padding"
    IDLE = "idle"
