"""Queue enum in sync with the registry."""

import enum


class Offer(str, enum.Enum):
    ENQUEUED = "enqueued"
    DUPLICATE = "duplicate"
    DROPPED = "dropped"
