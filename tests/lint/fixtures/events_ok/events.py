"""Mini registry mirroring repro/obs/events.py (REP005/REP006 clean)."""

SLOT_KINDS = ("push", "pull", "padding", "idle")
OFFER_OUTCOMES = ("enqueued", "duplicate", "dropped")
SERVED_KINDS = ("cache", "push", "pull")
