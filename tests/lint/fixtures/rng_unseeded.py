"""Fixture: RNG constructions without an explicit seed (REP002)."""

import random

import numpy as np
from numpy.random import default_rng


def entropy_rng():
    return np.random.default_rng()


def entropy_sequence():
    return np.random.SeedSequence()


def explicit_none():
    return default_rng(None)


def stdlib_instance():
    return random.Random()
