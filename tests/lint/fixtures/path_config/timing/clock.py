"""Wall-clock telemetry: REP001 exempted by the fixture's pyproject."""

import time


def stamp() -> float:
    return time.monotonic()


def elapsed(since: float) -> float:
    return time.perf_counter() - since
