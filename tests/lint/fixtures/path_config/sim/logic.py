"""Simulation logic: REP001 stays strict outside the allowed paths."""

import time


def tick_duration() -> float:
    return time.time()
