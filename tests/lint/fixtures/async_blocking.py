"""REP008 fixture: blocking calls inside (and outside) async def."""
import asyncio
import subprocess
import time


async def shell_out() -> bytes:
    return subprocess.check_output(["true"])


async def nap() -> None:
    time.sleep(0.5)


async def read_config(path: str) -> str:
    with open(path) as handle:
        return handle.read()


async def good() -> None:
    await asyncio.sleep(0.1)
    process = await asyncio.create_subprocess_exec("true")
    await process.wait()


def sync_context() -> None:
    subprocess.run(["true"], check=True)
    with open("/dev/null") as handle:
        handle.read()
