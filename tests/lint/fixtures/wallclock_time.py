"""Fixture: direct stdlib clock/timer calls (REP001)."""

import time


def stamp():
    return time.time()


def measure():
    started = time.perf_counter()
    time.sleep(0.1)
    return time.perf_counter() - started
