"""Fixture: float equality on simulated-time operands (REP003)."""


def boundary(now, slot_start):
    return now == slot_start


def drifted(a, b):
    return a.end_time != b.end_time


def through_arithmetic(completion, think, deadline):
    return completion + think == deadline


def record_times(record):
    return record.issued_at == record.served_at
