"""Mini config tree where every field reaches both engines (REP004 clean)."""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RunConfig:
    seed: int = 7
    horizon: float = 1000.0


@dataclass(frozen=True)
class SystemConfig:
    run: RunConfig = field(default_factory=RunConfig)
    slot_ms: float = 1.0
    reference_trace: bool = False


# reference-engine-only diagnostic toggle; the fast engine has no
# equivalent code path by design.
PARITY_EXEMPT = frozenset({"reference_trace"})
