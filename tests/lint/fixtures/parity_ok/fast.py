"""Slot-driven engine stand-in."""


def run(config):
    return config.run.seed * config.slot_ms
