"""Shared construction path — reads here count for both engines."""


def build(config):
    return {"horizon": config.run.horizon}
