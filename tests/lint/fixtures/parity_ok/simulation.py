"""Event-driven reference engine stand-in."""


def run(config):
    if config.reference_trace:
        pass
    return config.run.seed + config.slot_ms
