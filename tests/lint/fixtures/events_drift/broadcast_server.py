"""Server enum that drifted: 'pad' is not the registry spelling."""

import enum


class SlotKind(str, enum.Enum):
    PUSH = "push"
    PULL = "pull"
    PADDING = "pad"
    IDLE = "idle"
