"""Reference engine: invented served_kind literal, never drives on_air."""


def emit(tracer, sink, record):
    tracer.on_slot(record)
    sink.record(served_kind="cash")
    tracer.on_served(record)
