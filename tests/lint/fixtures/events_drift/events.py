"""Registry for the drift tree — identical to the healthy one."""

SLOT_KINDS = ("push", "pull", "padding", "idle")
OFFER_OUTCOMES = ("enqueued", "duplicate", "dropped")
SERVED_KINDS = ("cache", "push", "pull")
