"""Fast engine: a typo'd event literal, and a hook the reference lacks."""


def emit(tracer, record):
    if record.kind == "psh":
        tracer.on_slot(record)
    tracer.on_air(record)
    tracer.on_served(record)
