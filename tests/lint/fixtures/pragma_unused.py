"""LINT001 fixture: one dead allow-pragma next to a live one."""
import time

# lint: allow[REP001] -- stale: the timer this covered was deleted
x = 1

t = time.time()  # lint: allow[REP001] -- provenance timestamp fixture
