"""Async-clean fixture: the idioms the REP007-REP009 family accepts."""
import asyncio


class Server:
    async def run(self) -> None:
        self.clock_task = asyncio.create_task(self.tick())
        await self.clock_task

    async def tick(self) -> None:
        self.slot = 0
        while True:
            await asyncio.sleep(0)
            self.slot += 1
