"""Reference engine: reads seed, warmup, slot_ms — never fast_knob or ghost."""


def run(config):
    return config.run.seed + config.run.warmup + config.slot_ms
