"""Fast engine: reads seed, slot_ms, fast_knob — never warmup or ghost."""


def run(config):
    return config.run.seed * config.slot_ms + config.fast_knob
