"""Mini config tree with every flavour of parity drift (REP004)."""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RunConfig:
    seed: int = 7
    warmup: float = 0.0


@dataclass(frozen=True)
class SystemConfig:
    run: RunConfig = field(default_factory=RunConfig)
    slot_ms: float = 1.0
    fast_knob: float = 0.5
    ghost: int = 0


PARITY_EXEMPT = frozenset({"slot_ms", "run.bogus"})
