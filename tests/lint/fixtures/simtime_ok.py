"""Fixture: legal time comparisons — ordering, identity, integer slots."""


def before(now, t):
    return now < t + 1.0


def unset(end_time):
    return end_time is None


def integer_slot(slot):
    return slot == 5


def defaulted(end_time):
    return end_time == None  # noqa: E711 - identity bug is ruff's beat
