"""Fixture: datetime wall-clock reads through both import styles (REP001)."""

import datetime
from datetime import date, datetime as dt


def created():
    return datetime.datetime.now()


def legacy():
    return dt.utcnow()


def day():
    return date.today()
