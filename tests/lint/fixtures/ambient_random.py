"""Fixture: global random state, stdlib and legacy numpy (REP001)."""

import random

import numpy as np


def jitter():
    random.seed(42)
    return random.random()


def noise(n):
    np.random.seed(0)
    return np.random.rand(n)
