"""REP007 fixture: asyncio Task handles that are (not) kept alive."""
import asyncio


class Worker:
    async def start_bad(self) -> None:
        asyncio.create_task(self.pump())
        handle = asyncio.create_task(self.pump())
        asyncio.ensure_future(self.pump())

    async def start_ok(self) -> None:
        self.pump_task = asyncio.create_task(self.pump())
        waited = asyncio.create_task(self.pump())
        await waited
        tasks = [asyncio.create_task(self.pump()) for _ in range(3)]
        await asyncio.gather(*tasks)

    async def pump(self) -> None:
        await asyncio.sleep(0)
