"""Fixture: malformed pragmas are LINT000 findings and suppress nothing."""

import time


def no_rationale():
    # lint: allow[REP001]
    return time.time()


def unknown_rule():
    # lint: allow[REP999] -- not a registered rule id
    return time.time()
