"""Fixture: legitimate wall-clock use carrying valid allow-pragmas."""

import time


def provenance():
    # lint: allow[REP001] -- manifest timestamp, never enters sim state
    return time.time()


def elapsed():
    started = time.perf_counter()  # lint: allow[REP001] -- profiler timer
    return started
