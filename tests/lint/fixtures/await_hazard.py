"""REP009 fixture: self-state mutated across awaits with(out) re-reads."""
import asyncio


class SlotClock:
    async def advance_bad(self) -> None:
        self.slot = self.slot + 1
        await asyncio.sleep(0)
        self.slot = 0

    async def advance_aug_ok(self) -> None:
        self.slot = 5
        await asyncio.sleep(0)
        self.slot += 1

    async def advance_reread_ok(self) -> None:
        self.slot = 5
        await asyncio.sleep(0)
        self.slot = self.slot + 1

    async def branch_ok(self, flag: bool) -> None:
        if flag:
            self.slot = 1
        else:
            await asyncio.sleep(0)
            self.slot = 2
