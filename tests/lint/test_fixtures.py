"""Snapshot tests: every fixture's findings match its expected.json.

The sidecars are regenerated deliberately (see docs/STATIC_ANALYSIS.md),
so a rule change that shifts any fixture's findings fails loudly here.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint.engine import run_lint

FIXTURES = Path(__file__).parent / "fixtures"

SINGLE_FILE = sorted(FIXTURES.glob("*.py"))
PROJECT = sorted(p for p in FIXTURES.iterdir() if p.is_dir())


def _snapshot(target: Path) -> dict:
    result = run_lint([target])
    return {
        "suppressed": result.suppressed,
        "findings": [
            {"rule": f.rule, "path": f.path, "line": f.line,
             "message": f.message}
            for f in result.findings
        ],
    }


@pytest.mark.parametrize("fixture", SINGLE_FILE, ids=lambda p: p.stem)
def test_single_file_fixture(fixture):
    expected = json.loads(
        fixture.with_name(fixture.stem + ".expected.json").read_text())
    assert _snapshot(fixture) == expected


@pytest.mark.parametrize("fixture", PROJECT, ids=lambda p: p.name)
def test_project_fixture(fixture):
    expected = json.loads((fixture / "expected.json").read_text())
    assert _snapshot(fixture) == expected


def test_corpus_covers_every_rule():
    """Each registered rule id fires somewhere in the fixture corpus."""
    fired = set()
    for target in SINGLE_FILE + PROJECT:
        fired.update(f.rule for f in run_lint([target]).findings)
    from repro.lint.rules import (
        PRAGMA_RULE_ID,
        REGISTRY,
        UNUSED_PRAGMA_RULE_ID,
    )

    assert (set(REGISTRY)
            | {PRAGMA_RULE_ID, UNUSED_PRAGMA_RULE_ID}) <= fired


def test_clean_fixtures_are_clean():
    for name in ("rng_seeded_ok.py", "simtime_ok.py", "seedflow_ok.py",
                 "async_ok.py"):
        assert run_lint([FIXTURES / name]).ok
    for name in ("parity_ok", "events_ok"):
        assert run_lint([FIXTURES / name]).ok
