"""Path-scoped [tool.repro-lint] configuration."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint.cli import main as lint_main
from repro.lint.config import (
    EMPTY_CONFIG,
    AllowEntry,
    LintConfig,
    LintConfigError,
    _scan_minimal_toml,
    discover_lint_config,
    load_lint_config,
    parse_lint_config,
)
from repro.lint.engine import run_lint

FIXTURES = Path(__file__).parent / "fixtures"
PATH_CONFIG = FIXTURES / "path_config"


def _config(**entry) -> LintConfig:
    defaults = {"path": "net/*.py", "rules": ["REP001"], "reason": "why"}
    defaults.update(entry)
    return parse_lint_config(
        {"tool": {"repro-lint": {"allow": [defaults]}}})


class TestMatching:
    def test_right_anchored_match(self):
        config = _config(path="net/*.py")
        # Matches regardless of how deep the scan root was.
        assert config.allowed("net/server.py", "REP001")
        assert config.allowed("src/repro/net/server.py", "REP001")

    def test_other_rules_stay_strict(self):
        config = _config(rules=["REP001"])
        assert not config.allowed("net/server.py", "REP002")

    def test_other_paths_stay_strict(self):
        config = _config(path="net/*.py")
        assert not config.allowed("core/fast.py", "REP001")
        # A bare basename does not match a two-component pattern.
        assert not config.allowed("server.py", "REP001")

    def test_empty_config_allows_nothing(self):
        assert not EMPTY_CONFIG.allowed("net/server.py", "REP001")
        assert not EMPTY_CONFIG.defined


class TestParsing:
    def test_missing_section_is_undefined(self):
        config = parse_lint_config({"tool": {"ruff": {}}})
        assert not config.defined
        assert config.allows == ()

    def test_empty_section_is_defined(self):
        config = parse_lint_config({"tool": {"repro-lint": {}}})
        assert config.defined
        assert config.allows == ()

    def test_entry_fields(self):
        config = _config(path="timing/*.py", rules=["REP001", "REP002"],
                         reason="telemetry")
        assert config.allows == (AllowEntry(
            path="timing/*.py", rules=frozenset({"REP001", "REP002"}),
            reason="telemetry"),)

    @pytest.mark.parametrize("broken", [
        {"rules": ["REP001"], "reason": "r"},          # no path
        {"path": "", "rules": ["REP001"], "reason": "r"},
        {"path": "a.py", "rules": ["REP001"]},         # no reason
        {"path": "a.py", "rules": [], "reason": "r"},
        {"path": "a.py", "rules": "REP001", "reason": "r"},
        {"path": "a.py", "rules": ["NOPE99"], "reason": "r"},
        {"path": "a.py", "rules": ["REP001"], "reason": "r", "extra": 1},
    ])
    def test_malformed_entries_raise(self, broken):
        with pytest.raises(LintConfigError):
            parse_lint_config({"tool": {"repro-lint": {"allow": [broken]}}})

    def test_allow_must_be_array(self):
        with pytest.raises(LintConfigError):
            parse_lint_config({"tool": {"repro-lint": {"allow": {}}}})


class TestFallbackScanner:
    """The tomllib-free subset parser used on Python 3.10."""

    def test_matches_real_parse(self):
        text = (PATH_CONFIG / "pyproject.toml").read_text()
        scanned = parse_lint_config(_scan_minimal_toml(text))
        loaded = load_lint_config(PATH_CONFIG / "pyproject.toml")
        assert scanned.allows == loaded.allows
        assert scanned.defined

    def test_ignores_unrelated_sections(self):
        assert _scan_minimal_toml(
            "[tool.ruff]\nline-length = 88\n[project]\nname = 'x'\n") == {}

    def test_multiline_array(self):
        text = ('[[tool.repro-lint.allow]]\npath = "a.py"\n'
                'rules = [\n  "REP001",\n  "REP002",\n]\nreason = "r"\n')
        config = parse_lint_config(_scan_minimal_toml(text))
        assert config.allows[0].rules == frozenset({"REP001", "REP002"})


class TestDiscovery:
    def test_walks_up_from_file(self):
        config = discover_lint_config(PATH_CONFIG / "timing" / "clock.py")
        assert config.defined
        assert config.source == PATH_CONFIG / "pyproject.toml"

    def test_nearest_configured_pyproject_wins(self):
        # The fixture's own pyproject shadows the repo root's.
        config = discover_lint_config(PATH_CONFIG)
        assert config.allows[0].path == "timing/*.py"

    def test_no_config_anywhere(self, tmp_path):
        assert discover_lint_config(tmp_path) == EMPTY_CONFIG


class TestEngineIntegration:
    def test_fixture_scoping(self):
        result = run_lint([PATH_CONFIG])
        assert result.config_allowed == 2  # timing/clock.py's two timers
        assert [f.path for f in result.findings] == ["sim/logic.py"]

    def test_explicit_empty_config_disables(self):
        result = run_lint([PATH_CONFIG], config=EMPTY_CONFIG)
        assert result.config_allowed == 0
        assert {f.path for f in result.findings} == {
            "sim/logic.py", "timing/clock.py"}

    def test_repo_net_is_config_allowed(self):
        """repro/net reads wall clocks; the repo config absorbs that."""
        import repro

        package = Path(repro.__file__).parent
        strict = run_lint([package / "net"], select=["REP001"],
                          config=EMPTY_CONFIG)
        assert not strict.ok  # the exemption is load-bearing
        relaxed = run_lint([package / "net"], select=["REP001"])
        assert relaxed.ok
        assert relaxed.config_allowed == len(strict.findings)

    def test_counts_in_json_schema(self):
        counts = run_lint([PATH_CONFIG]).to_dict()["counts"]
        assert counts["config_allowed"] == 2


class TestCli:
    def test_no_config_flag(self, capsys):
        code = lint_main(["--no-config", "--select", "REP001",
                          str(PATH_CONFIG)])
        assert code == 1
        assert "timing/clock.py" in capsys.readouterr().out

    def test_explicit_config(self, capsys):
        code = lint_main(["--config", str(PATH_CONFIG / "pyproject.toml"),
                          "--select", "REP001", str(PATH_CONFIG)])
        assert code == 1  # sim/logic.py still fails
        out = capsys.readouterr().out
        assert "sim/logic.py" in out
        assert "timing/clock.py" not in out
        assert "allowed by config" in out

    def test_config_without_section_is_usage_error(self, tmp_path, capsys):
        bare = tmp_path / "pyproject.toml"
        bare.write_text("[tool.ruff]\nline-length = 88\n")
        code = lint_main(["--config", str(bare), str(PATH_CONFIG)])
        assert code == 2
        assert "no [tool.repro-lint] section" in capsys.readouterr().err

    def test_json_counts(self, capsys):
        code = lint_main(["--format", "json", str(PATH_CONFIG)])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["config_allowed"] == 2
