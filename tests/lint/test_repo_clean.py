"""Acceptance gate: the real source tree is lint-clean, no baseline.

This is the ISSUE's headline criterion — ``repro-broadcast lint`` over
the shipped package must report zero non-baselined findings.  Every
legitimate wall-clock / provenance use carries an inline allow-pragma
with a rationale, so this test also pins that the pragma budget only
moves deliberately.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.lint.engine import run_lint


def test_source_tree_is_clean():
    result = run_lint([Path(repro.__file__).parent])
    assert result.findings == []
    assert result.files_scanned > 50


def test_every_rule_ran():
    result = run_lint([Path(repro.__file__).parent])
    assert result.rules == sorted(
        ["REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
         "REP007", "REP008", "REP009", "REP010"])
