"""Runtime determinism sanitizer: replay diffing, injection, CLI."""

from __future__ import annotations

import json

from repro.cli import main
from repro.core.algorithms import Algorithm
from repro.core.config import SystemConfig
from repro.lint.sanitize import sanitize_config
from repro.obs.manifest import config_from_dict, config_to_dict


def tiny_config(algorithm: Algorithm = Algorithm.IPP) -> SystemConfig:
    return SystemConfig(algorithm=algorithm).with_(
        run__seed=7, run__settle_accesses=50, run__measure_accesses=80)


class TestConfigRoundTrip:
    def test_roundtrip_identity(self):
        config = tiny_config()
        assert config_from_dict(config_to_dict(config)) == config

    def test_roundtrip_through_json(self):
        # JSON turns the tuples into lists; the revival must undo that.
        config = tiny_config(Algorithm.PURE_PUSH)
        data = json.loads(json.dumps(config_to_dict(config)))
        assert config_from_dict(data) == config

    def test_unknown_keys_are_ignored(self):
        data = config_to_dict(tiny_config())
        data["future_field"] = 1
        data["run"]["future_knob"] = 2
        assert config_from_dict(data) == tiny_config()


class TestSanitize:
    def test_clean_config_passes_both_engines(self):
        report = sanitize_config(tiny_config(), hash_seed=None)
        assert report.ok
        assert [e.engine for e in report.engines] == ["fast", "reference"]
        assert all(e.slots > 0 for e in report.engines)

    def test_injected_divergence_names_the_slot(self):
        report = sanitize_config(tiny_config(), engines=("fast",),
                                 hash_seed=None, inject_divergence=40)
        assert not report.ok
        check = report.engines[0].checks[0]
        assert not check.ok
        assert check.divergent_slot == 40
        assert "slot 40" in report.format()
        assert "queue_depth" in check.detail

    def test_injection_beyond_trace_still_trips(self):
        report = sanitize_config(tiny_config(), engines=("fast",),
                                 hash_seed=None,
                                 inject_divergence=10**9)
        assert not report.ok

    def test_subprocess_hashseed_replay_matches(self):
        report = sanitize_config(tiny_config(), engines=("fast",),
                                 hash_seed="99")
        assert report.ok
        labels = [c.label for c in report.engines[0].checks]
        assert any("PYTHONHASHSEED=99" in label for label in labels)

    def test_report_dict_mirrors_verdict(self):
        report = sanitize_config(tiny_config(), engines=("fast",),
                                 hash_seed=None, inject_divergence=40)
        data = report.to_dict()
        assert data["ok"] is False
        assert data["engines"][0]["checks"][0]["divergent_slot"] == 40


class TestSanitizeCli:
    ARGS = ["sanitize", "--settle", "50", "--measure", "80",
            "--engine", "fast", "--no-hashseed"]

    def test_exit_zero_on_deterministic_run(self, capsys):
        assert main(self.ARGS) == 0
        assert "PASS" in capsys.readouterr().out

    def test_exit_one_names_the_divergent_slot(self, capsys):
        assert main(self.ARGS + ["--inject-divergence", "40"]) == 1
        out = capsys.readouterr().out
        assert "slot 40" in out
        assert "FAIL" in out

    def test_json_format(self, capsys):
        assert main(self.ARGS + ["--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True

    def test_hash_seed_flags_conflict(self, capsys):
        assert main(self.ARGS + ["--hash-seed", "5"]) == 2
