"""CLI contract: exit codes, JSON schema, baseline ratchet, both entries."""

from __future__ import annotations

import json
import textwrap

from repro.cli import main as repro_main
from repro.lint.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE
from repro.lint.cli import main as lint_main


def write(tmp_path, code, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(code))
    return path


def clean_file(tmp_path):
    return write(tmp_path, "x = 1\n", name="clean.py")


def dirty_file(tmp_path):
    return write(tmp_path, """\
        import time

        t = time.time()
        """, name="dirty.py")


class TestExitCodes:
    def test_clean_exits_zero(self, tmp_path):
        assert lint_main([str(clean_file(tmp_path))]) == EXIT_CLEAN

    def test_findings_exit_one(self, tmp_path):
        assert lint_main([str(dirty_file(tmp_path))]) == EXIT_FINDINGS

    def test_missing_path_is_usage_error(self, tmp_path):
        assert lint_main([str(tmp_path / "nope.py")]) == EXIT_USAGE

    def test_unknown_rule_is_usage_error(self, tmp_path):
        assert lint_main(
            [str(clean_file(tmp_path)), "--select", "REP999"]) == EXIT_USAGE

    def test_empty_select_is_usage_error(self, tmp_path):
        assert lint_main(
            [str(clean_file(tmp_path)), "--select", " , "]) == EXIT_USAGE

    def test_missing_baseline_file_is_usage_error(self, tmp_path):
        assert lint_main(
            [str(clean_file(tmp_path)),
             "--baseline", str(tmp_path / "nope.json")]) == EXIT_USAGE

    def test_bad_baseline_schema_is_usage_error(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("{\"version\": 99}")
        assert lint_main(
            [str(clean_file(tmp_path)), "--baseline", str(bad)]) == EXIT_USAGE

    def test_update_baseline_requires_baseline(self, tmp_path):
        assert lint_main(
            [str(clean_file(tmp_path)), "--update-baseline"]) == EXIT_USAGE


class TestJsonFormat:
    def test_schema(self, tmp_path, capsys):
        code = lint_main([str(dirty_file(tmp_path)), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == EXIT_FINDINGS
        assert payload["version"] == 1
        assert payload["files_scanned"] == 1
        assert payload["counts"] == {
            "new": 1, "baselined": 0, "suppressed": 0, "config_allowed": 0}
        (finding,) = payload["findings"]
        assert set(finding) == {
            "rule", "path", "line", "message", "hint", "baselined"}
        assert finding["rule"] == "REP001"
        assert finding["path"] == "dirty.py"
        assert finding["line"] == 3
        assert finding["baselined"] is False

    def test_clean_json(self, tmp_path, capsys):
        code = lint_main([str(clean_file(tmp_path)), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == EXIT_CLEAN
        assert payload["findings"] == []


class TestBaselineRatchet:
    def test_update_then_pass_then_fail_on_new(self, tmp_path, capsys):
        dirty = dirty_file(tmp_path)
        baseline = tmp_path / "baseline.json"

        assert lint_main([str(dirty), "--baseline", str(baseline),
                          "--update-baseline"]) == EXIT_CLEAN
        assert baseline.exists()

        # Ratchet holds: the baselined finding no longer fails the run.
        assert lint_main(
            [str(dirty), "--baseline", str(baseline)]) == EXIT_CLEAN

        # ... but it is still reported, marked as baselined.
        capsys.readouterr()
        lint_main([str(dirty), "--baseline", str(baseline),
                   "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {
            "new": 0, "baselined": 1, "suppressed": 0, "config_allowed": 0}
        assert payload["findings"][0]["baselined"] is True

        # A fresh violation on top of the baseline fails again.
        dirty.write_text(dirty.read_text()
                         + "u = time.perf_counter()\n")
        assert lint_main(
            [str(dirty), "--baseline", str(baseline)]) == EXIT_FINDINGS


class TestEntryPoints:
    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005",
                        "REP006"):
            assert rule_id in out

    def test_repro_broadcast_lint_subcommand(self, tmp_path):
        assert repro_main(["lint", str(dirty_file(tmp_path))]) \
            == EXIT_FINDINGS

    def test_module_entry(self, tmp_path):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(dirty_file(tmp_path))],
            capture_output=True, text=True)
        assert proc.returncode == EXIT_FINDINGS
        assert "REP001" in proc.stdout
