"""Call-graph layer: module matching, call resolution, arg binding."""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.lint.callgraph import CallGraph
from repro.lint.source import Project, load_source

KNOWN = frozenset({"REP001"})


def project(tmp_path: Path, files: dict[str, str]) -> Project:
    sources = []
    for rel, code in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(code))
        sources.append(load_source(path, rel, KNOWN))
    return Project(files=sources)


def call_in(graph: CallGraph, dotted: str, lineno: int) -> ast.Call:
    module = graph.find_module(dotted)
    assert module is not None and module.source.tree is not None
    return next(n for n in ast.walk(module.source.tree)
                if isinstance(n, ast.Call) and n.lineno == lineno)


class TestModuleMatching:
    def test_dotted_suffix_match(self, tmp_path):
        graph = CallGraph.of(project(tmp_path, {
            "core/build.py": "def build():\n    return 1\n"}))
        assert graph.find_module("repro.core.build") is not None
        assert graph.find_module("core.build") is not None
        assert graph.find_module("unrelated.thing") is None

    def test_ambiguous_suffix_resolves_to_nothing(self, tmp_path):
        graph = CallGraph.of(project(tmp_path, {
            "a/util.py": "x = 1\n",
            "b/util.py": "y = 2\n"}))
        assert graph.find_module("util") is None


class TestCallResolution:
    FILES = {
        "core/build.py": """
            def build_system(config, fresh=0):
                return config

            class Engine:
                def __init__(self, size):
                    self.size = size

                def helper(self):
                    return self.step()

                def step(self):
                    return 1
            """,
        "app.py": """
            from core.build import Engine, build_system

            def main(config):
                system = build_system(config, fresh=2)
                engine = Engine(4)
                return system, engine
            """,
    }

    def test_cross_module_function(self, tmp_path):
        graph = CallGraph.of(project(tmp_path, self.FILES))
        call = call_in(graph, "app", 5)
        resolved = graph.resolve_call(graph.find_module("app"), call)
        assert resolved is not None
        assert resolved.key == ("core.build", "build_system")

    def test_class_resolves_to_init(self, tmp_path):
        graph = CallGraph.of(project(tmp_path, self.FILES))
        call = call_in(graph, "app", 6)
        resolved = graph.resolve_call(graph.find_module("app"), call)
        assert resolved is not None
        assert resolved.key == ("core.build", "Engine.__init__")

    def test_self_method_dispatch(self, tmp_path):
        graph = CallGraph.of(project(tmp_path, self.FILES))
        module = graph.find_module("core.build")
        call = call_in(graph, "core.build", 10)
        resolved = graph.resolve_call(module, call)
        assert resolved is not None
        assert resolved.qualname == "Engine.step"

    def test_call_sites_index(self, tmp_path):
        graph = CallGraph.of(project(tmp_path, self.FILES))
        build = graph.resolve_dotted("core.build.build_system")
        assert build is not None
        sites = graph.call_sites(build)
        assert [(m.dotted, c.lineno) for m, c in sites] == [("app", 5)]


class TestArgBinding:
    def test_positional_keyword_and_default(self, tmp_path):
        graph = CallGraph.of(project(tmp_path, TestCallResolution.FILES))
        build = graph.resolve_dotted("core.build.build_system")
        assert build is not None
        _, call = graph.call_sites(build)[0]
        bound = {b.param: b for b in graph.bind_args(build, call)}
        assert isinstance(bound["config"].value, ast.Name)
        assert not bound["config"].from_default
        assert isinstance(bound["fresh"].value, ast.Constant)

    def test_default_used_when_arg_missing(self, tmp_path):
        graph = CallGraph.of(project(tmp_path, {
            "lib.py": "def f(x, y=7):\n    return x\n",
            "use.py": "from lib import f\nf(1)\n"}))
        f = graph.resolve_dotted("lib.f")
        assert f is not None
        _, call = graph.call_sites(f)[0]
        bound = {b.param: b for b in graph.bind_args(f, call)}
        assert bound["y"].from_default
        assert isinstance(bound["y"].value, ast.Constant)
        assert bound["y"].value.value == 7

    def test_method_binding_skips_self(self, tmp_path):
        graph = CallGraph.of(project(tmp_path, TestCallResolution.FILES))
        init = graph.resolve_dotted("core.build.Engine")
        assert init is not None
        _, call = graph.call_sites(init)[0]
        bound = {b.param: b for b in graph.bind_args(init, call)}
        assert set(bound) == {"size"}
        assert isinstance(bound["size"].value, ast.Constant)

    def test_star_args_bind_nothing(self, tmp_path):
        graph = CallGraph.of(project(tmp_path, {
            "lib.py": "def f(x, y):\n    return x\n",
            "use.py": "from lib import f\nargs = (1, 2)\nf(*args)\n"}))
        f = graph.resolve_dotted("lib.f")
        assert f is not None
        _, call = graph.call_sites(f)[0]
        bound = {b.param: b for b in graph.bind_args(f, call)}
        assert bound["x"].value is None
        assert bound["y"].value is None
