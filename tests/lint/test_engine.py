"""Engine-level behaviour: pragmas, selection, baseline, parse errors."""

from __future__ import annotations

import textwrap

import pytest

from repro.lint.baseline import Baseline
from repro.lint.engine import run_lint


def write(tmp_path, code, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(code))
    return path


class TestPragmas:
    def test_same_line_pragma_suppresses(self, tmp_path):
        path = write(tmp_path, """\
            import time

            t = time.time()  # lint: allow[REP001] -- test scaffolding
            """)
        result = run_lint([path])
        assert result.ok
        assert result.suppressed == 1

    def test_standalone_pragma_covers_next_line(self, tmp_path):
        path = write(tmp_path, """\
            import time

            # lint: allow[REP001] -- test scaffolding
            t = time.time()
            """)
        assert run_lint([path]).ok

    def test_standalone_pragma_does_not_cover_two_lines_down(self, tmp_path):
        path = write(tmp_path, """\
            import time

            # lint: allow[REP001] -- test scaffolding
            x = 1
            t = time.time()
            """)
        assert not run_lint([path]).ok

    def test_allow_file_covers_whole_module(self, tmp_path):
        path = write(tmp_path, """\
            # lint: allow-file[REP001] -- wall-clock fixture by design
            import time

            a = time.time()
            b = time.perf_counter()
            """)
        result = run_lint([path])
        assert result.ok
        assert result.suppressed == 2

    def test_pragma_only_suppresses_named_rule(self, tmp_path):
        path = write(tmp_path, """\
            import numpy as np

            # lint: allow[REP001] -- wrong rule id for this line
            rng = np.random.default_rng()
            """)
        result = run_lint([path])
        # The mis-targeted pragma suppresses nothing, so REP002 still
        # fires — and LINT001 calls out the dead pragma itself.
        assert [f.rule for f in result.findings] == ["LINT001", "REP002"]
        result = run_lint([path], unused_pragmas=False)
        assert [f.rule for f in result.findings] == ["REP002"]

    def test_pragma_in_docstring_is_inert(self, tmp_path):
        path = write(tmp_path, '''\
            """Docs quoting a pragma: # lint: allow[REP001] -- example."""
            import time

            t = time.time()
            ''')
        result = run_lint([path])
        assert [f.rule for f in result.findings] == ["REP001"]

    def test_lint000_not_suppressible(self, tmp_path):
        path = write(tmp_path, """\
            # lint: allow-file[LINT000] -- trying to silence the meta rule
            # lint: allow[REP001]
            x = 1
            """)
        result = run_lint([path])
        assert "LINT000" in {f.rule for f in result.findings}


class TestEngine:
    def test_parse_error_is_lint000(self, tmp_path):
        path = write(tmp_path, "def broken(:\n")
        result = run_lint([path])
        assert [f.rule for f in result.findings] == ["LINT000"]
        assert "does not parse" in result.findings[0].message

    def test_select_limits_rules(self, tmp_path):
        path = write(tmp_path, """\
            import time
            import numpy as np

            t = time.time()
            rng = np.random.default_rng()
            """)
        result = run_lint([path], select=["REP002"])
        assert [f.rule for f in result.findings] == ["REP002"]
        assert result.rules == ["REP002"]

    def test_unknown_rule_id_raises(self, tmp_path):
        path = write(tmp_path, "x = 1\n")
        with pytest.raises(KeyError):
            run_lint([path], select=["REP999"])

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            run_lint([tmp_path / "nope"])

    def test_pycache_is_skipped(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("import time\nt = time.time()\n")
        write(tmp_path, "x = 1\n")
        result = run_lint([tmp_path])
        assert result.ok
        assert result.files_scanned == 1


class TestUnusedExemptions:
    def test_used_pragma_is_not_flagged(self, tmp_path):
        path = write(tmp_path, """\
            import time

            t = time.time()  # lint: allow[REP001] -- scaffolding
            """)
        result = run_lint([path])
        assert result.ok
        assert result.suppressed == 1

    def test_standalone_pragma_counts_as_one_exemption(self, tmp_path):
        # The pragma covers its own line and the next; suppressing via
        # the next line marks the whole pragma used.
        path = write(tmp_path, """\
            import time

            # lint: allow[REP001] -- scaffolding
            t = time.time()
            """)
        assert run_lint([path]).ok

    def test_select_subset_spares_foreign_pragmas(self, tmp_path):
        # The pragma names REP001, which did not run: no verdict on it.
        path = write(tmp_path, """\
            import time

            # lint: allow[REP001] -- judged only when REP001 runs
            x = 1
            """)
        assert run_lint([path], select=["REP002"]).ok
        assert not run_lint([path], select=["REP001"]).ok

    def test_no_unused_pragma_escape_hatch(self, tmp_path):
        path = write(tmp_path, """\
            # lint: allow[REP001] -- stale
            x = 1
            """)
        assert not run_lint([path]).ok
        assert run_lint([path], unused_pragmas=False).ok

    def test_unused_file_pragma_is_flagged(self, tmp_path):
        path = write(tmp_path, """\
            # lint: allow-file[REP003] -- nothing here compares sim time
            x = 1
            """)
        result = run_lint([path])
        assert [f.rule for f in result.findings] == ["LINT001"]
        assert result.findings[0].line == 1

    def test_unused_config_entry_is_flagged(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro-lint]\n'
            '[[tool.repro-lint.allow]]\n'
            'path = "*.py"\n'
            'rules = ["REP001"]\n'
            'reason = "stale blanket exemption"\n')
        write(tmp_path, "x = 1\n")
        result = run_lint([tmp_path])
        assert [f.rule for f in result.findings] == ["LINT001"]
        assert "pyproject.toml" in result.findings[0].path

    def test_out_of_scope_config_entry_is_spared(self, tmp_path):
        # The entry targets a subtree that was not scanned: no verdict.
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro-lint]\n'
            '[[tool.repro-lint.allow]]\n'
            'path = "elsewhere/*.py"\n'
            'rules = ["REP001"]\n'
            'reason = "belongs to a sibling subtree"\n')
        write(tmp_path, "x = 1\n")
        assert run_lint([tmp_path]).ok

    def test_used_config_entry_is_not_flagged(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro-lint]\n'
            '[[tool.repro-lint.allow]]\n'
            'path = "*.py"\n'
            'rules = ["REP001"]\n'
            'reason = "wall-clock fixture tree"\n')
        write(tmp_path, "import time\nt = time.time()\n")
        result = run_lint([tmp_path])
        assert result.ok
        assert result.config_allowed == 1


class TestParallelScan:
    def _tree(self, tmp_path):
        for index in range(6):
            write(tmp_path, f"""\
                import time

                t{index} = time.time()
                """, name=f"mod{index}.py")

    def test_jobs_matches_serial(self, tmp_path):
        self._tree(tmp_path)
        serial = run_lint([tmp_path])
        parallel = run_lint([tmp_path], jobs=3)
        assert parallel.findings == serial.findings
        assert parallel.files_scanned == serial.files_scanned

    def test_jobs_ordering_is_deterministic(self, tmp_path):
        self._tree(tmp_path)
        result = run_lint([tmp_path], jobs=3)
        keys = [(f.path, f.line, f.rule) for f in result.findings]
        assert keys == sorted(keys)

    def test_jobs_with_project_rules_and_baseline(self, tmp_path):
        self._tree(tmp_path)
        baseline = Baseline.of(run_lint([tmp_path]).findings)
        assert run_lint([tmp_path], jobs=3, baseline=baseline).ok


class TestBaseline:
    def test_ratchet_matches_then_fails_new(self, tmp_path):
        path = write(tmp_path, """\
            import time

            a = time.time()
            """)
        baseline = Baseline.of(run_lint([path]).findings)

        # Unchanged file: everything baselined, run is ok.
        result = run_lint([path], baseline=baseline)
        assert result.ok
        assert len(result.baselined) == 1

        # A new violation is NOT absorbed by the old baseline.
        write(tmp_path, """\
            import time

            a = time.time()
            b = time.perf_counter()
            """)
        result = run_lint([path], baseline=baseline)
        assert not result.ok
        assert [f.rule for f in result.findings] == ["REP001"]
        assert "perf_counter" in result.findings[0].message

    def test_fingerprint_survives_line_motion(self, tmp_path):
        path = write(tmp_path, """\
            import time

            a = time.time()
            """)
        baseline = Baseline.of(run_lint([path]).findings)
        # Push the violation down two lines; fingerprint is line-free.
        write(tmp_path, """\
            import time

            x = 1
            y = 2
            a = time.time()
            """)
        assert run_lint([path], baseline=baseline).ok

    def test_roundtrip_through_disk(self, tmp_path):
        path = write(tmp_path, """\
            import time

            a = time.time()
            """)
        baseline_path = tmp_path / "baseline.json"
        Baseline.of(run_lint([path]).findings).save(baseline_path)
        loaded = Baseline.load(baseline_path)
        assert run_lint([path], baseline=loaded).ok

    def test_load_rejects_bad_schema(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 99, "findings": {}}')
        with pytest.raises(ValueError):
            Baseline.load(bad)
