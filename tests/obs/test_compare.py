"""Trace-diff tests, including the cross-engine acceptance criteria:

- a seeded Pure-Push configuration produces an *empty* diff between the
  reference and fast engines (they are bit-exact, DESIGN.md §6);
- an injected one-slot perturbation is pinpointed to the exact slot and
  field.
"""

import dataclasses

import pytest

from repro.core.algorithms import Algorithm
from repro.obs.compare import capture_trace, compare_engines, diff_traces
from repro.obs.trace import SlotRecord
from tests.conftest import small_config


def make_trace(length=10):
    return [
        SlotRecord(slot=i, kind="push", page=i % 5, queue_depth=0,
                   enqueued=0, duplicates=0, dropped=0, served=0,
                   mc_waiting=None, mc_arrivals=0, vc_arrivals=1)
        for i in range(length)
    ]


class TestDiffTraces:
    def test_identical_traces(self):
        diff = diff_traces(make_trace(), make_trace())
        assert diff.empty and diff.identical
        assert diff.divergent_slot is None
        assert "no divergence" in diff.format()

    def test_perturbation_pinpointed_to_slot_and_field(self):
        left, right = make_trace(), make_trace()
        right[6] = dataclasses.replace(right[6], page=99, queue_depth=3)
        diff = diff_traces(left, right, context=2)
        assert not diff.empty
        assert diff.divergent_slot == 6
        assert diff.fields == ("page", "queue_depth")
        assert diff.left == left[6] and diff.right == right[6]
        assert [r.slot for r in diff.context] == [4, 5]
        report = diff.format()
        assert "slot 6" in report
        assert "page: 1 != 99" in report  # slot 6 carries page 6 % 5 == 1

    def test_context_clipped_at_trace_start(self):
        left, right = make_trace(), make_trace()
        right[1] = dataclasses.replace(right[1], kind="pull")
        diff = diff_traces(left, right, context=5)
        assert diff.divergent_slot == 1
        assert [r.slot for r in diff.context] == [0]

    def test_length_mismatch_alone_is_empty_but_not_identical(self):
        diff = diff_traces(make_trace(10), make_trace(8))
        assert diff.empty
        assert not diff.identical
        assert (diff.length_left, diff.length_right) == (10, 8)
        assert "lengths differ" in diff.format()

    def test_negative_context_rejected(self):
        with pytest.raises(ValueError):
            diff_traces(make_trace(), make_trace(), context=-1)


class TestCompareEngines:
    def test_pure_push_engines_are_bit_exact(self):
        """Acceptance: seeded Pure-Push → empty diff, equal lengths."""
        config = small_config(Algorithm.PURE_PUSH)
        diff = compare_engines(config)
        assert diff.identical, diff.format()
        assert diff.length_left == diff.length_right > 0

    def test_injected_perturbation_is_pinpointed(self):
        """Acceptance: corrupt one slot of the fast trace; the diff names
        exactly that slot and exactly the corrupted field."""
        config = small_config(Algorithm.PURE_PUSH)
        reference = capture_trace(config, engine="reference")
        fast = capture_trace(config, engine="fast")
        victim = len(fast) // 2
        fast[victim] = dataclasses.replace(
            fast[victim], page=(fast[victim].page or 0) + 1)
        diff = diff_traces(reference, fast)
        assert diff.divergent_slot == reference[victim].slot
        assert diff.fields == ("page",)

    def test_capture_trace_rejects_unknown_engine(self, ipp_config):
        with pytest.raises(ValueError):
            capture_trace(ipp_config, engine="warp")

    def test_capture_trace_reference_and_fast_same_length(self):
        config = small_config(Algorithm.PURE_PUSH)
        reference = capture_trace(config, engine="reference")
        fast = capture_trace(config, engine="fast")
        assert len(reference) == len(fast) > 0
