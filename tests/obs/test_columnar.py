"""Columnar trace backend: dtypes, sink, converters, vectorized analytics."""

import numpy as np
import pytest

from repro.core.fast import FastEngine
from repro.obs import (
    ColumnarSink,
    JsonlSink,
    MemorySink,
    RequestRecord,
    RequestTracer,
    SlotRecord,
    SlotTracer,
    array_to_records,
    breakdown_of,
    breakdown_of_array,
    columnar_to_jsonl,
    exact_quantiles,
    jsonl_to_columnar,
    load_columnar,
    measured_miss_waits,
    records_to_array,
    slot_summary,
    table_of,
)
from repro.obs.columnar import REQUEST_DTYPE, SLOT_DTYPE
from tests.conftest import small_config


def slot_record(slot=0, **overrides):
    base = dict(slot=slot, kind="push", page=7, queue_depth=2, enqueued=5,
                duplicates=1, dropped=0, served=3, mc_waiting=None,
                mc_arrivals=0, vc_arrivals=4)
    base.update(overrides)
    return SlotRecord(**base)


def request_record(index=0, **overrides):
    base = dict(index=index, page=3, issued_at=10.0, measured=True, hit=False,
                pull_sent=True, pull_outcome="enqueued",
                predicted_push_wait=12.0, page_offers=1, on_air_at=14.0,
                served_at=15.0, served_kind="pull", wait=5.0,
                queue_wait=4.0, service=1.0)
    base.update(overrides)
    return RequestRecord(**base)


def hit_record(index=0, **overrides):
    """A cache hit: every nullable request field is None at once."""
    return request_record(
        index=index, hit=True, pull_sent=False, pull_outcome=None,
        predicted_push_wait=None, page_offers=0, on_air_at=None,
        served_at=10.0, served_kind="cache", wait=0.0, queue_wait=None,
        service=None, **overrides)


def traced_run(config=None):
    """One small engine run captured in memory (ground truth records)."""
    config = config or small_config()
    slots, requests = MemorySink(), MemorySink()
    FastEngine(config, tracer=SlotTracer(slots),
               request_tracer=RequestTracer(requests)).run()
    return slots.records, requests.records


class TestRecordEncoding:
    def test_slot_fields_survive(self):
        records = [slot_record(0, mc_waiting=3),
                   slot_record(1, kind="idle", page=None),
                   slot_record(2, kind="pull", page=0, queue_depth=0)]
        assert array_to_records(records_to_array(records)) == records

    def test_request_fields_survive(self):
        records = [request_record(0),
                   hit_record(1),
                   request_record(2, pull_sent=False, pull_outcome=None,
                                  served_kind="push", queue_wait=2.5,
                                  service=1.0, wait=3.5)]
        assert array_to_records(records_to_array(records)) == records

    def test_infinite_prediction_stored_as_none(self):
        # The tracer stores an inf predicted push wait as None (page never
        # pushed); the columnar NaN sentinel + mask must bring None back,
        # not 0.0 or inf.
        record = request_record(predicted_push_wait=None)
        [decoded] = array_to_records(records_to_array([record]))
        assert decoded.predicted_push_wait is None
        assert decoded == record

    def test_every_nullable_field_none_at_once(self):
        [decoded] = array_to_records(records_to_array([hit_record()]))
        assert decoded.pull_outcome is None
        assert decoded.predicted_push_wait is None
        assert decoded.on_air_at is None
        assert decoded.queue_wait is None
        assert decoded.service is None

    def test_enum_codes_follow_registries(self):
        array = records_to_array([slot_record(kind="padding", page=None)])
        assert table_of(array) == "slot"
        assert array.dtype == SLOT_DTYPE
        assert array_to_records(array)[0].kind == "padding"

    def test_empty_records_need_a_table(self):
        with pytest.raises(ValueError):
            records_to_array([])
        array = records_to_array([], table="request")
        assert array.shape == (0,) and array.dtype == REQUEST_DTYPE


class TestColumnarSink:
    def test_chunking_preserves_order(self):
        sink = ColumnarSink(chunk=4)
        records = [slot_record(i, page=i) for i in range(11)]
        for record in records:
            sink.emit(record)
        assert sink.emitted == 11
        assert array_to_records(sink.array()) == records

    def test_persists_memory_mappable_npy(self, tmp_path):
        path = tmp_path / "trace.npy"
        records = [request_record(i) for i in range(10)]
        with ColumnarSink(path, chunk=3) as sink:
            for record in records:
                sink.emit(record)
        array = load_columnar(path)
        assert isinstance(array, np.memmap)
        assert array_to_records(array) == records

    def test_empty_pinned_table_persists(self, tmp_path):
        path = tmp_path / "empty.npy"
        ColumnarSink(path, table="slot").close()
        array = load_columnar(path, mmap=False)
        assert array.shape == (0,) and array.dtype == SLOT_DTYPE

    def test_empty_unpinned_sink_cannot_persist(self, tmp_path):
        sink = ColumnarSink(tmp_path / "x.npy")
        with pytest.raises(ValueError):
            sink.array()
        with pytest.raises(ValueError):
            sink.close()

    def test_emit_after_close_rejected(self):
        sink = ColumnarSink(table="slot")
        sink.close()
        with pytest.raises(ValueError):
            sink.emit(slot_record())

    def test_foreign_record_type_rejected(self):
        with pytest.raises(TypeError):
            ColumnarSink().emit(object())

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            ColumnarSink(table="nope")
        with pytest.raises(ValueError):
            ColumnarSink(chunk=0)


class TestConverters:
    def _roundtrip(self, tmp_path, records):
        src = tmp_path / "trace.jsonl"
        with JsonlSink(src) as sink:
            for record in records:
                sink.emit(record)
        npy = tmp_path / "trace.npy"
        back = tmp_path / "back.jsonl"
        assert jsonl_to_columnar(src, npy) == len(records)
        assert columnar_to_jsonl(npy, back) == len(records)
        return src.read_bytes(), back.read_bytes()

    def test_request_jsonl_roundtrip_is_byte_identical(self, tmp_path):
        original, back = self._roundtrip(tmp_path, [
            request_record(0), hit_record(1),
            request_record(2, pull_outcome="dropped", served_kind="push",
                           predicted_push_wait=None)])
        assert back == original

    def test_slot_jsonl_roundtrip_is_byte_identical(self, tmp_path):
        original, back = self._roundtrip(tmp_path, [
            slot_record(0), slot_record(1, kind="idle", page=None),
            slot_record(2, mc_waiting=5)])
        assert back == original

    def test_live_run_roundtrip(self, tmp_path):
        _, requests = traced_run()
        src = tmp_path / "req.jsonl"
        with JsonlSink(src) as sink:
            for record in requests:
                sink.emit(record)
        npy = tmp_path / "req.npy"
        jsonl_to_columnar(src, npy)
        assert array_to_records(load_columnar(npy)) == requests

    def test_empty_jsonl_rejected(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError):
            jsonl_to_columnar(empty, tmp_path / "out.npy")

    def test_foreign_npy_rejected(self, tmp_path):
        path = tmp_path / "foreign.npy"
        np.save(path, np.zeros(4))
        with pytest.raises(ValueError):
            load_columnar(path)


class TestVectorizedAnalytics:
    def test_breakdown_matches_python_loop(self):
        _, requests = traced_run()
        array = records_to_array(requests)
        expected = breakdown_of(requests, think_time=4.0)
        assert breakdown_of_array(array, think_time=4.0) == expected

    def test_breakdown_unmeasured_included_on_request(self):
        _, requests = traced_run()
        array = records_to_array(requests)
        assert (breakdown_of_array(array, measured_only=False).accesses
                == len(requests))

    def test_breakdown_requires_request_table(self):
        slots, _ = traced_run()
        with pytest.raises(ValueError):
            breakdown_of_array(records_to_array(slots))

    def test_miss_waits_match_python_filter(self):
        _, requests = traced_run()
        expected = [r.wait for r in requests if r.measured and not r.hit]
        waits = measured_miss_waits(records_to_array(requests))
        assert waits.tolist() == expected

    def test_quantiles_match_sorted_rank_convention(self):
        _, requests = traced_run()
        waits = measured_miss_waits(records_to_array(requests))
        marks = exact_quantiles(waits)
        ordered = sorted(waits.tolist())
        n = len(ordered)
        for q, key in ((0.50, "p50"), (0.90, "p90"), (0.99, "p99")):
            assert marks[key] == ordered[min(n - 1, int(q * n))]
        assert marks["p50"] <= marks["p90"] <= marks["p99"] <= ordered[-1]

    def test_quantiles_edge_cases(self):
        assert exact_quantiles(np.array([])) is None
        assert exact_quantiles(np.array([7.0])) == {
            "p50": 7.0, "p90": 7.0, "p99": 7.0}

    def test_slot_summary_matches_counter(self):
        slots, _ = traced_run()
        array = records_to_array(slots)
        summary = slot_summary(array)
        from collections import Counter
        assert summary["slots"] == len(slots)
        assert summary["kinds"] == dict(Counter(r.kind for r in slots))
        assert summary["mean_queue_depth"] == pytest.approx(
            sum(r.queue_depth for r in slots) / len(slots))
        assert summary["dropped"] == slots[-1].dropped

    def test_memory_mapped_analytics_agree_with_ground_truth(self, tmp_path):
        # The acceptance check: sink to disk, map back, and the columnar
        # analytics must agree with the MemorySink record-loop truth.
        config = small_config()
        mem = MemorySink()
        path = tmp_path / "req.npy"
        with ColumnarSink(path, chunk=64) as columnar:
            class Tee:
                emitted = 0

                def emit(self, record):
                    mem.emit(record)
                    columnar.emit(record)
                    self.emitted += 1
            FastEngine(config, request_tracer=RequestTracer(Tee())).run()
        array = load_columnar(path)
        assert array_to_records(array) == mem.records
        assert breakdown_of_array(array) == breakdown_of(mem.records)
