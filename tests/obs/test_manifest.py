"""Run/sweep provenance manifests."""

import json

import pytest

from repro.core.algorithms import Algorithm
from repro.experiments.base import Profile
from repro.obs.manifest import (
    MANIFEST_VERSION,
    config_to_dict,
    diff_manifests,
    package_version,
    run_manifest,
    sweep_manifest,
)
from tests.conftest import small_config


class TestConfigToDict:
    def test_flattens_enums(self):
        config = small_config(Algorithm.IPP)
        data = config_to_dict(config)
        assert data["algorithm"] == "ipp"
        json.dumps(data, allow_nan=False)  # strict JSON end to end

    def test_rejects_non_dataclass(self):
        with pytest.raises(TypeError):
            config_to_dict({"not": "a dataclass"})


class TestRunManifest:
    def test_contains_provenance_fields(self):
        config = small_config(Algorithm.PURE_PULL)
        manifest = run_manifest(config, "fast", elapsed_seconds=1.25)
        assert manifest["manifest_version"] == MANIFEST_VERSION
        assert manifest["engine"] == "fast"
        assert manifest["seed"] == config.run.seed
        assert manifest["package_version"] == package_version()
        assert manifest["elapsed_seconds"] == 1.25
        assert manifest["config"]["algorithm"] == "pure-pull"
        assert "python_version" in manifest
        assert "numpy_version" in manifest
        assert manifest["created_utc"].endswith("+00:00")
        json.dumps(manifest, allow_nan=False)

    def test_elapsed_optional(self):
        manifest = run_manifest(small_config(), "reference")
        assert "elapsed_seconds" not in manifest
        assert manifest["engine"] == "reference"


class TestSweepManifest:
    def test_profile_is_the_config(self):
        profile = Profile(settle_accesses=10, measure_accesses=20,
                          replicates=2, base_seed=99)
        manifest = sweep_manifest(profile)
        assert manifest["seed"] == 99
        assert manifest["config"]["measure_accesses"] == 20
        assert manifest["engine"] == "fast"
        json.dumps(manifest, allow_nan=False)


class TestDiffManifests:
    def test_identical_manifests_diff_empty(self):
        manifest = sweep_manifest(Profile(settle_accesses=1,
                                          measure_accesses=2, replicates=1))
        assert diff_manifests(manifest, dict(manifest)) == {}

    def test_ephemeral_keys_ignored(self):
        left = {"created_utc": "2026-01-01", "elapsed_seconds": 1.0,
                "engine": "fast"}
        right = {"created_utc": "2026-02-02", "elapsed_seconds": 9.0,
                 "engine": "fast"}
        assert diff_manifests(left, right) == {}

    def test_nested_config_uses_dotted_keys(self):
        left = {"config": {"server": {"pull_bw": 0.5}}, "seed": 42}
        right = {"config": {"server": {"pull_bw": 0.3}}, "seed": 42}
        assert diff_manifests(left, right) == {
            "config.server.pull_bw": (0.5, 0.3)}

    def test_one_sided_keys_pair_with_none(self):
        assert diff_manifests({"engine": "fast"}, {}) == {
            "engine": ("fast", None)}
        assert diff_manifests(None, {"engine": "fast"}) == {
            "engine": (None, "fast")}

    def test_none_manifests_are_empty(self):
        """v1 archives carry no manifest at all."""
        assert diff_manifests(None, None) == {}

    def test_version_delta_surfaces(self):
        left = run_manifest(small_config(), "fast")
        right = dict(left, package_version="99.0.0")
        assert diff_manifests(left, right) == {
            "package_version": (left["package_version"], "99.0.0")}


class TestEngineStamping:
    def test_fast_engine_stamps_manifest(self, pull_config):
        from repro.core.fast import FastEngine

        result = FastEngine(pull_config).run()
        assert result.manifest is not None
        assert result.manifest["engine"] == "fast"
        assert result.manifest["seed"] == pull_config.run.seed
        assert result.manifest["elapsed_seconds"] > 0.0
        assert result.manifest["config"]["server"]["queue_size"] == \
            pull_config.server.queue_size

    def test_reference_engine_stamps_manifest(self, pull_config):
        from repro.core.simulation import ReferenceEngine

        result = ReferenceEngine(pull_config).run()
        assert result.manifest is not None
        assert result.manifest["engine"] == "reference"

    def test_manifest_excluded_from_equality(self, pull_config):
        from dataclasses import replace

        from repro.core.fast import FastEngine

        first = FastEngine(pull_config).run()
        second = replace(first, manifest={"other": "stamp"})
        assert first == second

    def test_result_dict_remains_json(self, pull_config):
        from repro.core.fast import FastEngine

        result = FastEngine(pull_config).run()
        text = json.dumps(result.to_dict(), allow_nan=False)
        assert json.loads(text)["manifest"]["engine"] == "fast"
