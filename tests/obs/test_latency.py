"""Log-bucketed latency histograms and interpolated quantiles."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.obs.latency import LATENCY_BUCKETS, LatencyHistogram, log_buckets


class TestLogBuckets:
    def test_one_two_five_ladder(self):
        assert log_buckets(1.0, 100.0) == (
            1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)

    def test_sub_unit_decades_stay_round(self):
        # Regression: the old running `decade *= 10.0` product drifted
        # (5e-06 came out as 4.9999999999999996e-06) and the final rung
        # could miss `high` entirely.  Recomputing each decade as
        # 10.0 ** exponent keeps every rung exact.
        assert log_buckets(1e-6, 1e-5) == (1e-6, 2e-6, 5e-6, 1e-5)
        assert log_buckets(1e-3, 1.0) == (
            1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 0.1, 0.2, 0.5, 1.0)

    @given(exponent=st.integers(-8, 5),
           low_mantissa=st.sampled_from([1.0, 2.0, 5.0]),
           high_mantissa=st.sampled_from([1.0, 2.0, 5.0]),
           span=st.integers(1, 10))
    def test_round_endpoints_survive(self, exponent, low_mantissa,
                                     high_mantissa, span):
        # Endpoints as users write them: round decimal literals.
        low = float(f"{low_mantissa:g}e{exponent}")
        high = float(f"{high_mantissa:g}e{exponent + span}")
        bounds = log_buckets(low, high)
        assert bounds[0] == low
        assert bounds[-1] == high
        assert all(b2 > b1 for b1, b2 in zip(bounds, bounds[1:]))
        assert all(low <= b <= high for b in bounds)
        # ~3 rungs per decade: the ladder never degenerates or explodes.
        assert span <= len(bounds) <= 3 * (span + 1) + 1

    def test_respects_bounds(self):
        bounds = log_buckets(1.0, 1e5)
        assert bounds[0] == 1.0
        assert bounds[-1] == 1e5
        assert all(b2 > b1 for b1, b2 in zip(bounds, bounds[1:]))

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 10.0)
        with pytest.raises(ValueError):
            log_buckets(10.0, 10.0)

    def test_default_buckets_cover_sub_slot_waits(self):
        assert LATENCY_BUCKETS[0] == 0.5
        assert LATENCY_BUCKETS[-1] == 1e5


class TestLatencyHistogram:
    def test_empty_quantiles_are_none(self):
        hist = LatencyHistogram()
        assert math.isnan(hist.quantile(0.5))
        assert hist.quantiles() is None

    def test_single_value_collapses_all_quantiles(self):
        hist = LatencyHistogram()
        hist.observe(7.0)
        quantiles = hist.quantiles()
        assert quantiles == {"p50": 7.0, "p90": 7.0, "p99": 7.0}

    def test_quantiles_clamp_to_observed_range(self):
        hist = LatencyHistogram()
        for value in (3.0, 4.0, 4.5):
            hist.observe(value)
        assert hist.quantile(0.0) >= 3.0
        assert hist.quantile(1.0) <= 4.5

    def test_interpolated_median_of_uniform_data(self):
        hist = LatencyHistogram()
        for value in range(1, 101):  # uniform on [1, 100]
            hist.observe(float(value))
        # Log buckets are coarse; interpolation should still land the
        # median within its owning bucket's ~2x span of the true value.
        assert hist.quantile(0.5) == pytest.approx(50.0, rel=0.5)
        assert hist.quantile(0.9) == pytest.approx(90.0, rel=0.5)

    def test_monotone_in_q(self):
        hist = LatencyHistogram()
        for value in (0.2, 1.5, 3.0, 8.0, 40.0, 900.0):
            hist.observe(value)
        marks = [hist.quantile(q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert marks == sorted(marks)

    def test_extreme_quantiles_hit_observed_range(self):
        hist = LatencyHistogram()
        for value in (3.0, 4.0, 4.5):
            hist.observe(value)
        assert hist.quantile(0.0) == 3.0
        assert hist.quantile(1.0) == 4.5

    def test_rank_on_bucket_edge_interpolates_to_bound(self):
        hist = LatencyHistogram(buckets=(10.0, 20.0))
        hist.observe(5.0)
        hist.observe(15.0)
        # rank = 1.0 falls exactly on the first bucket's cumulative
        # count; full interpolation inside that bucket reaches its
        # upper bound.
        assert hist.quantile(0.5) == 10.0

    def test_empty_buckets_do_not_shift_quantiles(self):
        # Regression companion to the metrics fix: empty buckets between
        # observations must contribute nothing (the old loop carried a
        # dead `cumulative += count` for them).
        hist = LatencyHistogram(buckets=(1.0, 10.0, 100.0, 1000.0))
        hist.observe(0.5)
        hist.observe(500.0)
        assert hist.quantile(0.0) == 0.5
        assert hist.quantile(1.0) == 500.0
        assert 0.5 <= hist.quantile(0.5) <= 500.0

    def test_rejects_out_of_range_q(self):
        hist = LatencyHistogram()
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_inherits_histogram_protocol(self):
        hist = LatencyHistogram("x", "help")
        hist.observe(2.5)
        snapshot = hist.snapshot()
        assert snapshot["count"] == 1


class TestRunResultQuantiles:
    def test_engine_results_carry_quantiles(self, ipp_config):
        from repro.core.fast import FastEngine

        result = FastEngine(ipp_config).run()
        assert result.response_miss.p50 is not None
        assert result.response_miss.p50 <= result.response_miss.p90
        assert result.response_miss.p90 <= result.response_miss.p99
        assert (result.response_miss.min <= result.response_miss.p50
                <= result.response_miss.max)
        # All-access quantiles exist too (hits count as zero wait).
        assert result.response_all.p50 is not None

    def test_tally_snapshot_defaults_stay_none(self):
        from repro.core.metrics import TallySnapshot
        from repro.sim.monitor import Tally

        tally = Tally()
        tally.add(1.0)
        snapshot = TallySnapshot.of(tally)
        assert snapshot.p50 is None and snapshot.p99 is None


class TestLatencyHistogramMerge:
    def test_merged_quantiles_match_pooled_stream(self):
        import random

        rng = random.Random(5)
        streams = [[rng.lognormvariate(3.0, 1.2) for _ in range(400)]
                   for _ in range(3)]
        pooled = LatencyHistogram("lat")
        merged = LatencyHistogram("lat")
        for stream in streams:
            part = LatencyHistogram("lat")
            for value in stream:
                part.observe(value)
                pooled.observe(value)
            merged.merge(part)
        assert merged.count == pooled.count
        assert merged.quantiles() == pooled.quantiles()
        assert merged.quantile(0.5) == pytest.approx(pooled.quantile(0.5))

    def test_merge_requires_identical_bucket_ladders(self):
        coarse = LatencyHistogram("a", buckets=(1.0, 10.0))
        with pytest.raises(ValueError):
            LatencyHistogram("b").merge(coarse)
