"""Log-bucketed latency histograms and interpolated quantiles."""

import math

import pytest

from repro.obs.latency import LATENCY_BUCKETS, LatencyHistogram, log_buckets


class TestLogBuckets:
    def test_one_two_five_ladder(self):
        assert log_buckets(1.0, 100.0) == (
            1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)

    def test_respects_bounds(self):
        bounds = log_buckets(1.0, 1e5)
        assert bounds[0] == 1.0
        assert bounds[-1] == 1e5
        assert all(b2 > b1 for b1, b2 in zip(bounds, bounds[1:]))

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 10.0)
        with pytest.raises(ValueError):
            log_buckets(10.0, 10.0)

    def test_default_buckets_cover_sub_slot_waits(self):
        assert LATENCY_BUCKETS[0] == 0.5
        assert LATENCY_BUCKETS[-1] == 1e5


class TestLatencyHistogram:
    def test_empty_quantiles_are_none(self):
        hist = LatencyHistogram()
        assert math.isnan(hist.quantile(0.5))
        assert hist.quantiles() is None

    def test_single_value_collapses_all_quantiles(self):
        hist = LatencyHistogram()
        hist.observe(7.0)
        quantiles = hist.quantiles()
        assert quantiles == {"p50": 7.0, "p90": 7.0, "p99": 7.0}

    def test_quantiles_clamp_to_observed_range(self):
        hist = LatencyHistogram()
        for value in (3.0, 4.0, 4.5):
            hist.observe(value)
        assert hist.quantile(0.0) >= 3.0
        assert hist.quantile(1.0) <= 4.5

    def test_interpolated_median_of_uniform_data(self):
        hist = LatencyHistogram()
        for value in range(1, 101):  # uniform on [1, 100]
            hist.observe(float(value))
        # Log buckets are coarse; interpolation should still land the
        # median within its owning bucket's ~2x span of the true value.
        assert hist.quantile(0.5) == pytest.approx(50.0, rel=0.5)
        assert hist.quantile(0.9) == pytest.approx(90.0, rel=0.5)

    def test_monotone_in_q(self):
        hist = LatencyHistogram()
        for value in (0.2, 1.5, 3.0, 8.0, 40.0, 900.0):
            hist.observe(value)
        marks = [hist.quantile(q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert marks == sorted(marks)

    def test_rejects_out_of_range_q(self):
        hist = LatencyHistogram()
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_inherits_histogram_protocol(self):
        hist = LatencyHistogram("x", "help")
        hist.observe(2.5)
        snapshot = hist.snapshot()
        assert snapshot["count"] == 1


class TestRunResultQuantiles:
    def test_engine_results_carry_quantiles(self, ipp_config):
        from repro.core.fast import FastEngine

        result = FastEngine(ipp_config).run()
        assert result.response_miss.p50 is not None
        assert result.response_miss.p50 <= result.response_miss.p90
        assert result.response_miss.p90 <= result.response_miss.p99
        assert (result.response_miss.min <= result.response_miss.p50
                <= result.response_miss.max)
        # All-access quantiles exist too (hits count as zero wait).
        assert result.response_all.p50 is not None

    def test_tally_snapshot_defaults_stay_none(self):
        from repro.core.metrics import TallySnapshot
        from repro.sim.monitor import Tally

        tally = Tally()
        tally.add(1.0)
        snapshot = TallySnapshot.of(tally)
        assert snapshot.p50 is None and snapshot.p99 is None
