"""Request-lifecycle tracing: records, breakdown, and engine wiring."""

import json
import math

import pytest

from repro.core.fast import FastEngine
from repro.core.simulation import ReferenceEngine
from repro.obs import (
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    RequestRecord,
    RequestTracer,
    WaitBreakdown,
    breakdown_of,
    read_requests_jsonl,
)
from repro.server.broadcast_server import SlotKind
from repro.server.queue import BoundedRequestQueue, Offer

from tests.conftest import small_config


def _record(**overrides) -> RequestRecord:
    base = dict(index=0, page=3, issued_at=10.0, measured=True, hit=False,
                pull_sent=True, pull_outcome="enqueued",
                predicted_push_wait=12.0, page_offers=1, on_air_at=14.0,
                served_at=15.0, served_kind="pull", wait=5.0,
                queue_wait=4.0, service=1.0)
    base.update(overrides)
    return RequestRecord(**base)


class TestRequestRecord:
    def test_round_trips_through_dict(self):
        record = _record()
        assert RequestRecord.from_dict(record.to_dict()) == record

    def test_from_dict_ignores_unknown_keys(self):
        data = _record().to_dict()
        data["added_by_future_version"] = 42
        assert RequestRecord.from_dict(data) == _record()

    def test_to_dict_is_strict_json(self):
        text = json.dumps(_record().to_dict(), allow_nan=False)
        assert json.loads(text)["page"] == 3

    def test_from_dict_defaults_missing_optional_fields_to_none(self):
        # Regression: the docstring promised unknown keys are ignored,
        # but a record from an older writer (no queue_wait/service yet)
        # used to crash with a bare KeyError instead of defaulting.
        data = _record().to_dict()
        del data["queue_wait"]
        del data["service"]
        record = RequestRecord.from_dict(data)
        assert record.queue_wait is None and record.service is None

    def test_from_dict_extra_and_missing_keys_together(self):
        data = _record().to_dict()
        data["added_by_future_version"] = 42
        del data["on_air_at"]
        record = RequestRecord.from_dict(data)
        assert record.on_air_at is None
        assert record == _record(on_air_at=None)

    def test_from_dict_names_the_missing_required_field(self):
        data = _record().to_dict()
        del data["issued_at"]
        with pytest.raises(ValueError, match="issued_at"):
            RequestRecord.from_dict(data)


class TestTracerStateMachine:
    def test_cache_hit_record(self):
        tracer = RequestTracer(MemorySink())
        tracer.on_access(7, 3.0, True)
        tracer.on_hit(7, 3.0)
        [record] = tracer.sink.records
        assert record.hit and record.wait == 0.0
        assert record.served_kind == "cache"
        assert record.queue_wait is None and record.service is None

    def test_full_miss_lifecycle(self):
        tracer = RequestTracer(MemorySink())
        tracer.on_access(3, 10.5, True)
        tracer.on_miss(3, 10.5)
        tracer.on_miss_predict(40.0)
        tracer.on_pull(3, 10.5, Offer.ENQUEUED)
        tracer.on_queue_offer(3, Offer.DUPLICATE)   # someone else's request
        tracer.on_queue_offer(9, Offer.ENQUEUED)    # unrelated page
        tracer.on_air(14.0, SlotKind.PULL)
        tracer.on_served(3, 15.0)
        [record] = tracer.sink.records
        assert not record.hit
        assert record.pull_outcome == "enqueued"
        assert record.predicted_push_wait == 40.0
        assert record.page_offers == 1
        assert record.served_kind == "pull"
        assert record.wait == 4.5
        assert record.queue_wait == 3.5
        assert record.service == 1.0
        assert record.queue_wait + record.service == record.wait

    def test_mid_slot_issue_clamps_queue_wait(self):
        # Access issued at 10.5 while the serving slot started at 10.0.
        tracer = RequestTracer(MemorySink())
        tracer.on_access(3, 10.5, True)
        tracer.on_miss(3, 10.5)
        tracer.on_air(10.0, SlotKind.PUSH)
        tracer.on_served(3, 11.0)
        [record] = tracer.sink.records
        assert record.queue_wait == 0.0
        assert record.service == pytest.approx(0.5)
        assert record.wait == pytest.approx(0.5)

    def test_infinite_predicted_wait_stored_as_none(self):
        tracer = RequestTracer(MemorySink())
        tracer.on_access(3, 0.0, True)
        tracer.on_miss(3, 0.0)
        tracer.on_miss_predict(math.inf)
        tracer.on_air(2.0, SlotKind.PULL)
        tracer.on_served(3, 3.0)
        [record] = tracer.sink.records
        assert record.predicted_push_wait is None
        json.dumps(record.to_dict(), allow_nan=False)  # stays strict JSON

    def test_unmeasured_records_skip_the_breakdown(self):
        tracer = RequestTracer(MemorySink())
        tracer.on_access(1, 0.0, False)
        tracer.on_hit(1, 0.0)
        tracer.on_access(2, 1.0, True)
        tracer.on_hit(2, 1.0)
        assert tracer.records_emitted == 2
        assert tracer.breakdown().accesses == 1


class TestWaitBreakdown:
    def test_decomposition_sums_to_total(self):
        breakdown = WaitBreakdown()
        breakdown.add(_record(served_kind="pull", queue_wait=4.0,
                              service=1.0, wait=5.0))
        breakdown.add(_record(index=1, served_kind="push", pull_sent=False,
                              pull_outcome=None, queue_wait=2.0,
                              service=1.0, wait=3.0))
        assert breakdown.pull_wait == 4.0
        assert breakdown.push_wait == 2.0
        assert breakdown.service == 2.0
        assert breakdown.total_wait == 8.0
        assert breakdown.mean_wait == 4.0

    def test_render_shows_stages_and_counts(self):
        breakdown = WaitBreakdown()
        breakdown.add(_record())
        breakdown.think = 40.0
        text = breakdown.render()
        for stage in ("think", "push wait", "pull queue wait",
                      "service (on air)"):
            assert stage in text
        assert "pulls sent 1" in text

    def test_breakdown_of_filters_and_fills_think(self):
        records = [_record(), _record(index=1, measured=False)]
        breakdown = breakdown_of(records, think_time=4.0)
        assert breakdown.accesses == 1
        assert breakdown.think == 4.0


class TestJsonlRoundTrip:
    def test_read_requests_jsonl(self, tmp_path):
        path = tmp_path / "req.jsonl"
        with JsonlSink(path) as sink:
            tracer = RequestTracer(sink)
            tracer.on_access(1, 0.0, True)
            tracer.on_hit(1, 0.0)
            tracer.on_access(2, 4.0, True)
            tracer.on_miss(2, 4.0)
            tracer.on_air(6.0, SlotKind.PUSH)
            tracer.on_served(2, 7.0)
        records = read_requests_jsonl(path)
        assert [r.page for r in records] == [1, 2]
        assert records[1].wait == 3.0


class TestQueueObserver:
    def test_attach_wraps_and_detach_restores(self):
        queue = BoundedRequestQueue(2)
        seen = []
        queue.attach_observer(lambda page, outcome: seen.append(
            (page, outcome)))
        assert queue.offer(1) is Offer.ENQUEUED
        assert queue.offer(1) is Offer.DUPLICATE
        assert seen == [(1, Offer.ENQUEUED), (1, Offer.DUPLICATE)]
        queue.detach_observer()
        queue.offer(2)
        assert len(seen) == 2  # the plain bound method is back

    def test_double_attach_rejected(self):
        queue = BoundedRequestQueue(2)
        queue.attach_observer(lambda page, outcome: None)
        with pytest.raises(RuntimeError):
            queue.attach_observer(lambda page, outcome: None)

    def test_detach_without_attach_is_noop(self):
        BoundedRequestQueue(2).detach_observer()


class TestMetricsIntegration:
    def test_registry_counts_requests(self):
        registry = MetricsRegistry()
        tracer = RequestTracer(MemorySink(), metrics=registry)
        tracer.on_access(1, 0.0, True)
        tracer.on_hit(1, 0.0)
        tracer.on_access(2, 1.0, True)
        tracer.on_miss(2, 1.0)
        tracer.on_pull(2, 1.0, Offer.ENQUEUED)
        tracer.on_air(2.0, SlotKind.PULL)
        tracer.on_served(2, 3.0)
        snap = registry.snapshot()
        assert snap["request_hits_total"]["value"] == 1
        assert snap["request_misses_total"]["value"] == 1
        assert snap["request_pulls_total"]["value"] == 1
        assert snap["request_wait"]["count"] == 1


class TestEngineWiring:
    """Both engines drive the same hooks and keep results bit-identical."""

    @staticmethod
    def _metrics(result):
        data = result.to_dict()
        data.pop("manifest")
        return data

    @pytest.mark.parametrize("algorithm", ["ipp", "pure-pull", "pure-push"])
    def test_fast_engine_traced_matches_untraced(self, algorithm):
        from repro.core.algorithms import Algorithm

        config = small_config(Algorithm(algorithm))
        # Tracing forces the general slot loop, so compare against the
        # general loop too (for Pure-Push the analytic shortcut
        # synthesizes rather than ticks its slot counts).
        plain = FastEngine(config, force_general=True).run()
        tracer = RequestTracer(MemorySink())
        traced = FastEngine(config, request_tracer=tracer).run()
        assert self._metrics(traced) == self._metrics(plain)
        assert tracer.records_emitted > 0

    def test_reference_engine_traced_matches_untraced(self, ipp_config):
        plain = ReferenceEngine(ipp_config).run()
        tracer = RequestTracer(MemorySink())
        traced = ReferenceEngine(ipp_config, request_tracer=tracer).run()
        assert self._metrics(traced) == self._metrics(plain)
        assert tracer.records_emitted > 0

    @pytest.mark.parametrize("engine_cls", [FastEngine, ReferenceEngine],
                             ids=["fast", "reference"])
    def test_breakdown_reconstructs_run_result(self, ipp_config, engine_cls):
        tracer = RequestTracer(MemorySink())
        result = engine_cls(ipp_config, request_tracer=tracer).run()
        breakdown = tracer.breakdown()
        assert breakdown.accesses == result.mc_hits + result.mc_misses
        assert breakdown.hits == result.mc_hits
        assert breakdown.misses == result.mc_misses
        assert breakdown.pulls_sent == result.mc_pulls_sent
        assert breakdown.mean_wait == pytest.approx(
            result.response_miss.mean)
        assert breakdown.think == ipp_config.client.think_time * \
            breakdown.accesses

    @pytest.mark.parametrize("engine_cls", [FastEngine, ReferenceEngine],
                             ids=["fast", "reference"])
    def test_every_miss_record_decomposes_exactly(self, ipp_config,
                                                  engine_cls):
        tracer = RequestTracer(MemorySink())
        engine_cls(ipp_config, request_tracer=tracer).run()
        misses = [r for r in tracer.sink.records if not r.hit]
        assert misses
        for record in misses:
            assert record.on_air_at is not None
            assert record.queue_wait + record.service == pytest.approx(
                record.wait)
            assert record.served_kind in ("push", "pull")

    def test_tracer_detached_after_run(self, ipp_config):
        tracer = RequestTracer(MemorySink())
        engine = FastEngine(ipp_config, request_tracer=tracer)
        engine.run()
        assert engine.state.mc.tracer is None
        assert "offer" not in engine.state.server.queue.__dict__

    def test_pure_push_analytic_path_disabled_when_tracing(self, push_config):
        tracer = RequestTracer(MemorySink())
        engine = FastEngine(push_config, request_tracer=tracer)
        result = engine.run()
        # The general loop ran: every record decomposes and the slot
        # accounting was ticked, not synthesized.
        assert tracer.records_emitted > 0
        plain = FastEngine(push_config).run()
        assert result.response_miss.mean == pytest.approx(
            plain.response_miss.mean)
