"""ServerMetricsAdapter delta-sync: resets, re-binds, empty snapshots."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.server_metrics import ServerMetricsAdapter, bind_server_metrics


class _FakeKind:
    def __init__(self, value):
        self.value = value

    def __hash__(self):
        return hash(self.value)

    def __eq__(self, other):
        return getattr(other, "value", None) == self.value


_PUSH, _PULL = _FakeKind("push"), _FakeKind("pull")


class _FakeServer:
    """Stats-snapshot stand-in with directly settable counters."""

    def __init__(self):
        self.slot_counts = {_PUSH: 0, _PULL: 0}
        self.queue = dict(enqueued=0, duplicates=0, dropped=0, served=0,
                          depth=0, capacity=10, drop_rate=0.0)
        self.sched = dict(discipline="fifo", pops=0, reordered=0)
        self.schedule_pos = 0

    def stats_snapshot(self):
        return {
            "slots": {kind.value: count
                      for kind, count in self.slot_counts.items()},
            "queue": {**self.queue, "scheduler": dict(self.sched)},
            "schedule_pos": self.schedule_pos,
        }


def _counter(registry, name):
    return registry.snapshot()[name]["value"]


class TestDeltaSync:
    def test_empty_first_snapshot_registers_zeroed_instruments(self):
        registry = MetricsRegistry()
        bind_server_metrics(registry, _FakeServer())
        snapshot = registry.snapshot()
        # Eager creation: the full instrument set exists before traffic.
        assert snapshot["server_slots_push_total"]["value"] == 0
        assert snapshot["server_requests_served_total"]["value"] == 0
        assert snapshot["server_sched_pops_total"]["value"] == 0
        assert snapshot["server_sched_reordered_total"]["value"] == 0
        assert snapshot["server_queue_capacity"]["value"] == 10

    def test_scheduler_decision_counters_sync(self):
        registry = MetricsRegistry()
        server = _FakeServer()
        adapter = bind_server_metrics(registry, server)
        server.sched["pops"] = 12
        server.sched["reordered"] = 3
        adapter.sync()
        adapter.sync()  # no progress, no double count
        assert _counter(registry, "server_sched_pops_total") == 12
        assert _counter(registry, "server_sched_reordered_total") == 3
        server.sched["pops"] = 2  # reset boundary
        adapter.sync()
        assert _counter(registry, "server_sched_pops_total") == 14

    def test_publishes_deltas_not_absolutes(self):
        registry = MetricsRegistry()
        server = _FakeServer()
        adapter = bind_server_metrics(registry, server)
        server.slot_counts[_PUSH] = 5
        adapter.sync()
        adapter.sync()  # a no-progress sync must not double count
        assert _counter(registry, "server_slots_push_total") == 5
        server.slot_counts[_PUSH] = 8
        adapter.sync()
        assert _counter(registry, "server_slots_push_total") == 8

    def test_backward_jump_is_treated_as_reset(self):
        # reset_stats() at the warm-up/measure boundary zeroes the
        # server's counters; the registry's must keep rising monotonically
        # with the post-reset value counted as new progress.
        registry = MetricsRegistry()
        server = _FakeServer()
        adapter = bind_server_metrics(registry, server)
        server.queue["served"] = 100
        adapter.sync()
        server.queue["served"] = 7  # reset happened, then 7 more served
        adapter.sync()
        assert _counter(registry, "server_requests_served_total") == 107
        server.queue["served"] = 10
        adapter.sync()
        assert _counter(registry, "server_requests_served_total") == 110

    def test_reset_to_zero_then_regrowth(self):
        registry = MetricsRegistry()
        server = _FakeServer()
        adapter = bind_server_metrics(registry, server)
        server.queue["enqueued"] = 50
        adapter.sync()
        server.queue["enqueued"] = 0  # snapshot lands exactly on the reset
        adapter.sync()
        assert _counter(registry, "server_requests_enqueued_total") == 50
        server.queue["enqueued"] = 3
        adapter.sync()
        assert _counter(registry, "server_requests_enqueued_total") == 53

    def test_rebind_after_drop_continues_the_same_instruments(self):
        # A reconnect builds a fresh adapter (fresh server object, fresh
        # counters) over the same long-lived registry: totals must carry
        # on from where the old connection left them, not restart or
        # double count the new server's backlog.
        registry = MetricsRegistry()
        first = _FakeServer()
        adapter = bind_server_metrics(registry, first)
        first.queue["served"] = 40
        adapter.sync()
        # Connection drops; a replacement server starts from zero.
        second = _FakeServer()
        adapter = bind_server_metrics(registry, second)
        second.queue["served"] = 5
        adapter.sync()
        assert _counter(registry, "server_requests_served_total") == 45

    def test_gauges_track_current_values_not_deltas(self):
        registry = MetricsRegistry()
        server = _FakeServer()
        adapter = bind_server_metrics(registry, server)
        server.queue["depth"] = 4
        server.queue["drop_rate"] = 0.25
        server.schedule_pos = 17
        adapter.sync()
        snapshot = registry.snapshot()
        assert snapshot["server_queue_depth"]["value"] == 4
        assert snapshot["server_queue_drop_rate"]["value"] == 0.25
        assert snapshot["server_schedule_pos"]["value"] == 17
        server.queue["depth"] = 1
        adapter.sync()
        assert registry.snapshot()["server_queue_depth"]["value"] == 1

    def test_two_adapters_with_distinct_prefixes_coexist(self):
        registry = MetricsRegistry()
        ServerMetricsAdapter(registry, _FakeServer(), prefix="sim")
        ServerMetricsAdapter(registry, _FakeServer(), prefix="live")
        names = registry.names()
        assert "sim_slots_push_total" in names
        assert "live_slots_push_total" in names


class TestAgainstRealServer:
    def test_simulated_run_exports_consistent_totals(self):
        from repro.core.fast import FastEngine

        from tests.conftest import small_config

        engine = FastEngine(small_config())
        engine.run()
        registry = MetricsRegistry()
        bind_server_metrics(registry, engine.state.server)
        snapshot = engine.state.server.stats_snapshot()
        for outcome in ("enqueued", "duplicates", "dropped", "served"):
            assert (_counter(registry, f"server_requests_{outcome}_total")
                    == snapshot["queue"][outcome])
