"""Unit tests for hot-loop phase timing."""

import pytest

from repro.core.fast import FastEngine
from repro.obs.profile import ENGINE_PHASES, HotLoopProfile, PhaseTimer, profile_run


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestPhaseTimer:
    def test_add_accumulates(self):
        timer = PhaseTimer()
        timer.add("tick", 0.5)
        timer.add("tick", 0.25, calls=3)
        timer.add("deliver", 1.0)
        assert timer.seconds["tick"] == pytest.approx(0.75)
        assert timer.calls["tick"] == 4
        assert timer.total == pytest.approx(1.75)

    def test_context_manager_uses_clock(self):
        clock = FakeClock()
        timer = PhaseTimer(clock=clock)
        with timer.time("phase"):
            clock.now = 2.5
        assert timer.seconds["phase"] == pytest.approx(2.5)
        assert timer.calls["phase"] == 1


class TestHotLoopProfile:
    def test_starts_empty(self):
        prof = HotLoopProfile()
        assert prof.timed_seconds == 0.0
        assert prof.slots_per_second == 0.0
        assert list(prof.phase_seconds) == list(ENGINE_PHASES)

    def test_throughput(self):
        prof = HotLoopProfile()
        prof.slots = 1000
        prof.wall_seconds = 0.5
        assert prof.slots_per_second == pytest.approx(2000.0)

    def test_render_mentions_every_phase(self):
        prof = HotLoopProfile()
        prof.server_tick = 0.3
        prof.vc_arrivals = 0.1
        prof.slots = 100
        prof.wall_seconds = 0.5
        text = prof.render()
        for phase in ENGINE_PHASES:
            assert phase in text
        assert "100" in text            # slot count
        assert "(untimed)" in text      # 0.5 wall > 0.4 timed


class TestProfileRun:
    def test_profile_run_matches_plain_run(self, ipp_config):
        plain = FastEngine(ipp_config).run()
        result, prof = profile_run(ipp_config)
        plain_dict, result_dict = plain.to_dict(), result.to_dict()
        plain_dict.pop("manifest")  # timestamps differ between the runs
        result_dict.pop("manifest")
        assert result_dict == plain_dict

    def test_phases_are_populated(self, ipp_config):
        _, prof = profile_run(ipp_config)
        assert prof.slots > 0
        assert prof.wall_seconds > 0.0
        assert prof.slots_per_second > 0.0
        # The engine ticks and draws arrivals every slot; those phases
        # must have accumulated real time.
        assert prof.server_tick > 0.0
        assert prof.vc_arrivals > 0.0
        assert prof.timed_seconds <= prof.wall_seconds

    def test_pure_push_goes_through_general_loop(self, push_config):
        _, prof = profile_run(push_config)
        assert prof.slots > 0
        assert prof.deliver >= 0.0
