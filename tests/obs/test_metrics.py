"""Unit tests for the metrics registry and its instruments."""

import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
)
from repro.sim.monitor import Tally


class TestCounter:
    def test_increments(self):
        counter = Counter("hits_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.snapshot() == {"type": "counter", "value": 5}

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("hits_total").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("queue_depth")
        gauge.set(3.0)
        gauge.inc(2.0)
        gauge.dec()
        assert gauge.value == pytest.approx(4.0)
        assert gauge.snapshot()["type"] == "gauge"


class TestHistogram:
    def test_bucket_placement_inclusive_upper_bound(self):
        hist = Histogram("lat", buckets=(1, 5, 10))
        for value in (0.5, 1.0, 1.1, 5.0, 9.9, 10.0, 11.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["buckets"] == {"1.0": 2, "5.0": 2, "10.0": 2, "+inf": 1}
        assert snap["count"] == 7

    def test_observe_many_matches_sequential_observes(self):
        values = [0.5, 1.0, 1.1, 5.0, 9.9, 10.0, 11.0]
        batched = Histogram("lat", buckets=(1, 5, 10))
        batched.observe_many(values)
        sequential = Histogram("lat", buckets=(1, 5, 10))
        for value in values:
            sequential.observe(value)
        assert batched.snapshot()["buckets"] \
            == sequential.snapshot()["buckets"]
        assert batched.count == sequential.count
        assert batched.mean == pytest.approx(sequential.mean)
        assert batched.stddev == pytest.approx(sequential.stddev)
        assert batched.quantile(0.5) == sequential.quantile(0.5)

    def test_observe_many_empty_batch_is_noop(self):
        hist = Histogram("lat", buckets=(1,))
        hist.observe_many([])
        assert hist.count == 0

    def test_observe_many_rejects_non_finite_before_mutation(self):
        hist = Histogram("lat", buckets=(1,))
        hist.observe(0.5)
        with pytest.raises(ValueError):
            hist.observe_many([2.0, math.nan])
        assert hist.count == 1  # the clean value did not slip in

    def test_summary_stats_match_tally(self):
        hist = Histogram("lat", buckets=(10,))
        values = [1.0, 2.0, 3.0, 4.0]
        for value in values:
            hist.observe(value)
        assert hist.count == 4
        assert hist.mean == pytest.approx(2.5)
        reference = Tally()
        for value in values:
            reference.add(value)
        assert hist.stddev == pytest.approx(reference.stddev)

    def test_quantile_approximation(self):
        hist = Histogram("lat", buckets=(10, 20, 30))
        for value in (5, 15, 25, 35):
            hist.observe(value)
        assert hist.quantile(0.25) == pytest.approx(10.0)
        assert hist.quantile(0.5) == pytest.approx(20.0)
        assert hist.quantile(1.0) == pytest.approx(35.0)  # overflow → max
        assert math.isnan(Histogram("empty").quantile(0.5))
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_zero_quantile_skips_empty_first_bucket(self):
        # Regression: q=0 has rank 0, and an empty first bucket used to
        # satisfy "cumulative >= rank" immediately, reporting bounds[0]
        # (10.0) even though nothing was ever observed there.
        hist = Histogram("lat", buckets=(10, 20, 30))
        hist.observe(15.0)
        assert hist.quantile(0.0) == 15.0  # observed min, not 10.0
        assert hist.quantile(1.0) == 15.0

    def test_extreme_quantiles_are_exact_observations(self):
        hist = Histogram("lat", buckets=(10, 20, 30))
        for value in (12.0, 14.0, 25.0):
            hist.observe(value)
        assert hist.quantile(0.0) == 12.0
        assert hist.quantile(1.0) == 25.0

    def test_quantile_rank_on_bucket_edge(self):
        hist = Histogram("lat", buckets=(10, 20))
        hist.observe(5.0)
        hist.observe(15.0)
        # rank = 0.5 * 2 = 1.0 lands exactly on the first bucket's
        # cumulative count: the bucket that *reaches* the rank owns it.
        assert hist.quantile(0.5) == 10.0

    def test_quantile_single_observation(self):
        hist = Histogram("lat", buckets=(10, 20))
        hist.observe(15.0)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert hist.quantile(q) in (15.0, 20.0)
        assert hist.quantile(0.0) == 15.0
        assert hist.quantile(1.0) == 15.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1, 1, 2))


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("requests_total")
        first.inc(3)
        second = registry.counter("requests_total")
        assert second is first
        assert second.value == 3

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_is_plain_data(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2.5)
        registry.histogram("h", buckets=(1,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["c"] == {"type": "counter", "value": 1}
        assert snap["g"]["value"] == pytest.approx(2.5)
        assert snap["h"]["count"] == 1

    def test_register_tally_reads_lazily(self):
        registry = MetricsRegistry()
        tally = Tally()
        registry.register_tally("response_time", tally)
        tally.add(4.0)  # after registration: snapshot must see it
        snap = registry.snapshot()["response_time"]
        assert snap["type"] == "summary"
        assert snap["count"] == 1
        assert snap["mean"] == pytest.approx(4.0)

    def test_register_tally_conflict(self):
        registry = MetricsRegistry()
        registry.register_tally("t", Tally())
        with pytest.raises(TypeError):
            registry.register_tally("t", Tally())

    def test_render_lists_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("requests_total").inc(7)
        registry.histogram("depth", buckets=(1,)).observe(0.0)
        text = registry.render()
        assert "requests_total" in text and "7" in text
        assert "depth" in text and "count=1" in text
        assert MetricsRegistry().render() == "(no metrics registered)"

    def test_disabled_registry_is_inert(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c")
        counter.inc(10)
        registry.gauge("g").set(5)
        registry.histogram("h").observe(1.0)
        registry.register_tally("t", Tally())
        assert counter.value == 0
        assert len(registry) == 0
        assert registry.snapshot() == {}
        # Every factory hands back the same shared no-op object.
        assert registry.counter("other") is counter
        assert NULL_REGISTRY.counter("x") is counter


class TestHistogramMerge:
    def test_merge_matches_pooled_observations(self):
        left_values = [0.5, 1.0, 3.0, 7.0, 12.0]
        right_values = [2.0, 4.0, 9.0, 30.0, 100.0, 5000.0]
        left = Histogram("lat")
        right = Histogram("lat")
        pooled = Histogram("lat")
        for value in left_values:
            left.observe(value)
            pooled.observe(value)
        for value in right_values:
            right.observe(value)
            pooled.observe(value)
        left.merge(right)
        assert left.counts == pooled.counts
        assert left.count == pooled.count
        assert left.mean == pytest.approx(pooled.mean)
        assert left.stddev == pytest.approx(pooled.stddev)
        assert left.snapshot()["min"] == pooled.snapshot()["min"]
        assert left.snapshot()["max"] == pooled.snapshot()["max"]
        for q in (0.1, 0.5, 0.9, 0.99):
            assert left.quantile(q) == pooled.quantile(q)

    def test_merge_empty_and_into_empty(self):
        empty = Histogram("lat")
        full = Histogram("lat")
        full.observe(2.0)
        full.merge(Histogram("lat"))  # no-op
        assert full.count == 1
        empty.merge(full)
        assert empty.count == 1 and empty.mean == pytest.approx(2.0)

    def test_mismatched_bounds_raise(self):
        left = Histogram("a", buckets=(1, 5, 10))
        right = Histogram("b", buckets=(1, 5))
        with pytest.raises(ValueError, match="bucket bounds differ"):
            left.merge(right)
        shifted = Histogram("c", buckets=(1, 5, 20))
        with pytest.raises(ValueError):
            left.merge(shifted)


class TestWeightedObserve:
    def test_weighted_observe_equals_repeated_observe(self):
        weighted = Histogram("lat")
        repeated = Histogram("lat")
        weighted.observe(3.0, weight=4)
        weighted.observe(9.0, weight=2)
        for _ in range(4):
            repeated.observe(3.0)
        for _ in range(2):
            repeated.observe(9.0)
        assert weighted.count == repeated.count
        assert weighted.counts == repeated.counts
        assert weighted.mean == pytest.approx(repeated.mean)
        assert weighted.stddev == pytest.approx(repeated.stddev)

    def test_fractional_weights_accumulate(self):
        hist = Histogram("lat", buckets=(1, 10))
        hist.observe(0.5, weight=2.5)
        hist.observe(5.0, weight=2.5)
        assert hist.count == pytest.approx(5.0)
        assert hist.mean == pytest.approx(2.75)
        assert hist.counts[0] == pytest.approx(2.5)

    def test_default_weight_keeps_integer_counts(self):
        hist = Histogram("lat", buckets=(1,))
        hist.observe(0.5)
        assert isinstance(hist.counts[0], int)
        assert isinstance(hist.count, int)

    def test_weighted_tally_matches_plain_tally(self):
        weighted = Tally()
        plain = Tally()
        for value, repeat in ((2.0, 3), (8.0, 5), (1.0, 2)):
            weighted.add_weighted(value, repeat)
            for _ in range(repeat):
                plain.add(value)
        assert weighted.count == plain.count
        assert weighted.mean == pytest.approx(plain.mean)
        assert weighted.variance == pytest.approx(plain.variance)
        assert (weighted.min, weighted.max) == (plain.min, plain.max)

    def test_weighted_tally_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError):
            Tally().add_weighted(1.0, 0)
