"""Dashboard frame writer, sweep monitor, and STATS frame rendering."""

import io
import math

import pytest

from repro.experiments.base import run_sweep, sweep_progress
from repro.obs.dashboard import (
    Dashboard,
    SweepMonitor,
    quantiles_from_bucket_snapshot,
    render_stats_frame,
)
from repro.obs.latency import LatencyHistogram
from repro.obs.metrics import MetricsRegistry

from tests.conftest import small_config


class _TtyStream(io.StringIO):
    def isatty(self):
        return True


class _FakeResult:
    class response_miss:
        mean = 50.0


class TestDashboard:
    def test_plain_stream_appends_whole_frames(self):
        stream = io.StringIO()
        dash = Dashboard(stream=stream, interval=0.0)
        dash.show("a\nb")
        dash.show("c")
        assert stream.getvalue() == "a\nb\nc\n"

    def test_tty_repaints_in_place(self):
        stream = _TtyStream()
        dash = Dashboard(stream=stream, interval=0.0)
        dash.show("one\ntwo")
        dash.show("three\nfour")
        out = stream.getvalue()
        # Second frame climbs back over the first (2 lines) and clears.
        assert "\x1b[2F" in out
        assert out.count("\x1b[2K") == 4

    def test_tty_blanks_leftover_lines_of_a_taller_frame(self):
        stream = _TtyStream()
        dash = Dashboard(stream=stream, interval=0.0)
        dash.show("one\ntwo\nthree")
        dash.show("four")
        tail = stream.getvalue().rsplit("\x1b[3F", 1)[-1]
        # After the shorter frame, two stale lines are erased.
        assert tail.count("\x1b[2K") >= 3

    def test_interval_throttles_unforced_frames(self):
        stream = io.StringIO()
        dash = Dashboard(stream=stream, interval=3600.0)
        assert dash.show("first")
        assert not dash.show("suppressed")
        assert dash.show("forced", force=True)
        assert "suppressed" not in stream.getvalue()

    def test_close_paints_a_final_frame(self):
        stream = io.StringIO()
        dash = Dashboard(stream=stream, interval=3600.0)
        dash.show("first")
        dash.close("final")
        assert stream.getvalue().endswith("final\n")


class TestSweepMonitor:
    def test_registry_instruments_track_progress(self):
        registry = MetricsRegistry()
        monitor = SweepMonitor(registry=registry)
        monitor.sweep_started(3, "IPP")
        for index in range(3):
            monitor.replicate_done(index, _FakeResult())
        snapshot = registry.snapshot()
        assert snapshot["sweep_replicates_completed_total"]["value"] == 3
        assert snapshot["sweep_replicates_total"]["value"] == 3
        assert snapshot["sweep_running_mean_wait"]["value"] == 50.0

    def test_totals_accumulate_across_sweeps(self):
        monitor = SweepMonitor()
        monitor.sweep_started(2, "push")
        monitor.replicate_done(0, _FakeResult())
        monitor.sweep_started(4, "pull")
        assert monitor.total == 6 and monitor.completed == 1
        assert monitor.eta_seconds() is not None

    def test_render_mentions_progress_and_current_series(self):
        monitor = SweepMonitor(title="figure 3a")
        monitor.sweep_started(2, "IPP 95%")
        monitor.replicate_done(0, _FakeResult())
        frame = monitor.render()
        assert "figure 3a" in frame
        assert "1/2" in frame
        assert "IPP 95%" in frame

    def test_overall_histogram_merges_per_sweep_histograms(self):
        monitor = SweepMonitor()
        monitor.sweep_started(1, "a")
        monitor.replicate_done(0, _FakeResult())
        monitor.sweep_started(1, "b")
        monitor.replicate_done(0, _FakeResult())
        merged = monitor.overall_histogram()
        assert merged.count == 2
        assert merged.mean == 50.0

    def test_nan_means_are_skipped_not_poisoning(self):
        class _NanResult:
            class response_miss:
                mean = math.nan

        monitor = SweepMonitor()
        monitor.sweep_started(1, None)
        monitor.replicate_done(0, _NanResult())
        assert monitor.completed == 1
        assert monitor.overall_histogram().count == 0

    def test_drives_from_a_real_sweep_via_ambient_context(self):
        stream = io.StringIO()
        monitor = SweepMonitor(
            dashboard=Dashboard(stream=stream, interval=0.0))
        configs = [small_config(run__measure_accesses=40) for _ in range(2)]
        with sweep_progress(monitor):
            results = run_sweep(configs, label="smoke")
        assert len(results) == 2
        assert monitor.completed == 2 and monitor.total == 2
        assert "smoke" in stream.getvalue()

    def test_ambient_context_restores_previous_observer(self):
        from repro.experiments import base

        outer, inner = SweepMonitor(), SweepMonitor()
        with sweep_progress(outer):
            with sweep_progress(inner):
                assert base._AMBIENT_PROGRESS is inner
            assert base._AMBIENT_PROGRESS is outer
        assert base._AMBIENT_PROGRESS is None


class TestStatsFrames:
    def test_renders_server_snapshot_shape(self):
        frame = render_stats_frame({
            "slot": 250,
            "connected_clients": 7,
            "server": {
                "slots": {"push": 200, "pull": 50},
                "queue": {"depth": 3, "capacity": 80, "served": 41,
                          "drop_rate": 0.05},
                "schedule_pos": 9,
            },
            "metrics": {
                "net_frames_sent_total": {"type": "counter", "value": 1750},
                "net_frames_shed_total": {"type": "counter", "value": 2},
            },
        }, title="serve :9000")
        assert "serve :9000" in frame and "slot 250" in frame
        assert "clients 7" in frame
        assert "queue 3/80" in frame and "5.0%" in frame
        assert "push 200" in frame and "pull 50" in frame
        assert "frames_sent 1750" in frame and "frames_shed 2" in frame

    def test_tolerates_partial_payloads(self):
        assert render_stats_frame({}, title="x").startswith("x")

    def test_renders_latency_quantiles_from_bucket_snapshot(self):
        hist = LatencyHistogram("fleet_latency_seconds")
        for value in (1.0, 2.0, 3.0, 50.0):
            hist.observe(value)
        frame = render_stats_frame(
            {"metrics": {"fleet_latency_seconds": hist.snapshot()}})
        assert "fleet latency" in frame and "p90" in frame


class TestBucketSnapshotQuantiles:
    def test_matches_live_histogram_within_bucket_resolution(self):
        hist = LatencyHistogram("lat")
        values = [1.0, 2.0, 4.0, 8.0, 20.0, 100.0, 400.0, 2000.0]
        for value in values:
            hist.observe(value)
        estimated = quantiles_from_bucket_snapshot(hist.snapshot())
        for name, q in (("p50", 0.5), ("p90", 0.9), ("p99", 0.99)):
            exact = hist.quantile(q)
            assert estimated[name] == pytest.approx(exact, rel=1e-9), name

    def test_empty_or_foreign_snapshots_return_none(self):
        assert quantiles_from_bucket_snapshot({}) is None
        assert quantiles_from_bucket_snapshot(
            {"type": "counter", "value": 3}) is None
        empty = LatencyHistogram("lat").snapshot()
        assert quantiles_from_bucket_snapshot(empty) is None
