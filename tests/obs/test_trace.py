"""Unit tests for slot-level tracing: records, sinks, tracer, engines."""

import json

import pytest

from repro.core.algorithms import Algorithm
from repro.core.fast import FastEngine
from repro.core.simulation import ReferenceEngine
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    JsonlSink,
    MemorySink,
    NullSink,
    SlotRecord,
    SlotTracer,
    read_jsonl,
)
from repro.server.broadcast_server import SlotKind
from repro.server.queue import BoundedRequestQueue
from tests.conftest import small_config


def record(slot=0, **overrides):
    base = dict(slot=slot, kind="push", page=7, queue_depth=2, enqueued=5,
                duplicates=1, dropped=0, served=3, mc_waiting=None,
                mc_arrivals=0, vc_arrivals=4)
    base.update(overrides)
    return SlotRecord(**base)


class TestSlotRecord:
    def test_dict_roundtrip(self):
        original = record(slot=17, mc_waiting=3)
        assert SlotRecord.from_dict(original.to_dict()) == original

    def test_from_dict_ignores_unknown_keys(self):
        data = record().to_dict()
        data["extra_future_field"] = "ignored"
        assert SlotRecord.from_dict(data) == record()

    def test_from_dict_defaults_missing_optional_fields_to_none(self):
        data = record(mc_waiting=4).to_dict()
        del data["mc_waiting"]
        assert SlotRecord.from_dict(data).mc_waiting is None

    def test_from_dict_names_the_missing_required_field(self):
        data = record().to_dict()
        del data["queue_depth"]
        with pytest.raises(ValueError, match="queue_depth"):
            SlotRecord.from_dict(data)

    def test_is_frozen(self):
        with pytest.raises(AttributeError):
            record().slot = 5


class TestSinks:
    def test_null_sink_counts_and_discards(self):
        sink = NullSink()
        for i in range(5):
            sink.emit(record(slot=i))
        assert sink.emitted == 5

    def test_memory_sink_keeps_everything_by_default(self):
        sink = MemorySink()
        for i in range(10):
            sink.emit(record(slot=i))
        assert [r.slot for r in sink.records] == list(range(10))

    def test_memory_sink_ring_buffer(self):
        sink = MemorySink(capacity=3)
        for i in range(10):
            sink.emit(record(slot=i))
        assert [r.slot for r in sink.records] == [7, 8, 9]
        assert sink.emitted == 10

    def test_memory_sink_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            MemorySink(capacity=0)

    def test_jsonl_sink_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            for i in range(4):
                sink.emit(record(slot=i, page=i * 10))
        loaded = read_jsonl(path)
        assert [r.slot for r in loaded] == [0, 1, 2, 3]
        assert loaded[2].page == 20
        # Every line is standalone JSON.
        for line in path.read_text().splitlines():
            assert json.loads(line)["kind"] == "push"

    def test_jsonl_sink_closed_rejects_emit(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        with pytest.raises(ValueError):
            sink.emit(record())
        sink.close()  # idempotent


class TestSlotTracer:
    def test_arrival_attribution_resets_per_slot(self):
        sink = MemorySink()
        tracer = SlotTracer(sink)
        queue = BoundedRequestQueue(4)
        tracer.on_mc_request(3)
        tracer.on_vc_request(5)
        tracer.on_vc_request(6)
        tracer.on_slot(0, SlotKind.PUSH, 9, queue, mc_waiting=3)
        tracer.on_slot(1, SlotKind.PADDING, None, queue, mc_waiting=None)
        first, second = sink.records
        assert (first.mc_arrivals, first.vc_arrivals) == (1, 2)
        assert (second.mc_arrivals, second.vc_arrivals) == (0, 0)
        assert first.kind == "push" and second.kind == "padding"
        assert second.page is None

    def test_metrics_integration(self):
        registry = MetricsRegistry()
        tracer = SlotTracer(MemorySink(), metrics=registry)
        queue = BoundedRequestQueue(1)
        queue.offer(1)
        queue.offer(2)  # dropped (capacity 1)
        tracer.on_slot(0, SlotKind.PULL, 1, queue, None)
        snap = registry.snapshot()
        assert snap["trace_slots_pull_total"]["value"] == 1
        assert snap["trace_requests_dropped_total"]["value"] == 1
        assert snap["trace_queue_depth"]["count"] == 1


class TestEngineTracing:
    @staticmethod
    def _metrics(result):
        """to_dict minus the manifest (whose timestamps always differ)."""
        data = result.to_dict()
        data.pop("manifest")
        return data

    def test_fast_engine_traced_run_matches_untraced(self, ipp_config):
        plain = FastEngine(ipp_config).run()
        sink = MemorySink()
        traced = FastEngine(ipp_config, tracer=SlotTracer(sink)).run()
        assert self._metrics(traced) == self._metrics(plain)
        assert sink.emitted > 0

    def test_reference_engine_traced_run_matches_untraced(self, ipp_config):
        plain = ReferenceEngine(ipp_config).run()
        sink = MemorySink()
        traced = ReferenceEngine(ipp_config, tracer=SlotTracer(sink)).run()
        assert self._metrics(traced) == self._metrics(plain)
        assert sink.emitted > 0

    def test_trace_covers_every_slot_in_order(self, ipp_config):
        sink = MemorySink()
        FastEngine(ipp_config, tracer=SlotTracer(sink)).run()
        slots = [r.slot for r in sink.records]
        assert slots == list(range(len(slots)))

    def test_trace_slot_kinds_are_consistent(self, ipp_config):
        sink = MemorySink()
        FastEngine(ipp_config, tracer=SlotTracer(sink)).run()
        kinds = {r.kind for r in sink.records}
        assert kinds <= {"push", "pull", "padding", "idle"}
        # Push pages are on the air; padding/idle slots carry nothing.
        for r in sink.records:
            if r.kind in ("padding", "idle"):
                assert r.page is None
            else:
                assert r.page is not None

    def test_queue_depth_respects_capacity(self, pull_config):
        sink = MemorySink()
        FastEngine(pull_config, tracer=SlotTracer(sink)).run()
        capacity = pull_config.server.queue_size
        assert all(0 <= r.queue_depth <= capacity for r in sink.records)

    def test_tracing_forces_general_path_for_pure_push(self, push_config):
        sink = MemorySink()
        FastEngine(push_config, tracer=SlotTracer(sink)).run()
        # The analytic shortcut ticks no slots; a non-empty per-slot trace
        # proves the general loop ran.
        assert sink.emitted > 0
        assert {r.kind for r in sink.records} <= {"push", "padding"}

    def test_pure_push_response_unchanged_by_tracing(self, push_config):
        analytic = FastEngine(push_config).run()
        traced = FastEngine(push_config,
                            tracer=SlotTracer(MemorySink())).run()
        assert traced.response_miss.mean == pytest.approx(
            analytic.response_miss.mean)
        assert traced.mc_misses == analytic.mc_misses

    def test_ring_buffer_keeps_the_tail(self):
        config = small_config(Algorithm.IPP, run__measure_accesses=100)
        sink = MemorySink(capacity=16)
        FastEngine(config, tracer=SlotTracer(sink)).run()
        assert len(sink.records) == 16
        assert sink.emitted > 16
        last = sink.records[-1].slot
        assert [r.slot for r in sink.records] == list(
            range(last - 15, last + 1))
