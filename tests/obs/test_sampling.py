"""Sampling policies: selection, weights, and tracer integration."""

import math

import pytest

from repro.core.fast import FastEngine
from repro.obs import (
    EveryNSampling,
    MemorySink,
    NullSink,
    RequestTracer,
    ReservoirSampling,
    sample_stream,
)

from tests.conftest import small_config
from tests.obs.test_requests import _record


def _records(count):
    """A synthetic miss stream with distinguishable waits."""
    return [_record(index=i, issued_at=float(i), served_at=float(i) + 1 + i % 7,
                    wait=1.0 + i % 7, queue_wait=float(i % 7), service=1.0)
            for i in range(count)]


class TestEveryNSampling:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            EveryNSampling(0)

    def test_keeps_every_nth_index_with_weight_n(self):
        policy = EveryNSampling(3)
        kept = sample_stream(_records(10), policy)
        assert [record.index for record, _ in kept] == [0, 3, 6, 9]
        assert all(weight == 3.0 for _, weight in kept)
        assert policy.seen == 10 and policy.sampled == 4

    def test_n_equals_one_keeps_everything(self):
        kept = sample_stream(_records(5), EveryNSampling(1))
        assert len(kept) == 5
        assert all(weight == 1.0 for _, weight in kept)

    def test_describe_carries_parameters_and_counts(self):
        policy = EveryNSampling(4)
        sample_stream(_records(8), policy)
        assert policy.describe() == {
            "policy": "every_n", "n": 4, "seen": 8, "sampled": 2}


class TestReservoirSampling:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ReservoirSampling(0, seed=1)

    def test_short_stream_keeps_everything_at_weight_one(self):
        kept = sample_stream(_records(6), ReservoirSampling(10, seed=3))
        assert [record.index for record, _ in kept] == list(range(6))
        assert all(weight == 1.0 for _, weight in kept)

    def test_long_stream_keeps_capacity_records(self):
        policy = ReservoirSampling(25, seed=3)
        kept = sample_stream(_records(500), policy)
        assert len(kept) == 25
        assert all(weight == 500 / 25 for _, weight in kept)
        indexes = [record.index for record, _ in kept]
        assert indexes == sorted(indexes)
        # Later elements do get in: the reservoir is not just the prefix.
        assert max(indexes) >= 25

    def test_same_seed_reproduces_the_sample(self):
        first = sample_stream(_records(300), ReservoirSampling(20, seed=11))
        second = sample_stream(_records(300), ReservoirSampling(20, seed=11))
        assert [r.index for r, _ in first] == [r.index for r, _ in second]

    def test_different_seeds_sample_differently(self):
        first = sample_stream(_records(300), ReservoirSampling(20, seed=11))
        second = sample_stream(_records(300), ReservoirSampling(20, seed=12))
        assert [r.index for r, _ in first] != [r.index for r, _ in second]

    def test_drain_is_idempotent(self):
        policy = ReservoirSampling(5, seed=1)
        sample_stream(_records(50), policy)
        assert policy.drain() == []

    def test_accept_after_drain_raises(self):
        policy = ReservoirSampling(5, seed=1)
        sample_stream(_records(50), policy)
        with pytest.raises(RuntimeError):
            policy.accept(50)

    def test_sampling_is_roughly_uniform_over_the_stream(self):
        # 200 draws of a 50-slot reservoir over a 400-long stream: the
        # mean kept index should approach the stream's mid-point.
        total = 0.0
        count = 0
        for seed in range(20):
            kept = sample_stream(_records(400),
                                 ReservoirSampling(50, seed=seed))
            total += sum(record.index for record, _ in kept)
            count += len(kept)
        assert count == 20 * 50
        assert total / count == pytest.approx(400 / 2, rel=0.10)


class TestTracerIntegration:
    def _run(self, sampling=None, sink=None):
        config = small_config()
        tracer = RequestTracer(sink if sink is not None else NullSink(),
                               sampling=sampling)
        FastEngine(config, request_tracer=tracer).run()
        return tracer

    def test_sampling_none_is_the_historic_exact_path(self):
        full = self._run()
        again = self._run(sampling=EveryNSampling(1))
        # 1-in-1 sampling keeps every access at weight 1 — identical
        # (bit-for-bit) counts and wait totals.
        assert again.breakdown().to_dict() == full.breakdown().to_dict()
        assert again.wait_quantiles() == full.wait_quantiles()

    def test_unsampled_breakdown_counts_stay_exact_ints(self):
        full = self._run()
        stats = full.breakdown()
        assert isinstance(stats.accesses, int)
        assert isinstance(stats.misses, int)

    def test_every_n_keeps_exactly_the_nth_records(self):
        full_sink, sampled_sink = MemorySink(), MemorySink()
        self._run(sink=full_sink)
        sampled = self._run(sampling=EveryNSampling(5), sink=sampled_sink)
        expected = [r for r in full_sink.records if r.index % 5 == 0]
        assert list(sampled_sink.records) == expected
        assert sampled.records_emitted == len(expected)
        assert sampled.accesses_seen == len(full_sink.records)

    def test_every_n_corrected_estimates_track_the_full_trace(self):
        full = self._run()
        sampled = self._run(sampling=EveryNSampling(5))
        exact = full.breakdown()
        estimate = sampled.breakdown()
        assert estimate.accesses == pytest.approx(exact.accesses, rel=0.15)
        assert estimate.mean_wait == pytest.approx(exact.mean_wait, rel=0.25)
        quantiles = sampled.wait_quantiles()
        assert quantiles is not None
        assert quantiles["p90"] == pytest.approx(
            full.wait_quantiles()["p90"], rel=0.35)

    def test_reservoir_defers_records_until_finalize(self):
        sink = MemorySink()
        sampled = self._run(sampling=ReservoirSampling(40, seed=9),
                            sink=sink)
        assert sampled.records_emitted == 0 and not sink.records
        stats = sampled.breakdown()  # auto-finalizes
        assert sampled.records_emitted == len(sink.records) > 0
        assert len(sink.records) <= 40
        # The reservoir spans settle + measure; the breakdown's weighted
        # count estimates the *measured* population only.
        exact = self._run().breakdown().accesses
        assert stats.accesses == pytest.approx(exact, rel=0.30)
        # finalize is idempotent: a second aggregate query adds nothing.
        sampled.wait_quantiles()
        assert sampled.records_emitted == len(sink.records)

    def test_reservoir_weighted_mean_tracks_the_full_trace(self):
        full = self._run()
        sampled = self._run(sampling=ReservoirSampling(60, seed=4))
        assert sampled.breakdown().mean_wait == pytest.approx(
            full.breakdown().mean_wait, rel=0.35)

    def test_sampled_metrics_weights_estimate_population_counts(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        config = small_config()
        tracer = RequestTracer(NullSink(), metrics=registry,
                               sampling=EveryNSampling(4))
        FastEngine(config, request_tracer=tracer).run()
        tracer.finalize()
        snapshot = registry.snapshot()
        estimated = (snapshot["request_hits_total"]["value"]
                     + snapshot["request_misses_total"]["value"])
        assert estimated == pytest.approx(tracer.breakdown().accesses)

    def test_hits_never_enter_the_wait_histogram(self):
        sampled = self._run(sampling=EveryNSampling(3))
        stats = sampled.breakdown()
        assert sampled.wait_histogram.count == pytest.approx(stats.misses)
        assert not math.isnan(stats.mean_wait)
