"""Shared fixtures: miniature configurations that keep tests fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithms import Algorithm
from repro.core.config import ClientConfig, RunConfig, ServerConfig, SystemConfig


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


def small_config(algorithm: Algorithm = Algorithm.IPP,
                 **overrides) -> SystemConfig:
    """A 20-page system that simulates in milliseconds."""
    config = SystemConfig(
        algorithm=algorithm,
        client=ClientConfig(cache_size=5, think_time=4.0,
                            think_time_ratio=5.0, steady_state_perc=0.95,
                            zipf_theta=0.95),
        server=ServerConfig(db_size=20, disk_sizes=(4, 6, 10),
                            rel_freqs=(3, 2, 1), queue_size=5,
                            pull_bw=0.5),
        run=RunConfig(settle_accesses=50, measure_accesses=200, seed=7,
                      max_slots=2_000_000),
    )
    if overrides:
        config = config.with_(**overrides)
    return config


@pytest.fixture
def ipp_config():
    return small_config(Algorithm.IPP)


@pytest.fixture
def push_config():
    return small_config(Algorithm.PURE_PUSH)


@pytest.fixture
def pull_config():
    return small_config(Algorithm.PURE_PULL)
