"""Unit tests for Store and Resource."""

import pytest

from repro.sim import Environment, Resource, Store, StoreFull


class TestStore:
    def test_put_then_get_fifo_order(self):
        env = Environment()
        store = Store(env)
        taken = []

        def producer(env):
            for item in ("a", "b", "c"):
                yield store.put(item)

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                taken.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert taken == ["a", "b", "c"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append((env.now, item))

        def producer(env):
            yield env.timeout(5.0)
            yield store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(5.0, "late")]

    def test_put_blocks_when_full(self):
        env = Environment()
        store = Store(env, capacity=1)
        times = []

        def producer(env):
            yield store.put(1)
            times.append(env.now)
            yield store.put(2)
            times.append(env.now)

        def consumer(env):
            yield env.timeout(3.0)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert times == [0.0, 3.0]

    def test_put_nowait_raises_when_full(self):
        env = Environment()
        store = Store(env, capacity=2)
        store.put_nowait("x")
        store.put_nowait("y")
        assert store.is_full
        with pytest.raises(StoreFull):
            store.put_nowait("z")

    def test_put_nowait_hands_item_to_waiting_getter(self):
        env = Environment()
        store = Store(env, capacity=1)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append(item)

        env.process(consumer(env))
        env.run(until=1.0)
        store.put_nowait("direct")
        env.run(until=2.0)
        assert got == ["direct"]
        assert len(store) == 0

    def test_len_counts_buffered_items(self):
        env = Environment()
        store = Store(env)
        store.put_nowait(1)
        store.put_nowait(2)
        assert len(store) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Store(Environment(), capacity=0)


class TestResource:
    def test_request_grants_up_to_capacity(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        grants = []

        def worker(env, tag):
            yield resource.request()
            grants.append((tag, env.now))
            yield env.timeout(10.0)
            resource.release()

        for tag in range(3):
            env.process(worker(env, tag))
        env.run()
        assert grants == [(0, 0.0), (1, 0.0), (2, 10.0)]

    def test_queue_length_and_in_use(self):
        env = Environment()
        resource = Resource(env, capacity=1)

        def holder(env):
            yield resource.request()
            yield env.timeout(5.0)
            resource.release()

        def waiter(env):
            yield resource.request()
            resource.release()

        env.process(holder(env))
        env.process(waiter(env))
        env.run(until=1.0)
        assert resource.in_use == 1
        assert resource.queue_length == 1
        env.run(until=6.0)
        assert resource.queue_length == 0

    def test_release_without_request_raises(self):
        resource = Resource(Environment(), capacity=1)
        with pytest.raises(RuntimeError):
            resource.release()

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Resource(Environment(), capacity=0)

    def test_fifo_granting(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        order = []

        def worker(env, tag, hold):
            yield resource.request()
            order.append(tag)
            yield env.timeout(hold)
            resource.release()

        for tag in range(4):
            env.process(worker(env, tag, 1.0))
        env.run()
        assert order == [0, 1, 2, 3]
