"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError


class TestBasics:
    def test_process_requires_generator(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_simple_timeout_sequence(self):
        env = Environment()
        trace = []

        def proc(env):
            trace.append(env.now)
            yield env.timeout(2.0)
            trace.append(env.now)
            yield env.timeout(3.0)
            trace.append(env.now)

        env.process(proc(env))
        env.run()
        assert trace == [0.0, 2.0, 5.0]

    def test_yield_value_is_event_value(self):
        env = Environment()
        seen = []

        def proc(env):
            value = yield env.timeout(1.0, value="hello")
            seen.append(value)

        env.process(proc(env))
        env.run()
        assert seen == ["hello"]

    def test_process_is_event_with_return_value(self):
        env = Environment()

        def worker(env):
            yield env.timeout(1.0)
            return 42

        def waiter(env, target, out):
            result = yield target
            out.append((env.now, result))

        out = []
        target = env.process(worker(env))
        env.process(waiter(env, target, out))
        env.run()
        assert out == [(1.0, 42)]

    def test_is_alive_tracks_lifetime(self):
        env = Environment()

        def proc(env):
            yield env.timeout(5.0)

        process = env.process(proc(env))
        env.run(until=1.0)
        assert process.is_alive
        env.run(until=6.0)
        assert not process.is_alive

    def test_waiting_on_already_processed_event(self):
        env = Environment()
        done = env.event()
        done.succeed("early")
        env.run(until=1.0)
        seen = []

        def proc(env):
            value = yield done
            seen.append((env.now, value))

        env.process(proc(env))
        env.run(until=2.0)
        assert seen == [(1.0, "early")]

    def test_yielding_non_event_raises_inside_process(self):
        env = Environment()
        errors = []

        def proc(env):
            try:
                yield "not an event"
            except SimulationError as exc:
                errors.append(str(exc))

        env.process(proc(env))
        env.run()
        assert errors and "non-event" in errors[0]

    def test_failed_event_raises_inside_process(self):
        env = Environment()
        caught = []

        def proc(env):
            bad = env.event()
            bad.fail(ValueError("kaput"))
            try:
                yield bad
            except ValueError as exc:
                caught.append(str(exc))

        env.process(proc(env))
        env.run()
        assert caught == ["kaput"]

    def test_unhandled_crash_propagates_when_nobody_waits(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1.0)
            raise RuntimeError("crash")

        env.process(proc(env))
        with pytest.raises(RuntimeError, match="crash"):
            env.run()

    def test_crash_delivered_to_waiting_process(self):
        env = Environment()
        outcome = []

        def bad(env):
            yield env.timeout(1.0)
            raise RuntimeError("inner")

        def waiter(env, target):
            try:
                yield target
            except RuntimeError as exc:
                outcome.append(str(exc))

        target = env.process(bad(env))
        target.add_callback(lambda e: None)  # someone is watching
        env.process(waiter(env, target))
        env.run()
        assert outcome == ["inner"]


class TestInterrupt:
    def test_interrupt_wakes_process_with_cause(self):
        env = Environment()
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                log.append((env.now, interrupt.cause))

        def interrupter(env, victim):
            yield env.timeout(3.0)
            victim.interrupt(cause="wake up")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert log == [(3.0, "wake up")]

    def test_interrupting_finished_process_raises(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1.0)

        process = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            process.interrupt()

    def test_process_can_rewait_after_interrupt(self):
        env = Environment()
        log = []

        def sleeper(env):
            nap = env.timeout(10.0)
            try:
                yield nap
            except Interrupt:
                log.append(("interrupted", env.now))
                yield nap  # finish the original sleep
            log.append(("done", env.now))

        def interrupter(env, victim):
            yield env.timeout(4.0)
            victim.interrupt()

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert log == [("interrupted", 4.0), ("done", 10.0)]

    def test_self_interrupt_rejected(self):
        env = Environment()
        errors = []

        def proc(env):
            try:
                this.interrupt()
            except SimulationError as exc:
                errors.append(str(exc))
            yield env.timeout(1.0)

        this = env.process(proc(env))
        env.run()
        assert len(errors) == 1
