"""Unit tests for the event calendar and event types."""

import math

import pytest

from repro.sim.core import AllOf, AnyOf, Environment, SimulationError, Timeout


class TestEnvironment:
    def test_clock_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_clock_honours_initial_time(self):
        assert Environment(initial_time=5.5).now == 5.5

    def test_run_until_advances_clock_even_without_events(self):
        env = Environment()
        env.run(until=10.0)
        assert env.now == 10.0

    def test_run_until_past_raises(self):
        env = Environment(initial_time=5.0)
        with pytest.raises(ValueError):
            env.run(until=1.0)

    def test_peek_empty_queue_is_inf(self):
        assert Environment().peek() == math.inf

    def test_peek_reports_next_event_time(self):
        env = Environment()
        env.timeout(3.0)
        env.timeout(1.0)
        assert env.peek() == 1.0

    def test_step_on_empty_queue_raises(self):
        with pytest.raises(SimulationError):
            Environment().step()

    def test_step_advances_to_event_time(self):
        env = Environment()
        env.timeout(2.5)
        env.step()
        assert env.now == 2.5

    def test_run_drains_all_events_without_until(self):
        env = Environment()
        fired = []
        env.timeout(1.0).add_callback(lambda e: fired.append(env.now))
        env.timeout(4.0).add_callback(lambda e: fired.append(env.now))
        env.run()
        assert fired == [1.0, 4.0]

    def test_run_until_excludes_later_events(self):
        env = Environment()
        fired = []
        env.timeout(1.0).add_callback(lambda e: fired.append(1))
        env.timeout(5.0).add_callback(lambda e: fired.append(5))
        env.run(until=3.0)
        assert fired == [1]
        assert env.now == 3.0

    def test_same_time_events_fire_in_scheduling_order(self):
        env = Environment()
        order = []
        for tag in range(5):
            env.timeout(1.0, value=tag).add_callback(
                lambda e: order.append(e.value))
        env.run()
        assert order == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)


class TestEvent:
    def test_fresh_event_is_pending(self):
        event = Environment().event()
        assert not event.triggered
        assert not event.processed

    def test_value_before_trigger_raises(self):
        event = Environment().event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_succeed_carries_value(self):
        env = Environment()
        event = env.event()
        event.succeed("payload")
        env.run()
        assert event.processed
        assert event.ok
        assert event.value == "payload"

    def test_double_succeed_raises(self):
        event = Environment().event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self):
        event = Environment().event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_fail_marks_not_ok(self):
        env = Environment()
        event = env.event()
        boom = RuntimeError("boom")
        event.fail(boom)
        env.run()
        assert not event.ok
        assert event.value is boom

    def test_callback_after_processed_runs_immediately(self):
        env = Environment()
        event = env.event()
        event.succeed(11)
        env.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == [11]

    def test_succeed_with_delay(self):
        env = Environment()
        event = env.event()
        event.succeed(delay=4.0)
        times = []
        event.add_callback(lambda e: times.append(env.now))
        env.run()
        assert times == [4.0]


class TestTimeout:
    def test_timeout_fires_with_value(self):
        env = Environment()
        timeout = env.timeout(2.0, value="tick")
        env.run()
        assert timeout.processed
        assert timeout.value == "tick"

    def test_zero_delay_allowed(self):
        env = Environment()
        timeout = env.timeout(0.0)
        env.run()
        assert timeout.processed
        assert env.now == 0.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Timeout(Environment(), -0.5)


class TestComposites:
    def test_any_of_fires_on_first(self):
        env = Environment()
        fast = env.timeout(1.0, value="fast")
        slow = env.timeout(5.0, value="slow")
        any_of = AnyOf(env, [fast, slow])
        env.run()
        assert any_of.processed
        assert any_of.value == {fast: "fast"}

    def test_all_of_waits_for_every_event(self):
        env = Environment()
        a = env.timeout(1.0, value="a")
        b = env.timeout(3.0, value="b")
        all_of = AllOf(env, [a, b])
        fired_at = []
        all_of.add_callback(lambda e: fired_at.append(env.now))
        env.run()
        assert fired_at == [3.0]
        assert all_of.value == {a: "a", b: "b"}

    def test_empty_composites_fire_immediately(self):
        env = Environment()
        any_of = AnyOf(env, [])
        all_of = AllOf(env, [])
        env.run()
        assert any_of.processed and all_of.processed

    def test_any_of_propagates_failure(self):
        env = Environment()
        bad = env.event()
        bad.fail(ValueError("nope"))
        any_of = AnyOf(env, [bad, env.timeout(9.0)])
        env.run(until=1.0)
        assert any_of.triggered
        assert not any_of.ok
