"""Unit and property tests for the statistics collectors."""

import math
import statistics

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim import Tally, TimeWeighted

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)


class TestTally:
    def test_empty_tally(self):
        tally = Tally()
        assert tally.count == 0
        assert math.isnan(tally.mean)
        assert math.isnan(tally.variance)

    def test_single_observation(self):
        tally = Tally()
        tally.add(5.0)
        assert tally.count == 1
        assert tally.mean == 5.0
        assert tally.min == tally.max == 5.0
        assert math.isnan(tally.variance)

    def test_known_moments(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        tally = Tally()
        for value in values:
            tally.add(value)
        assert tally.mean == pytest.approx(statistics.fmean(values))
        assert tally.variance == pytest.approx(statistics.variance(values))
        assert tally.stddev == pytest.approx(statistics.stdev(values))
        assert tally.min == 2.0
        assert tally.max == 9.0

    @given(st.lists(finite_floats, min_size=2, max_size=200))
    def test_matches_numpy(self, values):
        tally = Tally()
        for value in values:
            tally.add(value)
        assert tally.mean == pytest.approx(np.mean(values), rel=1e-9,
                                           abs=1e-6)
        assert tally.variance == pytest.approx(np.var(values, ddof=1),
                                               rel=1e-6, abs=1e-6)

    @given(st.lists(finite_floats, min_size=1, max_size=50),
           st.lists(finite_floats, min_size=1, max_size=50))
    def test_merge_equals_combined_stream(self, first, second):
        separate = Tally()
        for value in first:
            separate.add(value)
        other = Tally()
        for value in second:
            other.add(value)
        separate.merge(other)

        combined = Tally()
        for value in first + second:
            combined.add(value)
        assert separate.count == combined.count
        assert separate.mean == pytest.approx(combined.mean, rel=1e-9,
                                              abs=1e-6)
        assert separate.min == combined.min
        assert separate.max == combined.max

    def test_merge_empty_is_noop(self):
        tally = Tally()
        tally.add(1.0)
        tally.merge(Tally())
        assert tally.count == 1

    def test_merge_into_empty_copies(self):
        tally = Tally()
        other = Tally()
        other.add(3.0)
        other.add(5.0)
        tally.merge(other)
        assert tally.count == 2
        assert tally.mean == 4.0

    def test_non_finite_observation_rejected(self):
        """NaN/inf must raise instead of silently poisoning the moments
        while min/max comparisons stay false."""
        tally = Tally()
        tally.add(1.0)
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(ValueError):
                tally.add(bad)
            with pytest.raises(ValueError):
                tally.add_weighted(bad, 2.0)
        assert tally.count == 1  # nothing was absorbed
        assert tally.mean == 1.0


class TestFromMoments:
    def test_matches_streamed_equivalent(self):
        values = [2.0, 4.0, 4.5, 7.0, 9.0]
        arr = np.asarray(values)
        mean = float(arr.mean())
        batch = Tally.from_moments(arr.size, mean,
                                   float(np.square(arr - mean).sum()),
                                   float(arr.min()), float(arr.max()))
        streamed = Tally()
        for value in values:
            streamed.add(value)
        assert batch.count == streamed.count
        assert batch.mean == pytest.approx(streamed.mean)
        assert batch.variance == pytest.approx(streamed.variance)
        assert batch.min == streamed.min
        assert batch.max == streamed.max

    def test_zero_count_gives_empty_tally(self):
        tally = Tally.from_moments(0, math.nan, math.nan,
                                   math.nan, math.nan)
        assert tally.count == 0
        assert math.isnan(tally.mean)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Tally.from_moments(-1, 0.0, 0.0, 0.0, 0.0)

    def test_non_finite_moments_rejected(self):
        with pytest.raises(ValueError):
            Tally.from_moments(3, math.nan, 0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            Tally.from_moments(3, 0.0, math.inf, 0.0, 0.0)

    @given(st.lists(finite_floats, min_size=1, max_size=50),
           st.lists(finite_floats, min_size=1, max_size=50))
    def test_merge_of_clean_batches_matches_pooled_stream(self, first,
                                                          second):
        def batch(values):
            arr = np.asarray(values, dtype=np.float64)
            mean = float(arr.mean())
            return Tally.from_moments(
                arr.size, mean, float(np.square(arr - mean).sum()),
                float(arr.min()), float(arr.max()))

        merged = batch(first)
        merged.merge(batch(second))
        pooled = Tally()
        for value in first + second:
            pooled.add(value)
        assert merged.count == pooled.count
        assert merged.mean == pytest.approx(pooled.mean, rel=1e-9,
                                            abs=1e-6)
        if pooled.count > 1:
            assert merged.variance == pytest.approx(pooled.variance,
                                                    rel=1e-6, abs=1e-6)
        assert merged.min == pooled.min
        assert merged.max == pooled.max


class TestTimeWeighted:
    def test_constant_signal(self):
        tw = TimeWeighted(time=0.0, value=3.0)
        assert tw.mean(now=10.0) == 3.0

    def test_step_signal(self):
        tw = TimeWeighted(time=0.0, value=0.0)
        tw.update(4.0, 10.0)   # 0 for 4 units
        tw.update(8.0, 0.0)    # 10 for 4 units
        assert tw.mean(now=8.0) == pytest.approx(5.0)

    def test_mean_extends_current_value(self):
        tw = TimeWeighted(time=0.0, value=2.0)
        tw.update(5.0, 4.0)
        # 2*5 + 4*5 over 10 units.
        assert tw.mean(now=10.0) == pytest.approx(3.0)

    def test_zero_elapsed_returns_current_value(self):
        tw = TimeWeighted(time=3.0, value=7.0)
        assert tw.mean(now=3.0) == 7.0

    def test_max_tracks_peaks(self):
        tw = TimeWeighted()
        tw.update(1.0, 9.0)
        tw.update(2.0, 1.0)
        assert tw.max == 9.0

    def test_time_going_backwards_rejected(self):
        tw = TimeWeighted()
        tw.update(5.0, 1.0)
        with pytest.raises(ValueError):
            tw.update(4.0, 2.0)

    def test_mean_before_last_update_rejected(self):
        tw = TimeWeighted()
        tw.update(5.0, 1.0)
        with pytest.raises(ValueError):
            tw.mean(now=4.0)

    @given(st.lists(st.tuples(st.floats(min_value=0.01, max_value=10.0),
                              finite_floats),
                    min_size=1, max_size=50))
    def test_piecewise_integral(self, segments):
        tw = TimeWeighted(time=0.0, value=0.0)
        now = 0.0
        area = 0.0
        value = 0.0
        for duration, new_value in segments:
            area += value * duration
            now += duration
            tw.update(now, new_value)
            value = new_value
        if now > 0:
            assert tw.mean(now=now) == pytest.approx(area / now, rel=1e-9,
                                                     abs=1e-6)
