"""Edge-case tests for the DES kernel beyond the basic suites."""

from repro.sim import Environment, Interrupt
from repro.sim.core import URGENT, AllOf


class TestPriorities:
    def test_urgent_timeout_beats_normal_scheduled_earlier(self):
        env = Environment()
        order = []
        env.timeout(1.0).add_callback(lambda e: order.append("normal"))
        env.timeout(1.0, priority=URGENT).add_callback(
            lambda e: order.append("urgent"))
        env.run()
        assert order == ["urgent", "normal"]

    def test_priority_only_breaks_same_time_ties(self):
        env = Environment()
        order = []
        env.timeout(0.5).add_callback(lambda e: order.append("early"))
        env.timeout(1.0, priority=URGENT).add_callback(
            lambda e: order.append("late-urgent"))
        env.run()
        assert order == ["early", "late-urgent"]


class TestProcessComposition:
    def test_process_chain_passes_values(self):
        env = Environment()

        def leaf(env):
            yield env.timeout(1.0)
            return 10

        def middle(env):
            value = yield env.process(leaf(env))
            yield env.timeout(1.0)
            return value * 2

        def root(env, out):
            value = yield env.process(middle(env))
            out.append((env.now, value))

        out = []
        env.process(root(env, out))
        env.run()
        assert out == [(2.0, 20)]

    def test_all_of_with_processes(self):
        env = Environment()

        def worker(env, duration, tag):
            yield env.timeout(duration)
            return tag

        procs = [env.process(worker(env, d, f"w{d}")) for d in (1.0, 3.0)]
        gathered = AllOf(env, procs)
        env.run()
        assert sorted(gathered.value.values()) == ["w1.0", "w3.0"]

    def test_interrupt_during_think_reschedules(self):
        """The pattern the reference engine's MC would use if interrupted:
        catch, handle, continue the loop."""
        env = Environment()
        log = []

        def client(env):
            while env.now < 10.0:
                try:
                    yield env.timeout(4.0)
                    log.append(("thought", env.now))
                except Interrupt:
                    log.append(("poked", env.now))

        def poker(env, victim):
            yield env.timeout(2.0)
            victim.interrupt()

        victim = env.process(client(env))
        env.process(poker(env, victim))
        env.run(until=20.0)
        assert ("poked", 2.0) in log
        assert any(tag == "thought" for tag, _ in log)


class TestRunControl:
    def test_run_until_is_resumable(self):
        env = Environment()
        ticks = []

        def clock(env):
            while True:
                yield env.timeout(1.0)
                ticks.append(env.now)

        env.process(clock(env))
        env.run(until=3.0)
        assert ticks == [1.0, 2.0, 3.0]
        env.run(until=5.0)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_zero_length_run(self):
        env = Environment()
        env.timeout(1.0)
        env.run(until=0.0)
        assert env.now == 0.0

    def test_events_exactly_at_until_fire(self):
        env = Environment()
        fired = []
        env.timeout(3.0).add_callback(lambda e: fired.append(3.0))
        env.run(until=3.0)
        assert fired == [3.0]
