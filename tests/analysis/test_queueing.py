"""Unit tests for the M/M/1/K backchannel model."""

import numpy as np
import pytest

from repro.analysis.queueing import MM1KQueue


class TestValidation:
    def test_rates_and_capacity(self):
        with pytest.raises(ValueError):
            MM1KQueue(-1.0, 1.0, 10)
        with pytest.raises(ValueError):
            MM1KQueue(1.0, 0.0, 10)
        with pytest.raises(ValueError):
            MM1KQueue(1.0, 1.0, 0)


class TestStationaryDistribution:
    def test_pmf_sums_to_one(self):
        queue = MM1KQueue(0.8, 1.0, 10)
        assert sum(queue.occupancy_pmf()) == pytest.approx(1.0)

    def test_rho_one_is_uniform(self):
        queue = MM1KQueue(1.0, 1.0, 4)
        assert np.allclose(queue.occupancy_pmf(), 0.2)

    def test_light_load_mostly_empty(self):
        queue = MM1KQueue(0.1, 1.0, 10)
        assert queue.occupancy_pmf()[0] > 0.89

    def test_overload_mostly_full(self):
        queue = MM1KQueue(10.0, 1.0, 5)
        assert queue.occupancy_pmf()[5] > 0.89


class TestDerivedMetrics:
    def test_blocking_grows_with_load(self):
        blocks = [MM1KQueue(lam, 1.0, 10).blocking_probability
                  for lam in (0.2, 0.5, 1.0, 2.0, 5.0)]
        assert blocks == sorted(blocks)
        assert blocks[0] < 1e-6
        assert blocks[-1] > 0.7

    def test_overloaded_blocking_approaches_excess(self):
        """At heavy overload, throughput pins at mu, so the block rate
        approaches 1 - mu/lambda."""
        queue = MM1KQueue(10.0, 1.0, 100)
        assert queue.blocking_probability == pytest.approx(0.9, abs=0.01)

    def test_throughput_bounded_by_service_rate(self):
        queue = MM1KQueue(5.0, 1.0, 20)
        assert queue.throughput <= 1.0 + 1e-9

    def test_mean_occupancy_bounds(self):
        queue = MM1KQueue(2.0, 1.0, 7)
        assert 0 <= queue.mean_occupancy <= 7

    def test_littles_law_consistency(self):
        queue = MM1KQueue(0.7, 1.0, 15)
        assert queue.mean_wait * queue.throughput == pytest.approx(
            queue.mean_occupancy)

    def test_zero_arrivals(self):
        queue = MM1KQueue(0.0, 1.0, 5)
        assert queue.blocking_probability == 0.0
        assert queue.mean_wait == 0.0

    def test_simulated_backchannel_diverges_from_mm1k(self):
        """The paper's point (Section 5): dedup + slotted service make the
        real backchannel kinder than the memoryless model under load —
        its effective drop rate is below the M/M/1/K blocking bound."""
        from repro.core.fast import FastEngine
        from tests.conftest import small_config

        config = small_config(client__think_time_ratio=60,
                              run__measure_accesses=400)
        result = FastEngine(config).run()
        offered = result.vc_generated - result.vc_absorbed
        lam = offered / result.measured_slots
        model = MM1KQueue(lam, config.pull_bw,
                          config.server.queue_size)
        assert result.drop_rate < model.blocking_probability
