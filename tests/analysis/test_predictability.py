"""Unit tests for the predictability / doze-mode model (footnote 2)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.predictability import (
    doze_fraction,
    expected_awake_slots,
    slot_predictability,
)


class TestSlotPredictability:
    def test_pure_push_is_fully_predictable(self):
        assert slot_predictability(100, pull_bw=0.0) == 1.0

    def test_pure_pull_program_is_never_predictable(self):
        assert slot_predictability(0, pull_bw=1.0) == 0.0

    def test_decays_with_distance(self):
        values = [slot_predictability(d, 0.3) for d in (0, 5, 50)]
        assert values == sorted(values, reverse=True)

    def test_idle_queue_restores_predictability(self):
        assert slot_predictability(10, 0.5, busy_fraction=0.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            slot_predictability(-1, 0.5)
        with pytest.raises(ValueError):
            slot_predictability(1, 1.5)
        with pytest.raises(ValueError):
            slot_predictability(1, 0.5, busy_fraction=-0.1)


class TestExpectedAwakeSlots:
    def test_pure_push_wakes_for_one_slot(self):
        assert expected_awake_slots(25, pull_bw=0.0) == pytest.approx(1.0)

    def test_saturated_pure_pull_never_sleeps_usefully(self):
        assert math.isinf(expected_awake_slots(3, pull_bw=1.0))

    def test_grows_with_pull_bandwidth(self):
        values = [expected_awake_slots(20, bw) for bw in (0.0, 0.3, 0.6)]
        assert values == sorted(values)

    @given(st.integers(min_value=0, max_value=500),
           st.floats(min_value=0.0, max_value=0.9))
    def test_at_least_the_transmission_slot(self, distance, pull_bw):
        assert expected_awake_slots(distance, pull_bw) >= 1.0 - 1e-12


class TestDozeFraction:
    def test_pure_push_distant_page_mostly_dozes(self):
        # Waiting 100 slots, awake for 1: doze fraction ~99%.
        assert doze_fraction(100, 0.0) == pytest.approx(100 / 101)

    def test_imminent_page_offers_no_doze(self):
        assert doze_fraction(0, 0.0) == pytest.approx(0.0)

    def test_saturated_pull_kills_doze(self):
        assert doze_fraction(50, 1.0) == 0.0

    @given(st.integers(min_value=0, max_value=300),
           st.floats(min_value=0.0, max_value=0.95),
           st.floats(min_value=0.0, max_value=1.0))
    def test_always_a_fraction(self, distance, pull_bw, busy):
        fraction = doze_fraction(distance, pull_bw, busy)
        assert 0.0 <= fraction <= 1.0

    def test_monotone_decreasing_in_pull_bw(self):
        values = [doze_fraction(40, bw) for bw in (0.0, 0.3, 0.6, 0.9)]
        assert values == sorted(values, reverse=True)
