"""Unit tests for bandwidth-allocation theory."""

import numpy as np
import pytest

from repro.analysis.bandwidth import (
    ideal_mean_delay,
    optimal_disk_split,
    square_root_frequencies,
)
from repro.workload.zipf import zipf_probabilities


class TestSquareRootFrequencies:
    def test_shares_sum_to_one(self):
        shares = square_root_frequencies(zipf_probabilities(100, 0.95))
        assert shares.sum() == pytest.approx(1.0)

    def test_proportional_to_sqrt(self):
        shares = square_root_frequencies([0.64, 0.16, 0.16, 0.04])
        assert shares[0] / shares[1] == pytest.approx(2.0)
        assert shares[0] / shares[3] == pytest.approx(4.0)

    def test_uniform_input_uniform_shares(self):
        shares = square_root_frequencies([0.25] * 4)
        assert np.allclose(shares, 0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            square_root_frequencies([])
        with pytest.raises(ValueError):
            square_root_frequencies([-0.1, 1.1])
        with pytest.raises(ValueError):
            square_root_frequencies([0.0, 0.0])


class TestIdealMeanDelay:
    def test_uniform_closed_form(self):
        # n equal pages: (sum sqrt(1/n))^2 / 2 = n/2.
        assert ideal_mean_delay([0.25] * 4) == pytest.approx(2.0)

    def test_skew_beats_uniform(self):
        skewed = ideal_mean_delay(zipf_probabilities(100, 1.0))
        uniform = ideal_mean_delay([1 / 100] * 100)
        assert skewed < uniform


class TestOptimalDiskSplit:
    def test_flat_disk_for_uniform_access(self):
        """With uniform probabilities, multi-speed disks cannot help; any
        split scores the same as a flat broadcast (n/2)."""
        probs = [1 / 100] * 100
        _, delay = optimal_disk_split(probs, rel_freqs=(1,), granularity=25)
        assert delay == pytest.approx(50.0)

    def test_split_improves_on_flat_for_skewed_access(self):
        probs = zipf_probabilities(100, 1.0)
        _, flat = optimal_disk_split(probs, rel_freqs=(1,), granularity=25)
        _, tiered = optimal_disk_split(probs, rel_freqs=(4, 1),
                                       granularity=25)
        assert tiered < flat

    def test_sizes_partition_database(self):
        probs = zipf_probabilities(100, 0.95)
        sizes, _ = optimal_disk_split(probs, rel_freqs=(3, 2, 1),
                                      granularity=25)
        assert sum(sizes) == 100
        assert all(size > 0 for size in sizes)

    def test_granularity_must_divide(self):
        with pytest.raises(ValueError):
            optimal_disk_split(zipf_probabilities(100, 0.95), (2, 1),
                               granularity=30)

    def test_too_coarse_granularity_rejected(self):
        with pytest.raises(ValueError):
            optimal_disk_split(zipf_probabilities(100, 0.95), (3, 2, 1),
                               granularity=50)

    def test_hot_disk_is_small(self):
        """The optimal fast disk holds few (hot) pages — the Broadcast
        Disks design intuition."""
        probs = zipf_probabilities(200, 1.0)
        sizes, _ = optimal_disk_split(probs, rel_freqs=(5, 1),
                                      granularity=25)
        assert sizes[0] < sizes[1]
