"""Tests for the closed-form Pure-Push model, validated against simulation."""

import math

import pytest

from repro.analysis.push_delay import (
    expected_page_delay,
    expected_push_response,
    steady_cache_contents,
)
from repro.broadcast.program import Disk, DiskAssignment, build_schedule
from repro.core.build import build_system
from repro.core.fast import FastEngine
from repro.workload.zipf import zipf_probabilities
from tests.conftest import small_config
from repro.core.algorithms import Algorithm


def fig1_schedule():
    return build_schedule(DiskAssignment((
        Disk((0,), 4), Disk((1, 2), 2), Disk((3, 4, 5, 6), 1))))


class TestExpectedPageDelay:
    def test_even_spacing(self):
        assert expected_page_delay(fig1_schedule(), 0) == pytest.approx(2.0)

    def test_missing_page_infinite(self):
        assert math.isinf(expected_page_delay(fig1_schedule(), 42))


class TestSteadyCacheContents:
    def test_pix_prefers_slow_hot_pages(self):
        schedule = fig1_schedule()
        probs = zipf_probabilities(7, 0.95)
        cached = steady_cache_contents(probs, schedule, 2, metric="pix")
        # Page 3 (hot among the slow disk, x=1) beats page 0 (x=4).
        assert 3 in cached
        assert 0 not in cached

    def test_p_metric_is_hottest(self):
        probs = zipf_probabilities(7, 0.95)
        cached = steady_cache_contents(probs, None, 3, metric="p")
        assert cached == frozenset({0, 1, 2})


class TestExpectedPushResponse:
    def test_all_pages_cached_gives_zero(self):
        schedule = fig1_schedule()
        probs = zipf_probabilities(7, 0.95)
        assert expected_push_response(probs, schedule, 7,
                                      stable_slots=7) == 0.0

    def test_missing_missable_page_rejected(self):
        schedule = build_schedule(DiskAssignment((Disk((0, 1), 1),)))
        probs = zipf_probabilities(3, 0.95)  # page 2 not broadcast
        # With no cache, the pull-only page is missable -> unbounded delay.
        with pytest.raises(ValueError, match="not on the push program"):
            expected_push_response(probs, schedule, 0)

    def test_per_access_vs_per_miss(self):
        schedule = fig1_schedule()
        probs = zipf_probabilities(7, 0.95)
        per_miss = expected_push_response(probs, schedule, 2, per_miss=True)
        per_access = expected_push_response(probs, schedule, 2,
                                            per_miss=False)
        assert per_access < per_miss

    def test_simulation_lies_between_closed_form_bounds(self):
        """The headline validation: the Pure-Push simulator's measured mean
        must land between the two churn-slot models of the warm cache
        (stable residents = CacheSize and CacheSize - 1)."""
        config = small_config(Algorithm.PURE_PUSH,
                              run__measure_accesses=30_000,
                              run__settle_accesses=500)
        state = build_system(config)
        cache_size = config.client.cache_size
        optimistic = expected_push_response(
            state.mc_probabilities, state.schedule, cache_size,
            stable_slots=cache_size)
        pessimistic = expected_push_response(
            state.mc_probabilities, state.schedule, cache_size,
            stable_slots=cache_size - 1)
        result = FastEngine(config, state=state).run()
        assert optimistic < pessimistic
        # Allow a small statistical margin around the bracket.
        assert optimistic * 0.97 <= result.response_miss.mean \
            <= pessimistic * 1.03
