"""Cross-run regression harness: statistics, alignment, verdicts."""

import copy
import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.base import (
    FigureResult,
    FigureSeries,
    PointStats,
    figure_from_dict,
)
from repro.experiments.compare import (
    DRIFT,
    OK,
    STRUCTURAL,
    compare_figures,
    compare_files,
    student_t_sf,
    welch_t,
)
from repro.experiments.reporting import render_compare


def point(mean, stddev=0.0, replicates=1, drop=0.0, **quantiles):
    return PointStats(mean=mean, stddev=stddev, replicates=replicates,
                      drop_rate=drop, **quantiles)


def figure(series=None, manifest=None, figure_id="t"):
    if series is None:
        series = [FigureSeries("IPP", [10.0, 100.0],
                               [point(5.0, 0.5, 3), point(50.0, 2.0, 3)])]
    return FigureResult(figure_id=figure_id, title="t", x_label="x",
                        y_label="y", series=series, manifest=manifest)


class TestStudentTSF:
    def test_matches_critical_values(self):
        # Classic t-table entries: one-sided tails at df=10.
        assert student_t_sf(1.812, 10) == pytest.approx(0.05, abs=5e-4)
        assert student_t_sf(2.228, 10) == pytest.approx(0.025, abs=5e-4)
        assert student_t_sf(2.764, 10) == pytest.approx(0.01, abs=5e-4)

    def test_symmetry_and_limits(self):
        assert student_t_sf(0.0, 5) == pytest.approx(0.5)
        assert student_t_sf(-1.0, 5) + student_t_sf(1.0, 5) \
            == pytest.approx(1.0)
        assert student_t_sf(math.inf, 3) == 0.0
        assert student_t_sf(-math.inf, 3) == 1.0

    def test_normal_limit(self):
        # df -> inf approaches the standard normal: z=1.96 ~ 0.025.
        assert student_t_sf(1.959964, 1e7) == pytest.approx(0.025, abs=1e-4)

    def test_monotone_in_t(self):
        tails = [student_t_sf(t, 4) for t in (0.0, 0.5, 1.0, 2.0, 4.0)]
        assert tails == sorted(tails, reverse=True)

    def test_rejects_bad_df(self):
        with pytest.raises(ValueError):
            student_t_sf(1.0, 0)


class TestWelchT:
    def test_known_example(self):
        result = welch_t(10.0, 1.0, 5, 12.0, 1.5, 5)
        assert result is not None
        t, df = result
        assert t == pytest.approx(-2.481, abs=1e-3)
        assert df == pytest.approx(6.97, abs=0.05)

    def test_not_applicable_cases(self):
        assert welch_t(1.0, 0.0, 1, 1.0, 0.0, 1) is None  # single replicate
        assert welch_t(1.0, 0.0, 3, 2.0, 0.0, 3) is None  # zero variance
        assert welch_t(1.0, 0.5, 1, 2.0, 0.5, 3) is None

    def test_one_sided_variance_is_fine(self):
        result = welch_t(1.0, 0.0, 3, 2.0, 0.3, 3)
        assert result is not None
        t, df = result
        assert t < 0
        assert df == pytest.approx(2.0, abs=1e-9)


class TestCompareFigures:
    def test_identical_is_ok(self):
        comparison = compare_figures(figure(), figure())
        assert comparison.verdict == OK
        assert comparison.exit_code == 0
        assert comparison.series[0].points_compared == 2
        assert not comparison.drifts

    def test_mean_drift_beyond_noise(self):
        left = figure([FigureSeries("IPP", [10.0],
                                    [point(100.0, 1.0, 5)])])
        right = figure([FigureSeries("IPP", [10.0],
                                     [point(130.0, 1.0, 5)])])
        comparison = compare_figures(left, right)
        assert comparison.verdict == DRIFT
        assert comparison.exit_code == 1
        [drift] = comparison.drifts
        assert drift.metric == "mean"
        assert drift.method == "welch"
        assert drift.p_value < 0.01
        assert drift.delta == pytest.approx(30.0)

    def test_mean_shift_within_noise_is_ok(self):
        left = figure([FigureSeries("IPP", [10.0],
                                    [point(100.0, 10.0, 3)])])
        right = figure([FigureSeries("IPP", [10.0],
                                     [point(102.0, 10.0, 3)])])
        assert compare_figures(left, right).verdict == OK

    def test_zero_stddev_falls_back_to_tolerance(self):
        left = figure([FigureSeries("IPP", [10.0],
                                    [point(100.0, 0.0, 3)])])
        right = figure([FigureSeries("IPP", [10.0],
                                     [point(100.0 + 1e-9, 0.0, 3)])])
        assert compare_figures(left, right).verdict == OK
        drifted = figure([FigureSeries("IPP", [10.0],
                                       [point(101.0, 0.0, 3)])])
        comparison = compare_figures(left, drifted)
        assert comparison.verdict == DRIFT
        assert comparison.drifts[0].method == "tolerance"

    def test_v1_archive_fallback(self):
        """v1 archives (no stddev/replicates) compare via tolerance."""
        v1 = {
            "figure": "3a", "title": "legacy", "x_label": "x",
            "y_label": "y",
            "series": [{"label": "Pull", "x": [1.0, 2.0], "y": [3.0, 4.0],
                        "drop_rate": [0.0, 0.0]}],
        }
        same = compare_figures(figure_from_dict(v1), figure_from_dict(v1))
        assert same.verdict == OK
        drifted = copy.deepcopy(v1)
        drifted["series"][0]["y"][1] = 4.5
        comparison = compare_figures(figure_from_dict(v1),
                                     figure_from_dict(drifted))
        assert comparison.verdict == DRIFT
        assert all(d.method == "tolerance" for d in comparison.drifts)

    def test_missing_series_is_structural(self):
        two = figure([
            FigureSeries("A", [1.0], [point(1.0)]),
            FigureSeries("B", [1.0], [point(2.0)]),
        ])
        one = figure([FigureSeries("A", [1.0], [point(1.0)])])
        comparison = compare_figures(two, one, left="L", right="R")
        assert comparison.verdict == STRUCTURAL
        assert comparison.exit_code == 2
        assert any("'B' missing from R" in issue
                   for issue in comparison.issues)
        # The shared series is still compared.
        assert comparison.series[0].label == "A"

    def test_misaligned_x_grid_is_structural(self):
        left = figure([FigureSeries("A", [1.0, 2.0],
                                    [point(1.0), point(2.0)])])
        right = figure([FigureSeries("A", [1.0, 3.0],
                                     [point(1.0), point(2.0)])])
        comparison = compare_figures(left, right)
        assert comparison.verdict == STRUCTURAL
        [series] = comparison.series
        assert series.verdict == STRUCTURAL
        assert series.points_compared == 1  # x=1.0 still compared
        assert any("only in left" in issue for issue in series.issues)
        assert any("only in right" in issue for issue in series.issues)

    def test_figure_id_mismatch_is_structural(self):
        comparison = compare_figures(figure(figure_id="3a"),
                                     figure(figure_id="3b"))
        assert comparison.verdict == STRUCTURAL
        assert any("figure id mismatch" in issue
                   for issue in comparison.issues)

    def test_drop_rate_and_quantile_drift(self):
        left = figure([FigureSeries("A", [1.0],
                                    [point(1.0, drop=0.10, p50=5.0,
                                           p90=9.0, p99=20.0)])])
        right = figure([FigureSeries("A", [1.0],
                                     [point(1.0, drop=0.25, p50=5.0,
                                            p90=14.0, p99=20.0)])])
        comparison = compare_figures(left, right)
        assert comparison.verdict == DRIFT
        assert {d.metric for d in comparison.drifts} == {"drop_rate", "p90"}

    def test_quantiles_on_one_side_only_are_skipped(self):
        with_q = figure([FigureSeries("A", [1.0],
                                      [point(1.0, p50=5.0, p90=9.0,
                                             p99=20.0)])])
        without = figure([FigureSeries("A", [1.0], [point(1.0)])])
        comparison = compare_figures(with_q, without)
        assert comparison.verdict == OK
        assert comparison.series[0].skipped

    def test_series_filter(self):
        two = figure([
            FigureSeries("A", [1.0], [point(1.0)]),
            FigureSeries("B", [1.0], [point(2.0)]),
        ])
        other = figure([
            FigureSeries("A", [1.0], [point(1.0)]),
            FigureSeries("B", [1.0], [point(99.0)]),
        ])
        comparison = compare_figures(two, other, series=["A"])
        assert comparison.verdict == OK
        assert [s.label for s in comparison.series] == ["A"]
        missing = compare_figures(two, other, series=["nope"])
        assert missing.verdict == STRUCTURAL

    def test_manifest_deltas_reported_not_fatal(self):
        left = figure(manifest={"package_version": "1.0.0",
                                "created_utc": "2026-01-01T00:00:00",
                                "config": {"base_seed": 42}})
        right = figure(manifest={"package_version": "1.1.0",
                                 "created_utc": "2026-02-02T00:00:00",
                                 "config": {"base_seed": 43}})
        comparison = compare_figures(left, right)
        assert comparison.verdict == OK
        assert comparison.manifest_diff == {
            "package_version": ("1.0.0", "1.1.0"),
            "config.base_seed": (42, 43),
        }

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            compare_figures(figure(), figure(), alpha=0.0)
        with pytest.raises(ValueError):
            compare_figures(figure(), figure(), tolerance=-1.0)

    def test_to_dict_is_json_ready(self):
        left = figure([FigureSeries("A", [1.0], [point(1.0, 1.0, 3)])])
        right = figure([FigureSeries("A", [1.0], [point(9.0, 1.0, 3)])])
        comparison = compare_figures(left, right)
        data = json.loads(json.dumps(comparison.to_dict()))
        assert data["verdict"] == DRIFT
        assert data["exit_code"] == 1
        assert data["series"][0]["drifts"][0]["metric"] == "mean"


class TestCompareFiles:
    def test_self_compare(self, tmp_path):
        path = tmp_path / "a.json"
        path.write_text(json.dumps(figure().to_dict()))
        comparison = compare_files(path, path)
        assert comparison.exit_code == 0
        assert comparison.left == str(path)

    def test_bad_json_names_the_path(self, tmp_path):
        good = tmp_path / "a.json"
        good.write_text(json.dumps(figure().to_dict()))
        bad = tmp_path / "b.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="b.json"):
            compare_files(good, bad)

    def test_truncated_series_names_series_and_field(self, tmp_path):
        good = tmp_path / "a.json"
        good.write_text(json.dumps(figure().to_dict()))
        data = figure().to_dict()
        data["series"][0]["y"] = data["series"][0]["y"][:1]
        bad = tmp_path / "b.json"
        bad.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="'IPP'.*'y'"):
            compare_files(good, bad)


class TestRenderCompare:
    def test_report_sections(self):
        left = figure([FigureSeries("A", [1.0], [point(1.0, 1.0, 3)])],
                      manifest={"package_version": "1.0.0"})
        right = figure([FigureSeries("A", [1.0], [point(9.0, 1.0, 3)])],
                       manifest={"package_version": "1.1.0"})
        text = render_compare(compare_figures(left, right))
        assert "verdict: DRIFT" in text
        assert "manifest deltas" in text
        assert "package_version" in text
        assert "p=" in text  # Welch evidence column

    def test_structural_report(self):
        two = figure([
            FigureSeries("A", [1.0], [point(1.0)]),
            FigureSeries("B", [1.0], [point(2.0)]),
        ])
        one = figure([FigureSeries("A", [1.0], [point(1.0)])])
        text = render_compare(compare_figures(two, one))
        assert "verdict: STRUCTURAL" in text
        assert "structural:" in text


# Property: a figure survives to_dict -> JSON -> figure_from_dict with no
# detectable drift against itself (the compare harness's fixed point).
finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
positive = st.floats(min_value=0.0, max_value=1e3, allow_nan=False)


@st.composite
def figures(draw):
    n_series = draw(st.integers(min_value=1, max_value=3))
    n_points = draw(st.integers(min_value=1, max_value=4))
    xs = sorted(draw(st.lists(
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        min_size=n_points, max_size=n_points, unique=True)))
    with_quantiles = draw(st.booleans())
    series = []
    for index in range(n_series):
        points = []
        for _ in range(n_points):
            quantiles = {}
            if with_quantiles:
                base = draw(positive)
                quantiles = {"p50": base, "p90": base * 2, "p99": base * 4}
            points.append(PointStats(
                mean=draw(finite), stddev=draw(positive),
                replicates=draw(st.integers(min_value=0, max_value=5)),
                drop_rate=draw(st.floats(min_value=0.0, max_value=1.0)),
                **quantiles))
        series.append(FigureSeries(f"s{index}", list(xs), points))
    return FigureResult(figure_id="prop", title="t", x_label="x",
                        y_label="y", series=series)


class TestRoundTripProperty:
    @settings(max_examples=50, deadline=None)
    @given(figures())
    def test_round_trip_self_compare_is_clean(self, original):
        loaded = figure_from_dict(json.loads(json.dumps(original.to_dict())))
        comparison = compare_figures(original, loaded)
        assert comparison.verdict == OK
        assert comparison.exit_code == 0
        assert not comparison.manifest_diff
