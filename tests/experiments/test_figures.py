"""Smoke tests for the figure generators (miniature grids).

These verify the *wiring* of each experiment — series labels, sweep axes,
parameter plumbing — on tiny load grids.  The paper-shape assertions live
in tests/integration/test_paper_claims.py; full grids run in benchmarks/.
"""

import pytest

from repro.experiments import (
    figure_3a,
    figure_3b,
    figure_4,
    figure_5,
    figure_6,
    figure_7,
    figure_8,
)
from repro.experiments.base import Profile

TINY = Profile(settle_accesses=30, measure_accesses=60, replicates=1,
               base_seed=5)


class TestFigure3:
    def test_3a_series(self):
        figure = figure_3a(TINY, ttrs=(5, 10))
        labels = [s.label for s in figure.series]
        assert labels == ["Push", "Pull 0%", "IPP 0%", "Pull 95%",
                          "IPP 95%"]
        assert all(s.x == [5, 10] for s in figure.series)
        assert figure.figure_id == "3a"

    def test_3a_push_is_flat(self):
        figure = figure_3a(TINY, ttrs=(5, 10))
        push = figure.series_by_label("Push")
        assert push.y[0] == push.y[1]

    def test_3b_series(self):
        figure = figure_3b(TINY, ttrs=(5,))
        labels = [s.label for s in figure.series]
        assert labels == ["Push", "Pull", "IPP PullBW 50%",
                          "IPP PullBW 30%", "IPP PullBW 10%"]


class TestFigure4:
    def test_warmup_series_monotone(self):
        figure = figure_4(TINY, think_time_ratio=5)
        assert figure.figure_id == "4 (TTR=5)"
        for series in figure.series:
            assert series.x  # crossed at least one level
            assert series.points == sorted(series.points,
                                           key=lambda p: p.mean)

    def test_x_axis_is_percentages(self):
        figure = figure_4(TINY, think_time_ratio=5)
        for series in figure.series:
            assert all(10.0 <= x <= 95.0 for x in series.x)


class TestFigure5:
    def test_pull_variant_labels(self):
        figure = figure_5(TINY, variant="pull", ttrs=(5,))
        labels = [s.label for s in figure.series]
        assert "Push Noise 0%" in labels
        assert "Pull Noise 35%" in labels
        assert figure.figure_id == "5a"

    def test_ipp_variant_labels(self):
        figure = figure_5(TINY, variant="ipp", ttrs=(5,))
        assert any("IPP Noise" in s.label for s in figure.series)
        assert figure.figure_id == "5b"

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            figure_5(TINY, variant="bogus")


class TestFigure6:
    def test_series_and_id(self):
        figure = figure_6(TINY, pull_bw=0.5, ttrs=(5,))
        labels = [s.label for s in figure.series]
        assert labels[0] == "Push"
        assert "IPP ThresPerc 35%" in labels
        assert "IPP ThresPerc 0%" in labels
        assert figure.figure_id == "6a"
        assert figure_6(TINY, pull_bw=0.3, ttrs=(5,)).figure_id == "6b"


class TestFigure7:
    def test_axes_are_chop_depths(self):
        figure = figure_7(TINY, thresh_perc=0.35, chops=(0, 200),
                          think_time_ratio=5)
        assert figure.figure_id == "7b"
        ipp = figure.series_by_label("IPP PullBW 50%")
        assert ipp.x == [0, 200]

    def test_reference_lines_flat(self):
        figure = figure_7(TINY, thresh_perc=0.0, chops=(0, 200),
                          think_time_ratio=5)
        for label in ("Push", "Pull"):
            series = figure.series_by_label(label)
            assert series.y[0] == series.y[1]


class TestFigure8:
    def test_series(self):
        figure = figure_8(TINY, ttrs=(5,), chops=(0, 200))
        labels = [s.label for s in figure.series]
        assert labels == ["Push", "Pull", "IPP Full DB", "IPP -200"]
