"""Unit tests for sweep infrastructure."""

import math

import pytest

from repro.core.algorithms import Algorithm
from repro.experiments.base import (
    FigureResult,
    FigureSeries,
    PointStats,
    Profile,
    run_replicated,
    run_sweep,
    sweep_series,
)
from tests.conftest import small_config

TINY = Profile(settle_accesses=20, measure_accesses=60, replicates=2,
               base_seed=3)


class TestProfile:
    def test_apply_stamps_run_settings(self):
        config = TINY.apply(small_config(), seed=9)
        assert config.run.settle_accesses == 20
        assert config.run.measure_accesses == 60
        assert config.run.seed == 9

    def test_builtin_profiles_match_methodology(self):
        """FULL mirrors Section 4's methodology (4000 settle accesses);
        QUICK is a strictly smaller shape-check."""
        from repro.experiments.base import FULL, QUICK

        assert FULL.settle_accesses == 4000
        assert FULL.measure_accesses == 5000
        assert FULL.replicates >= 2
        assert QUICK.settle_accesses < FULL.settle_accesses
        assert QUICK.measure_accesses < FULL.measure_accesses


class TestRunSweep:
    def test_sequential_runs_all(self):
        configs = [TINY.apply(small_config(), seed=s) for s in (1, 2)]
        results = run_sweep(configs)
        assert len(results) == 2
        assert {r.seed for r in results} == {1, 2}

    def test_warmup_mode(self):
        configs = [TINY.apply(small_config(), seed=1)]
        results = run_sweep(configs, warmup=True)
        assert results[0].warmup_times

    def test_process_pool_matches_sequential(self):
        configs = [TINY.apply(small_config(), seed=s) for s in (1, 2)]
        sequential = run_sweep(configs)
        pooled = run_sweep(configs, workers=2)
        assert sequential == pooled


class TestPointStats:
    def test_empty_results_raise_value_error(self):
        """Regression: StatisticsError leaked from statistics.fmean."""
        with pytest.raises(ValueError, match="empty results"):
            PointStats.of([], metric=lambda r: 0.0)


class TestRunReplicated:
    def test_aggregates_replicates(self):
        stats = run_replicated(small_config(), TINY)
        assert stats.replicates == 2
        assert not math.isnan(stats.mean)
        assert stats.stddev >= 0.0
        assert len(stats.results) == 2

    def test_custom_metric(self):
        stats = run_replicated(small_config(), TINY,
                               metric=lambda r: float(r.mc_hits))
        assert stats.mean >= 0

    def test_replicates_use_distinct_seeds(self):
        stats = run_replicated(small_config(Algorithm.PURE_PULL), TINY)
        seeds = {r.seed for r in stats.results}
        assert seeds == {3, 4}

    def test_nan_metric_rejected_and_named(self):
        """Regression: the guard only inspected the mean; it now names
        every NaN aggregate (stddev goes NaN alongside the mean here)."""
        with pytest.raises(RuntimeError, match="NaN mean"):
            run_replicated(small_config(), TINY, metric=lambda r: math.nan)


class TestSweepSeries:
    def test_series_shape(self):
        configs = [small_config(client__think_time_ratio=ttr)
                   for ttr in (2, 5)]
        series = sweep_series("ipp", configs, [2, 5], TINY)
        assert series.label == "ipp"
        assert series.x == [2, 5]
        assert len(series.points) == 2
        assert len(series.y) == 2

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            sweep_series("x", [small_config()], [1, 2], TINY)

    def test_nan_points_no_longer_flow_into_series(self):
        """Regression: sweep_series had no NaN guard at all — NaN points
        flowed silently into saved figures."""
        with pytest.raises(RuntimeError, match="produced NaN"):
            sweep_series("x", [small_config()], [1], TINY,
                         metric=lambda r: math.nan)


class TestFigureResult:
    def make(self):
        point = PointStats(mean=1.0, stddev=0.0, replicates=1,
                           drop_rate=0.25)
        return FigureResult(
            figure_id="3a", title="t", x_label="x", y_label="y",
            series=[FigureSeries("Push", [1, 2], [point, point])])

    def test_series_by_label(self):
        figure = self.make()
        assert figure.series_by_label("Push").label == "Push"
        with pytest.raises(KeyError):
            figure.series_by_label("nope")

    def test_to_dict(self):
        data = self.make().to_dict()
        assert data["figure"] == "3a"
        assert data["series"][0]["y"] == [1.0, 1.0]
        assert data["series"][0]["drop_rate"] == [0.25, 0.25]


class _Recorder:
    """Minimal SweepProgress implementation for assertions."""

    def __init__(self):
        self.started = []
        self.done = []

    def sweep_started(self, total, label):
        self.started.append((total, label))

    def replicate_done(self, index, result):
        self.done.append((index, result.seed))


class TestRunSweepStreaming:
    def test_pooled_results_keep_submission_order(self):
        # Seeds double as identity: completion order under the pool is
        # arbitrary, the returned list must not be.
        seeds = [5, 1, 4, 2, 3]
        configs = [TINY.apply(small_config(), seed=s) for s in seeds]
        results = run_sweep(configs, workers=3)
        assert [r.seed for r in results] == seeds

    def test_failing_replicate_raises_not_hangs(self):
        from repro.core.fast import SimulationStall

        # max_slots=50 cannot fit settle+measure: the replicate stalls.
        bad = TINY.apply(small_config(), seed=1).with_(run__max_slots=50)
        good = TINY.apply(small_config(), seed=2)
        with pytest.raises(SimulationStall):
            run_sweep([good, bad, good], workers=2)

    def test_progress_observer_sequential(self):
        recorder = _Recorder()
        configs = [TINY.apply(small_config(), seed=s) for s in (1, 2)]
        run_sweep(configs, progress=recorder, label="curve")
        assert recorder.started == [(2, "curve")]
        assert recorder.done == [(0, 1), (1, 2)]

    def test_progress_observer_pooled_sees_every_replicate(self):
        recorder = _Recorder()
        seeds = [1, 2, 3, 4]
        configs = [TINY.apply(small_config(), seed=s) for s in seeds]
        run_sweep(configs, workers=2, progress=recorder)
        assert recorder.started == [(4, None)]
        # Completion order is arbitrary; coverage must be exact.
        assert sorted(recorder.done) == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_ambient_observer_applies_to_nested_sweeps(self):
        from repro.experiments.base import sweep_progress

        recorder = _Recorder()
        config = small_config()
        with sweep_progress(recorder):
            sweep_series("IPP", [config], [1.0], TINY)
        assert recorder.started == [(TINY.replicates, "IPP")]
        assert len(recorder.done) == TINY.replicates

    def test_explicit_observer_shadows_the_ambient_one(self):
        from repro.experiments.base import sweep_progress

        ambient, explicit = _Recorder(), _Recorder()
        configs = [TINY.apply(small_config(), seed=1)]
        with sweep_progress(ambient):
            run_sweep(configs, progress=explicit)
        assert not ambient.started and explicit.started == [(1, None)]
