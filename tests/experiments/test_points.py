"""Guard: the representative-points table tracks the figure registry."""

import pytest

from repro.experiments import ALL_FIGURES, REPRESENTATIVE_POINTS
from repro.experiments.points import representative_config


def test_every_figure_has_a_representative_point():
    missing = sorted(set(ALL_FIGURES) - set(REPRESENTATIVE_POINTS))
    assert not missing, (
        f"figures without a representative point: {missing} — add entries "
        "to repro.experiments.points.REPRESENTATIVE_POINTS so trace/profile "
        "can resolve them")


def test_no_stale_representative_points():
    stale = sorted(set(REPRESENTATIVE_POINTS) - set(ALL_FIGURES))
    assert not stale, (
        f"representative points for unknown figures: {stale} — remove them "
        "or register the figure in repro.experiments.ALL_FIGURES")


def test_representative_configs_are_runnable():
    # Cheap structural check: every point is a complete SystemConfig whose
    # algorithm/figure pairing makes sense for tracing.
    for fig_id, config in REPRESENTATIVE_POINTS.items():
        assert config.client.cache_size > 0, fig_id
        assert config.run.seed is not None, fig_id


def test_representative_config_raises_on_unknown_id():
    with pytest.raises(KeyError):
        representative_config("99z")
