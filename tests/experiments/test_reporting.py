"""Unit tests for figure rendering."""

import math

import pytest

from repro.experiments.base import FigureResult, FigureSeries, PointStats
from repro.experiments.reporting import (
    format_table,
    render_ascii_chart,
    render_figure,
)


def point(mean, drop=0.0):
    return PointStats(mean=mean, stddev=0.0, replicates=1, drop_rate=drop)


def figure():
    return FigureResult(
        figure_id="3a", title="Steady state", x_label="TTR",
        y_label="Response Time",
        series=[
            FigureSeries("Push", [10, 250], [point(278.0), point(278.0)]),
            FigureSeries("Pull", [10, 250], [point(2.0), point(700.0, 0.6)]),
        ],
        notes=["scaled profile"],
    )


class TestFormatTable:
    def test_alignment_and_headers(self):
        table = format_table(["a", "b"], [[1, 22.5], [333, 4.0]])
        lines = table.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_nan_rendered_as_dash(self):
        table = format_table(["v"], [[math.nan]])
        assert "-" in table.splitlines()[-1]

    def test_empty_rows(self):
        table = format_table(["x", "y"], [])
        assert "x" in table and "y" in table

    def test_large_numbers_get_thousands_separator(self):
        table = format_table(["v"], [[1234.5]])
        assert "1,234.5" in table


class TestRenderFigure:
    def test_contains_title_series_and_values(self):
        text = render_figure(figure())
        assert "Figure 3a" in text
        assert "Push" in text and "Pull" in text
        assert "278.0" in text
        assert "700.0" in text
        assert "note: scaled profile" in text

    def test_drop_rates_optional(self):
        without = render_figure(figure())
        with_rates = render_figure(figure(), show_drop_rates=True)
        assert "drop rates" not in without.lower()
        assert "drop rates" in with_rates.lower()
        assert "60.0" in with_rates  # 0.6 -> percent


class TestRenderAsciiChart:
    def test_contains_marks_axis_and_legend(self):
        chart = render_ascii_chart(figure())
        assert "*" in chart and "o" in chart
        assert "legend: *=Push  o=Pull" in chart
        assert "+-" in chart  # the x axis

    def test_y_scale_reports_max(self):
        chart = render_ascii_chart(figure())
        assert "y max 700" in chart

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            render_ascii_chart(figure(), width=4)
        with pytest.raises(ValueError):
            render_ascii_chart(figure(), height=2)

    def test_empty_figure(self):
        empty = FigureResult(figure_id="x", title="t", x_label="x",
                             y_label="y", series=[])
        assert render_ascii_chart(empty) == "(empty figure)"

    def test_flat_series_sits_on_one_row(self):
        chart = render_ascii_chart(figure(), width=40, height=10)
        rows_with_star = [line for line in chart.splitlines()
                          if "*" in line and "=" not in line]
        assert len(rows_with_star) == 1

    def test_x_ticks_rendered(self):
        chart = render_ascii_chart(figure())
        assert "10" in chart and "250" in chart
