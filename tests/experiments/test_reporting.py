"""Unit tests for figure rendering."""

import math

import pytest

from repro.experiments.base import FigureResult, FigureSeries, PointStats
from repro.experiments.reporting import (
    format_table,
    render_ascii_chart,
    render_figure,
)


def point(mean, drop=0.0):
    return PointStats(mean=mean, stddev=0.0, replicates=1, drop_rate=drop)


def figure():
    return FigureResult(
        figure_id="3a", title="Steady state", x_label="TTR",
        y_label="Response Time",
        series=[
            FigureSeries("Push", [10, 250], [point(278.0), point(278.0)]),
            FigureSeries("Pull", [10, 250], [point(2.0), point(700.0, 0.6)]),
        ],
        notes=["scaled profile"],
    )


class TestFormatTable:
    def test_alignment_and_headers(self):
        table = format_table(["a", "b"], [[1, 22.5], [333, 4.0]])
        lines = table.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_nan_rendered_as_dash(self):
        table = format_table(["v"], [[math.nan]])
        assert "-" in table.splitlines()[-1]

    def test_empty_rows(self):
        table = format_table(["x", "y"], [])
        assert "x" in table and "y" in table

    def test_large_numbers_get_thousands_separator(self):
        table = format_table(["v"], [[1234.5]])
        assert "1,234.5" in table


class TestRenderFigure:
    def test_contains_title_series_and_values(self):
        text = render_figure(figure())
        assert "Figure 3a" in text
        assert "Push" in text and "Pull" in text
        assert "278.0" in text
        assert "700.0" in text
        assert "note: scaled profile" in text

    def test_drop_rates_optional(self):
        without = render_figure(figure())
        with_rates = render_figure(figure(), show_drop_rates=True)
        assert "drop rates" not in without.lower()
        assert "drop rates" in with_rates.lower()
        assert "60.0" in with_rates  # 0.6 -> percent


class TestRenderFigureAlignment:
    """Regression: every series used to be indexed against series[0].x,
    printing means against the wrong x when grids differed."""

    def mismatched(self):
        return FigureResult(
            figure_id="x", title="t", x_label="TTR", y_label="y",
            series=[
                FigureSeries("A", [10, 250], [point(1.0), point(2.0)]),
                FigureSeries("B", [10, 500], [point(3.0), point(4.0)]),
            ])

    def test_rows_are_the_union_of_grids(self):
        text = render_figure(self.mismatched())
        rows = text.splitlines()
        assert any(line.lstrip().startswith("250") for line in rows)
        assert any(line.lstrip().startswith("500") for line in rows)
        assert "x grids differ" in text

    def test_values_land_on_their_own_x(self):
        lines = render_figure(self.mismatched()).splitlines()
        row_250 = next(line for line in lines
                       if line.lstrip().startswith("250"))
        row_500 = next(line for line in lines
                       if line.lstrip().startswith("500"))
        # B has no point at 250 and A none at 500: dashes, not means.
        assert "2.00" in row_250 and "4.00" not in row_250
        assert "4.00" in row_500 and "2.00" not in row_500

    def test_aligned_grids_stay_unflagged(self):
        assert "x grids differ" not in render_figure(figure())

    def test_drop_rate_table_aligns_too(self):
        text = render_figure(self.mismatched(), show_drop_rates=True)
        assert "drop rates" in text.lower()


class TestRenderAsciiChart:
    def test_contains_marks_axis_and_legend(self):
        chart = render_ascii_chart(figure())
        assert "*" in chart and "o" in chart
        assert "legend: *=Push  o=Pull" in chart
        assert "+-" in chart  # the x axis

    def test_y_scale_reports_max(self):
        chart = render_ascii_chart(figure())
        assert "y max 700" in chart

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            render_ascii_chart(figure(), width=4)
        with pytest.raises(ValueError):
            render_ascii_chart(figure(), height=2)

    def test_empty_figure(self):
        empty = FigureResult(figure_id="x", title="t", x_label="x",
                             y_label="y", series=[])
        assert render_ascii_chart(empty) == "(empty figure)"

    def test_flat_series_sits_on_one_row(self):
        chart = render_ascii_chart(figure(), width=40, height=10)
        rows_with_star = [line for line in chart.splitlines()
                          if "*" in line and "=" not in line]
        assert len(rows_with_star) == 1

    def test_x_ticks_rendered(self):
        chart = render_ascii_chart(figure())
        assert "10" in chart and "250" in chart

    def test_nan_points_do_not_poison_the_y_scale(self):
        """Regression: max() over NaN values produced a NaN y_max and
        crashed the row rounding."""
        poisoned = FigureResult(
            figure_id="x", title="t", x_label="x", y_label="y",
            series=[FigureSeries("A", [10, 250],
                                 [point(math.nan), point(700.0)])])
        chart = render_ascii_chart(poisoned)
        assert "y max 700" in chart

    def test_all_nan_series_still_renders(self):
        poisoned = FigureResult(
            figure_id="x", title="t", x_label="x", y_label="y",
            series=[FigureSeries("A", [10, 250],
                                 [point(math.nan), point(math.nan)])])
        chart = render_ascii_chart(poisoned)
        assert "y max 1" in chart  # the 0-max fallback axis
