"""Figure JSON schema: version-2 round-trips, version-1 stays loadable."""

import json
from pathlib import Path

import pytest

from repro.experiments.base import (
    FIGURE_SCHEMA_VERSION,
    FigureResult,
    FigureSeries,
    PointStats,
    figure_from_dict,
    load_figure,
)

RESULTS_DIR = Path(__file__).resolve().parents[2] / "results"


def _figure(with_quantiles: bool = True, manifest=None) -> FigureResult:
    def point(mean: float) -> PointStats:
        quantiles = ({"p50": mean, "p90": mean * 2, "p99": mean * 4}
                     if with_quantiles else {})
        return PointStats(mean=mean, stddev=0.5, replicates=3,
                          drop_rate=0.01, **quantiles)

    series = FigureSeries(label="IPP", x=[10.0, 100.0],
                          points=[point(5.0), point(50.0)])
    return FigureResult(figure_id="test", title="A test figure",
                        x_label="ThinkTime", y_label="Response",
                        series=[series], notes=["note"], manifest=manifest)


class TestSchemaV2:
    def test_to_dict_carries_version(self):
        data = _figure().to_dict()
        assert data["schema_version"] == FIGURE_SCHEMA_VERSION == 2

    def test_round_trip_preserves_everything(self):
        original = _figure(manifest={"engine": "fast", "seed": 42})
        text = json.dumps(original.to_dict(), allow_nan=False)
        loaded = figure_from_dict(json.loads(text))
        assert loaded.figure_id == original.figure_id
        assert loaded.notes == original.notes
        assert loaded.manifest == {"engine": "fast", "seed": 42}
        [series] = loaded.series
        assert series.x == [10.0, 100.0]
        assert series.y == [5.0, 50.0]
        assert [p.stddev for p in series.points] == [0.5, 0.5]
        assert [p.replicates for p in series.points] == [3, 3]
        assert [p.p99 for p in series.points] == [20.0, 200.0]
        # Raw RunResults are never serialized.
        assert all(p.results == () for p in series.points)

    def test_quantile_arrays_omitted_when_absent(self):
        data = _figure(with_quantiles=False).to_dict()
        [series] = data["series"]
        assert "p50" not in series and "p99" not in series
        loaded = figure_from_dict(data)
        assert all(p.p50 is None for p in loaded.series[0].points)

    def test_save_load_round_trip_on_disk(self, tmp_path):
        path = tmp_path / "figure_test.json"
        path.write_text(json.dumps(_figure().to_dict()))
        loaded = load_figure(path)
        assert loaded.series[0].points[1].p90 == 100.0


class TestSchemaV1Compat:
    def test_v1_dict_loads_with_defaults(self):
        v1 = {
            "figure": "3a",
            "title": "legacy",
            "x_label": "x",
            "y_label": "y",
            "notes": [],
            "series": [{"label": "Pull", "x": [1.0, 2.0], "y": [3.0, 4.0],
                        "drop_rate": [0.0, 0.0]}],
        }
        loaded = figure_from_dict(v1)
        [series] = loaded.series
        assert series.y == [3.0, 4.0]
        assert all(p.stddev == 0.0 for p in series.points)
        assert all(p.replicates == 0 for p in series.points)
        assert all(p.p50 is None for p in series.points)
        assert loaded.manifest is None

    @pytest.mark.parametrize("name", sorted(
        p.name for p in RESULTS_DIR.glob("figure_*.json")))
    def test_archived_results_still_load(self, name):
        figure = load_figure(RESULTS_DIR / name)
        assert figure.series, name
        for series in figure.series:
            assert len(series.x) == len(series.points) > 0

    def test_unsupported_version_rejected(self):
        data = _figure().to_dict()
        data["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            figure_from_dict(data)


class TestMalformedInputValidation:
    """Regression: truncated/malformed series used to surface as bare
    IndexError/KeyError; every failure now names the series and field."""

    @pytest.mark.parametrize("name", ["y", "drop_rate", "stddev",
                                      "replicates", "p90"])
    def test_truncated_array_names_series_and_field(self, name):
        data = _figure().to_dict()
        data["series"][0][name] = data["series"][0][name][:1]
        with pytest.raises(ValueError, match=f"'IPP'.*{name!r}"):
            figure_from_dict(data)

    def test_overlong_array_rejected_too(self):
        data = _figure().to_dict()
        data["series"][0]["y"] = data["series"][0]["y"] + [1.0]
        with pytest.raises(ValueError, match="expected 2"):
            figure_from_dict(data)

    @pytest.mark.parametrize("name", ["x", "y", "drop_rate"])
    def test_missing_series_field(self, name):
        data = _figure().to_dict()
        del data["series"][0][name]
        with pytest.raises(ValueError, match=f"'IPP'.*{name!r}"):
            figure_from_dict(data)

    def test_missing_label(self):
        data = _figure().to_dict()
        del data["series"][0]["label"]
        with pytest.raises(ValueError, match="label"):
            figure_from_dict(data)

    @pytest.mark.parametrize("name", ["figure", "title", "x_label",
                                      "y_label", "series"])
    def test_missing_top_level_field(self, name):
        data = _figure().to_dict()
        del data[name]
        with pytest.raises(ValueError, match=name):
            figure_from_dict(data)

    def test_non_integer_version_rejected(self):
        data = _figure().to_dict()
        data["schema_version"] = "2"
        with pytest.raises(ValueError, match="schema_version"):
            figure_from_dict(data)
