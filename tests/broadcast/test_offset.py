"""Unit tests for the Offset transform."""

import pytest

from repro.broadcast.offset import apply_offset, offset_page_order


class TestOffsetPageOrder:
    def test_rotates_hottest_to_back(self):
        assert offset_page_order([0, 1, 2, 3, 4], cache_size=2) == \
            [2, 3, 4, 0, 1]

    def test_zero_cache_is_identity(self):
        assert offset_page_order([3, 1, 2], cache_size=0) == [3, 1, 2]

    def test_negative_cache_rejected(self):
        with pytest.raises(ValueError):
            offset_page_order([0, 1], cache_size=-1)

    def test_cache_as_large_as_database_rejected(self):
        with pytest.raises(ValueError):
            offset_page_order([0, 1, 2], cache_size=3)

    def test_input_not_mutated(self):
        ranking = [0, 1, 2, 3]
        offset_page_order(ranking, cache_size=2)
        assert ranking == [0, 1, 2, 3]


class TestApplyOffset:
    def test_paper_shape(self):
        """With Table 3's layout, disk 1 holds ranks 100..199, disk 2 ranks
        200..599, and the slowest disk the coldest 400 plus the 100 hottest."""
        assignment = apply_offset(list(range(1000)), (100, 400, 500),
                                  (3, 2, 1), cache_size=100)
        assert assignment.disks[0].pages == tuple(range(100, 200))
        assert assignment.disks[1].pages == tuple(range(200, 600))
        assert assignment.disks[2].pages == (
            tuple(range(600, 1000)) + tuple(range(100)))

    def test_hottest_pages_land_on_slowest_disk(self):
        assignment = apply_offset(list(range(20)), (4, 6, 10), (3, 2, 1),
                                  cache_size=5)
        slowest = set(assignment.slowest.pages)
        assert set(range(5)) <= slowest

    def test_cache_too_big_for_slowest_disk_rejected(self):
        with pytest.raises(ValueError, match="slowest disk"):
            apply_offset(list(range(20)), (10, 6, 4), (3, 2, 1),
                         cache_size=5)

    def test_disk_sizes_preserved(self):
        assignment = apply_offset(list(range(20)), (4, 6, 10), (3, 2, 1),
                                  cache_size=5)
        assert [d.size for d in assignment.disks] == [4, 6, 10]
