"""Property-based tests of schedule generation over random disk layouts."""

import math

from hypothesis import given, settings, strategies as st

from repro.broadcast.program import Disk, DiskAssignment, build_schedule


@st.composite
def assignments(draw):
    """Random valid disk assignments (2-4 disks, descending frequencies)."""
    num_disks = draw(st.integers(min_value=1, max_value=4))
    freqs = sorted(
        draw(st.lists(st.integers(min_value=1, max_value=6),
                      min_size=num_disks, max_size=num_disks)),
        reverse=True)
    sizes = draw(st.lists(st.integers(min_value=1, max_value=12),
                          min_size=num_disks, max_size=num_disks))
    disks = []
    next_page = 0
    for size, freq in zip(sizes, freqs):
        disks.append(Disk(tuple(range(next_page, next_page + size)), freq))
        next_page += size
    return DiskAssignment(tuple(disks))


@settings(max_examples=80)
@given(assignments())
def test_every_page_broadcast_proportionally(assignment):
    """Page frequency in the cycle is exactly the disk's relative speed
    times the number of minor-cycle groups its chunk participates in —
    i.e. freq(page on disk i) == rel_freq_i."""
    schedule = build_schedule(assignment)
    for disk in assignment.disks:
        for page in disk.pages:
            assert schedule.frequency(page) == disk.rel_freq


@settings(max_examples=80)
@given(assignments())
def test_cycle_is_lcm_structured(assignment):
    schedule = build_schedule(assignment)
    lcm = 1
    for disk in assignment.disks:
        lcm = math.lcm(lcm, disk.rel_freq)
    # Minor cycle divides the major cycle exactly lcm times.
    assert schedule.minor_cycle is not None
    assert len(schedule) == schedule.minor_cycle * lcm
    # Broadcast slots + padding fully account for the cycle.
    page_slots = sum(disk.size * disk.rel_freq for disk in assignment.disks)
    assert len(schedule) == page_slots + schedule.num_empty_slots


@settings(max_examples=50)
@given(assignments())
def test_equal_spacing_for_exactly_divisible_disks(assignment):
    """A page's broadcasts are spread across minor cycles: consecutive
    appearances are never bunched inside one minor cycle."""
    schedule = build_schedule(assignment)
    minor = schedule.minor_cycle
    for disk in assignment.disks:
        for page in disk.pages:
            if disk.rel_freq == 1:
                continue
            gaps = schedule.spacings(page)
            assert all(gap >= minor for gap in gaps) or len(gaps) == 1


@settings(max_examples=60)
@given(assignments(), st.integers(min_value=0, max_value=200))
def test_distance_consistent_with_slots(assignment, slot):
    schedule = build_schedule(assignment)
    slot %= len(schedule)
    for disk in assignment.disks:
        page = disk.pages[0]
        distance = schedule.distance(page, slot)
        assert schedule.page_at(slot + distance) == page
        # No earlier appearance.
        for d in range(distance):
            assert schedule.page_at(slot + d) != page
