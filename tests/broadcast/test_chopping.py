"""Unit tests for restricted (chopped) push schedules."""

import pytest

from repro.broadcast.chopping import chop_assignment
from repro.broadcast.offset import apply_offset
from repro.broadcast.program import DiskAssignment


def probabilities(n=20):
    """Descending probabilities: page id == hotness rank."""
    weights = [1.0 / (i + 1) for i in range(n)]
    total = sum(weights)
    return [w / total for w in weights]


def assignment():
    return DiskAssignment.from_ranking(
        list(range(20)), (4, 6, 10), (3, 2, 1))


class TestChopAssignment:
    def test_zero_chop_returns_same_assignment(self):
        a = assignment()
        assert chop_assignment(a, 0, probabilities()) is a

    def test_negative_chop_rejected(self):
        with pytest.raises(ValueError):
            chop_assignment(assignment(), -1, probabilities())

    def test_chopping_everything_rejected(self):
        with pytest.raises(ValueError, match="at least one page"):
            chop_assignment(assignment(), 20, probabilities())

    def test_partial_chop_removes_coldest_of_slowest_disk(self):
        chopped = chop_assignment(assignment(), 3, probabilities())
        # Slowest disk held pages 10..19; 17, 18, 19 are coldest.
        assert chopped.disks[2].pages == tuple(range(10, 17))
        assert chopped.disks[0].pages == tuple(range(4))
        assert chopped.disks[1].pages == tuple(range(4, 10))

    def test_chop_entire_slowest_disk(self):
        chopped = chop_assignment(assignment(), 10, probabilities())
        assert chopped.num_disks == 2
        assert [d.size for d in chopped.disks] == [4, 6]
        assert [d.rel_freq for d in chopped.disks] == [3, 2]

    def test_chop_spills_into_intermediate_disk(self):
        chopped = chop_assignment(assignment(), 13, probabilities())
        assert chopped.num_disks == 2
        assert chopped.disks[1].pages == tuple(range(4, 7))

    def test_survivor_order_is_preserved(self):
        chopped = chop_assignment(assignment(), 12, probabilities())
        # Slowest disk gone; 2 coldest of the middle disk (8, 9) gone.
        assert chopped.disks[1].pages == (4, 5, 6, 7)

    def test_offset_pages_are_chopped_last(self):
        """With the offset program, the slowest disk carries the hottest
        pages; a full-disk chop removes them, but a partial chop removes
        the genuinely cold pages first."""
        offset = apply_offset(list(range(20)), (4, 6, 10), (3, 2, 1),
                              cache_size=5)
        # Offset slowest disk: coldest ranks 15..19 then the hottest 0..4.
        assert offset.slowest.pages == (15, 16, 17, 18, 19, 0, 1, 2, 3, 4)
        # Chopping 9 removes 15..19 and then 4, 3, 2, 1 — the very hottest
        # page is the last survivor on the broadcast.
        chopped = chop_assignment(offset, 9, probabilities())
        assert chopped.disks[2].pages == (0,)

    def test_accepts_probability_mapping(self):
        probs = {page: p for page, p in enumerate(probabilities())}
        chopped = chop_assignment(assignment(), 3, probs)
        assert chopped.disks[2].pages == tuple(range(10, 17))
