"""Round-trip tests for broadcast-program serialization."""

import json

import pytest

from repro.broadcast.program import Disk, DiskAssignment, build_schedule
from repro.broadcast.serialization import (
    assignment_from_dict,
    assignment_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)


def fig1_assignment():
    return DiskAssignment((
        Disk((0,), 4), Disk((1, 2), 2), Disk((3, 4, 5, 6), 1)))


class TestAssignmentRoundTrip:
    def test_round_trip_preserves_layout(self):
        original = fig1_assignment()
        clone = assignment_from_dict(assignment_to_dict(original))
        assert clone == original

    def test_json_compatible(self):
        text = json.dumps(assignment_to_dict(fig1_assignment()))
        clone = assignment_from_dict(json.loads(text))
        assert clone.num_pages == 7

    def test_version_checked(self):
        data = assignment_to_dict(fig1_assignment())
        data["version"] = 99
        with pytest.raises(ValueError, match="format version"):
            assignment_from_dict(data)

    def test_invalid_layout_rejected_on_load(self):
        data = assignment_to_dict(fig1_assignment())
        data["disks"][0]["rel_freq"] = 0  # invalid
        with pytest.raises(ValueError):
            assignment_from_dict(data)


class TestScheduleRoundTrip:
    def test_round_trip_is_verbatim(self):
        schedule = build_schedule(fig1_assignment())
        clone = schedule_from_dict(schedule_to_dict(schedule))
        assert clone.slots == schedule.slots
        assert clone.minor_cycle == schedule.minor_cycle
        assert clone.assignment == schedule.assignment

    def test_padding_slots_preserved(self):
        schedule = build_schedule(DiskAssignment((
            Disk((0,), 2), Disk((1, 2, 3), 1))))
        assert schedule.num_empty_slots == 1
        text = json.dumps(schedule_to_dict(schedule))
        clone = schedule_from_dict(json.loads(text))
        assert clone.num_empty_slots == 1
        assert clone.slots == schedule.slots

    def test_queries_survive_round_trip(self):
        schedule = build_schedule(fig1_assignment())
        clone = schedule_from_dict(schedule_to_dict(schedule))
        for page in range(7):
            assert clone.frequency(page) == schedule.frequency(page)
            assert clone.expected_delay(page) == schedule.expected_delay(page)
        for slot in range(len(schedule)):
            assert clone.distance(3, slot) == schedule.distance(3, slot)

    def test_schedule_without_assignment(self):
        from repro.broadcast.schedule import Schedule

        bare = Schedule((0, 1, None))
        clone = schedule_from_dict(schedule_to_dict(bare))
        assert clone.assignment is None
        assert clone.slots == (0, 1, None)

    def test_version_checked(self):
        data = schedule_to_dict(build_schedule(fig1_assignment()))
        del data["version"]
        with pytest.raises(ValueError, match="format version"):
            schedule_from_dict(data)


class TestPropertyRoundTrips:
    def test_random_assignments_round_trip(self):
        from hypothesis import given, settings
        from tests.broadcast.test_program_properties import assignments

        @settings(max_examples=40)
        @given(assignments())
        def check(assignment):
            clone = assignment_from_dict(assignment_to_dict(assignment))
            assert clone == assignment
            schedule = build_schedule(assignment)
            schedule_clone = schedule_from_dict(schedule_to_dict(schedule))
            assert schedule_clone.slots == schedule.slots

        check()
