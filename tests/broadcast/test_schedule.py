"""Unit and property tests for Schedule queries."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.broadcast.program import Disk, DiskAssignment, build_schedule
from repro.broadcast.schedule import NOT_BROADCAST, Schedule


@pytest.fixture
def fig1():
    return build_schedule(DiskAssignment((
        Disk((0,), 4), Disk((1, 2), 2), Disk((3, 4, 5, 6), 1))))


class TestBasics:
    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError):
            Schedule(())

    def test_len_and_major_cycle(self, fig1):
        assert len(fig1) == fig1.major_cycle == 12

    def test_contains(self, fig1):
        assert 0 in fig1
        assert 99 not in fig1

    def test_page_at_wraps(self, fig1):
        assert fig1.page_at(0) == 0
        assert fig1.page_at(12) == 0
        assert fig1.page_at(14) == fig1.page_at(2) == 3

    def test_positions_sorted(self, fig1):
        assert fig1.positions(0) == (0, 3, 6, 9)
        assert fig1.positions(2) == (4, 10)
        assert fig1.positions(42) == ()

    def test_padding_counted(self):
        schedule = Schedule((0, None, 1, None))
        assert schedule.num_empty_slots == 2
        assert schedule.pages == frozenset({0, 1})


class TestDistance:
    def test_distance_zero_at_own_slot(self, fig1):
        assert fig1.distance(0, 0) == 0
        assert fig1.distance(3, 2) == 0

    def test_distance_counts_forward(self, fig1):
        # Page 2 appears at slots 4 and 10.
        assert fig1.distance(2, 0) == 4
        assert fig1.distance(2, 5) == 5
        assert fig1.distance(2, 11) == 5  # wraps to slot 4 next cycle

    def test_distance_wraps_past_cycle_end(self, fig1):
        # Page 3 appears only at slot 2.
        assert fig1.distance(3, 3) == 11

    def test_distance_for_missing_page(self, fig1):
        assert fig1.distance(42, 0) == NOT_BROADCAST

    def test_distance_accepts_unnormalized_slot(self, fig1):
        assert fig1.distance(2, 12) == fig1.distance(2, 0)

    @given(st.integers(min_value=0, max_value=6),
           st.integers(min_value=0, max_value=23))
    def test_distance_matches_linear_scan(self, page, slot):
        schedule = build_schedule(DiskAssignment((
            Disk((0,), 4), Disk((1, 2), 2), Disk((3, 4, 5, 6), 1))))
        expected = next(
            d for d in range(len(schedule))
            if schedule.page_at(slot + d) == page)
        assert schedule.distance(page, slot) == expected


class TestDistanceTable:
    def test_matches_scalar_distance(self, fig1):
        table = fig1.distance_table(8)
        for page in range(8):
            for slot in range(len(fig1)):
                assert table[page, slot] == fig1.distance(page, slot)

    def test_missing_page_is_sentinel(self, fig1):
        table = fig1.distance_table(9)
        assert np.all(table[7] == NOT_BROADCAST)
        assert np.all(table[8] == NOT_BROADCAST)

    def test_cached_and_sliced(self, fig1):
        full = fig1.distance_table(8)
        smaller = fig1.distance_table(3)
        assert smaller.shape == (3, 12)
        assert np.shares_memory(smaller, full)

    def test_cache_grows_when_more_pages_requested(self, fig1):
        small = fig1.distance_table(3)
        bigger = fig1.distance_table(7)
        assert bigger.shape == (7, 12)
        # The regrown table still agrees with the scalar queries.
        for page in range(7):
            for slot in (0, 5, 11):
                assert bigger[page, slot] == fig1.distance(page, slot)
        assert np.array_equal(small, bigger[:3])

    def test_table_with_padding_slots(self):
        schedule = Schedule((0, None, 1, None))
        table = schedule.distance_table(2)
        assert table[0, 0] == 0
        assert table[0, 1] == 3
        assert table[1, 3] == 3
        assert table[1, 1] == 1


class TestSpacingsAndDelay:
    def test_spacings_sum_to_cycle(self, fig1):
        for page in range(7):
            assert sum(fig1.spacings(page)) == len(fig1)

    def test_spacings_for_missing_page(self, fig1):
        assert fig1.spacings(42) == ()

    def test_evenly_spaced_page(self, fig1):
        assert fig1.spacings(0) == (3, 3, 3, 3)

    def test_expected_delay_even_spacing(self, fig1):
        # Page 0 every 3 slots: gaps of 3, E[wait] = (3+1)/2 = 2.
        assert fig1.expected_delay(0) == pytest.approx(2.0)

    def test_expected_delay_single_broadcast(self, fig1):
        # Page 3 once per 12 slots: E[wait] = (12+1)/2.
        assert fig1.expected_delay(3) == pytest.approx(6.5)

    def test_expected_delay_missing_page(self, fig1):
        assert math.isinf(fig1.expected_delay(42))

    @settings(max_examples=25)
    @given(st.lists(st.integers(min_value=0, max_value=4), min_size=2,
                    max_size=30))
    def test_expected_delay_equals_empirical_mean(self, slots):
        schedule = Schedule(tuple(slots))
        for page in schedule.pages:
            # A request at slot boundary s completes distance+1 slots later;
            # expected_delay is exactly the mean of that over the cycle.
            empirical = sum(
                schedule.distance(page, s) + 1 for s in range(len(schedule))
            ) / len(schedule)
            assert schedule.expected_delay(page) == pytest.approx(empirical)
