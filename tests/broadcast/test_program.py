"""Unit tests for disks, assignments, and schedule generation."""

import pytest

from repro.broadcast.program import Disk, DiskAssignment, build_schedule


def three_disk_assignment():
    """The paper's Figure 1: pages a..g mapped to ids 0..6."""
    return DiskAssignment((
        Disk((0,), rel_freq=4),
        Disk((1, 2), rel_freq=2),
        Disk((3, 4, 5, 6), rel_freq=1),
    ))


class TestDisk:
    def test_size(self):
        assert Disk((1, 2, 3), rel_freq=2).size == 3

    def test_rel_freq_must_be_positive_int(self):
        with pytest.raises(ValueError):
            Disk((1,), rel_freq=0)
        with pytest.raises(ValueError):
            Disk((1,), rel_freq=1.5)

    def test_pages_are_immutable_tuple(self):
        disk = Disk([5, 6], rel_freq=1)
        assert disk.pages == (5, 6)
        assert isinstance(disk.pages, tuple)


class TestDiskAssignment:
    def test_requires_at_least_one_disk(self):
        with pytest.raises(ValueError):
            DiskAssignment(())

    def test_rejects_empty_disk(self):
        with pytest.raises(ValueError):
            DiskAssignment((Disk((), rel_freq=1),))

    def test_rejects_increasing_frequencies(self):
        with pytest.raises(ValueError, match="fastest-first"):
            DiskAssignment((Disk((0,), 1), Disk((1,), 2)))

    def test_equal_frequencies_allowed(self):
        assignment = DiskAssignment((Disk((0,), 2), Disk((1,), 2)))
        assert assignment.num_disks == 2

    def test_rejects_duplicate_pages(self):
        with pytest.raises(ValueError, match="multiple disks"):
            DiskAssignment((Disk((0, 1), 2), Disk((1, 2), 1)))

    def test_counts_and_pages(self):
        assignment = three_disk_assignment()
        assert assignment.num_disks == 3
        assert assignment.num_pages == 7
        assert assignment.pages == (0, 1, 2, 3, 4, 5, 6)
        assert assignment.slowest.rel_freq == 1

    def test_disk_of(self):
        assignment = three_disk_assignment()
        assert assignment.disk_of(0) == 0
        assert assignment.disk_of(2) == 1
        assert assignment.disk_of(6) == 2
        with pytest.raises(KeyError):
            assignment.disk_of(99)

    def test_from_ranking_slices_hottest_first(self):
        assignment = DiskAssignment.from_ranking(
            [9, 8, 7, 6, 5], disk_sizes=(2, 3), rel_freqs=(2, 1))
        assert assignment.disks[0].pages == (9, 8)
        assert assignment.disks[1].pages == (7, 6, 5)

    def test_from_ranking_validates_sizes(self):
        with pytest.raises(ValueError):
            DiskAssignment.from_ranking([1, 2, 3], (2, 2), (2, 1))
        with pytest.raises(ValueError):
            DiskAssignment.from_ranking([1, 2, 3], (1, 2), (2,))


class TestBuildSchedule:
    def test_figure1_example(self):
        """The paper's 7-page, 3-disk program with speeds 4:2:1 yields the
        12-slot major cycle a b d a c e a b f a c g."""
        schedule = build_schedule(three_disk_assignment())
        assert schedule.slots == (0, 1, 3, 0, 2, 4, 0, 1, 5, 0, 2, 6)
        assert len(schedule) == 12
        assert schedule.minor_cycle == 3

    def test_figure1_frequencies(self):
        schedule = build_schedule(three_disk_assignment())
        assert schedule.frequency(0) == 4
        assert schedule.frequency(1) == schedule.frequency(2) == 2
        for page in (3, 4, 5, 6):
            assert schedule.frequency(page) == 1

    def test_single_disk_is_flat_broadcast(self):
        assignment = DiskAssignment((Disk((0, 1, 2, 3), 1),))
        schedule = build_schedule(assignment)
        assert schedule.slots == (0, 1, 2, 3)
        assert schedule.num_empty_slots == 0

    def test_padding_when_sizes_do_not_divide(self):
        # Disk 2 has 3 pages over 2 chunks -> chunk size 2 with 1 pad slot.
        assignment = DiskAssignment((Disk((0,), 2), Disk((1, 2, 3), 1)))
        schedule = build_schedule(assignment)
        assert schedule.num_empty_slots == 1
        # Every page still appears the right number of times.
        assert schedule.frequency(0) == 2
        for page in (1, 2, 3):
            assert schedule.frequency(page) == 1

    def test_paper_configuration_cycle_length(self):
        """Table 3's disks (100/400/500 at 3:2:1) give a 1608-slot cycle:
        lcm=6 minor cycles of 50 + 134 + 84 slots (with 2+4 pads)."""
        assignment = DiskAssignment.from_ranking(
            list(range(1000)), (100, 400, 500), (3, 2, 1))
        schedule = build_schedule(assignment)
        assert len(schedule) == 1608
        assert schedule.minor_cycle == 268
        # Disk 2: 6 minor cycles x 134-slot chunks carry 2x400 pages ->
        # 4 pads; disk 3: 6 x 84 carry 1x500 pages -> 4 pads.
        assert schedule.num_empty_slots == (6 * 134 - 2 * 400) + (6 * 84 - 500)

    def test_relative_frequencies_hold_in_paper_configuration(self):
        assignment = DiskAssignment.from_ranking(
            list(range(1000)), (100, 400, 500), (3, 2, 1))
        schedule = build_schedule(assignment)
        assert schedule.frequency(0) == 3
        assert schedule.frequency(150) == 2
        assert schedule.frequency(999) == 1

    def test_every_page_appears(self):
        assignment = DiskAssignment.from_ranking(
            list(range(60)), (10, 20, 30), (4, 2, 1))
        schedule = build_schedule(assignment)
        assert schedule.pages == frozenset(range(60))
