"""Unit tests for the ThresPerc filter."""

import math

import pytest

from repro.broadcast.program import Disk, DiskAssignment, build_schedule
from repro.client.threshold import ThresholdFilter


def fig1_schedule():
    return build_schedule(DiskAssignment((
        Disk((0,), 4), Disk((1, 2), 2), Disk((3, 4, 5, 6), 1))))


class TestThresholdFilter:
    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            ThresholdFilter(fig1_schedule(), -0.1)
        with pytest.raises(ValueError):
            ThresholdFilter(fig1_schedule(), 1.01)

    def test_no_schedule_passes_everything(self):
        threshold = ThresholdFilter(None, 0.0)
        assert threshold.passes(123, 0)

    def test_zero_threshold_blocks_only_imminent_page(self):
        threshold = ThresholdFilter(fig1_schedule(), 0.0)
        # Page 0 occupies slot 0: distance 0 -> not worth a request.
        assert not threshold.passes(0, 0)
        # Page 3 (slot 2) is 2 slots away -> pull it.
        assert threshold.passes(3, 0)

    def test_quarter_cycle_threshold(self):
        threshold = ThresholdFilter(fig1_schedule(), 0.25)
        assert threshold.threshold_slots == pytest.approx(3.0)
        # Page 2 appears at slot 4: distance 4 > 3 -> request.
        assert threshold.passes(2, 0)
        # Page 0 at distance <= 3 from anywhere -> never requested.
        for pos in range(12):
            assert not threshold.passes(0, pos)

    def test_full_cycle_threshold_blocks_all_scheduled_pages(self):
        """ThresPerc=100%: 'the client sends no requests since all pages
        will appear within a major cycle'."""
        threshold = ThresholdFilter(fig1_schedule(), 1.0)
        for page in range(7):
            for pos in range(12):
                assert not threshold.passes(page, pos)

    def test_non_broadcast_page_always_passes(self):
        threshold = ThresholdFilter(fig1_schedule(), 1.0)
        assert threshold.passes(42, 0)

    def test_set_thresh_perc_retunes(self):
        threshold = ThresholdFilter(fig1_schedule(), 0.0)
        assert threshold.passes(2, 0)
        threshold.set_thresh_perc(0.5)
        assert threshold.threshold_slots == pytest.approx(6.0)
        assert not threshold.passes(2, 0)
        with pytest.raises(ValueError):
            threshold.set_thresh_perc(2.0)

    def test_max_push_wait(self):
        threshold = ThresholdFilter(fig1_schedule(), 0.0)
        # Page 3 at slot 2, from position 0: transmitted after 2 slots,
        # complete one slot later.
        assert threshold.max_push_wait(3, 0) == pytest.approx(3.0)
        assert math.isinf(threshold.max_push_wait(42, 0))
        assert math.isinf(ThresholdFilter(None, 0.0).max_push_wait(3, 0))
