"""The virtual client's vectorized threshold path must match the scalar
ThresholdFilter exactly — a divergence here would silently skew every
IPP experiment."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.broadcast.program import Disk, DiskAssignment, build_schedule
from repro.client.threshold import ThresholdFilter
from repro.client.virtual import VirtualClient
from repro.workload.zipf import zipf_probabilities


def build_vc(thresh_perc, steady_perc=0.0, seed=0):
    schedule = build_schedule(DiskAssignment((
        Disk((0,), 4), Disk((1, 2), 2), Disk((3, 4, 5, 6), 1))))
    threshold = ThresholdFilter(schedule, thresh_perc)
    vc = VirtualClient(zipf_probabilities(7, 0.95), frozenset(),
                       steady_perc, mc_think_time=20.0,
                       think_time_ratio=10.0, threshold=threshold,
                       rng=np.random.default_rng(seed))
    return vc, threshold


@settings(max_examples=40)
@given(
    thresh_perc=st.sampled_from((0.0, 0.1, 0.25, 0.5, 1.0)),
    schedule_pos=st.integers(min_value=0, max_value=30),
    seed=st.integers(min_value=0, max_value=100),
)
def test_vectorized_filter_matches_scalar(thresh_perc, schedule_pos, seed):
    vc, threshold = build_vc(thresh_perc, seed=seed)
    survivors = set(vc.requests_for_slot(300, schedule_pos))
    # Recompute which pages *can* survive via the scalar filter.
    allowed = {page for page in range(7)
               if threshold.passes(page, schedule_pos)}
    assert survivors <= allowed
    # Every allowed page with non-trivial probability shows up in a
    # 300-draw sample of a 7-page Zipf (p_min ~ 2.5%); if one is missing
    # the vectorized path filtered something the scalar path allows.
    vc2, _ = build_vc(thresh_perc, seed=seed)
    drawn = {page for page in vc2._stream.take(300)[0].tolist()}
    assert survivors == (allowed & drawn)


@settings(max_examples=20)
@given(schedule_pos=st.integers(min_value=0, max_value=11))
def test_full_threshold_blocks_exactly_the_scheduled_pages(schedule_pos):
    vc, _ = build_vc(1.0)
    survivors = list(vc.requests_for_slot(500, schedule_pos))
    assert survivors == []  # every page is on the 12-slot program
