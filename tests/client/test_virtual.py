"""Unit tests for the aggregate virtual client."""

import numpy as np
import pytest

from repro.broadcast.program import Disk, DiskAssignment, build_schedule
from repro.client.threshold import ThresholdFilter
from repro.client.virtual import VirtualClient
from repro.workload.zipf import zipf_probabilities


def fig1_schedule():
    return build_schedule(DiskAssignment((
        Disk((0,), 4), Disk((1, 2), 2), Disk((3, 4, 5, 6), 1))))


def make_vc(steady_set=frozenset(), steady_perc=0.95, ttr=10.0,
            threshold=None, seed=0, n=7):
    return VirtualClient(zipf_probabilities(n, 0.95), steady_set,
                         steady_perc, mc_think_time=20.0,
                         think_time_ratio=ttr, threshold=threshold,
                         rng=np.random.default_rng(seed))


class TestArrivals:
    def test_rate_formula(self):
        vc = make_vc(ttr=250.0)
        assert vc.rate == pytest.approx(12.5)

    def test_poisson_mean_tracks_rate(self):
        vc = make_vc(ttr=100.0)  # rate 5.0
        counts = vc.arrivals_for_slots(20_000)
        assert np.mean(counts) == pytest.approx(5.0, abs=0.1)

    def test_arrivals_in_slot_non_negative(self):
        vc = make_vc()
        assert all(vc.arrivals_in_slot() >= 0 for _ in range(100))


class TestFiltering:
    def test_steady_requests_absorbed_by_steady_set(self):
        vc = make_vc(steady_set=frozenset(range(7)), steady_perc=1.0)
        survivors = list(vc.requests_for_slot(500, schedule_pos=0))
        assert survivors == []
        assert vc.absorbed_by_cache == 500

    def test_warm_requests_bypass_cache(self):
        vc = make_vc(steady_set=frozenset(range(7)), steady_perc=0.0)
        survivors = list(vc.requests_for_slot(500, schedule_pos=0))
        assert len(survivors) == 500
        assert vc.absorbed_by_cache == 0

    def test_threshold_filters_near_pages(self):
        threshold = ThresholdFilter(fig1_schedule(), 1.0)
        vc = make_vc(steady_perc=0.0, threshold=threshold)
        survivors = list(vc.requests_for_slot(300, schedule_pos=0))
        # Every page is on the program within one cycle: all filtered.
        assert survivors == []
        assert vc.filtered_by_threshold == 300

    def test_zero_threshold_blocks_imminent_page_only(self):
        threshold = ThresholdFilter(fig1_schedule(), 0.0)
        vc = make_vc(steady_perc=0.0, threshold=threshold)
        survivors = list(vc.requests_for_slot(1000, schedule_pos=0))
        # Page 0 occupies position 0; it is the only filtered page.
        assert 0 not in survivors
        assert vc.filtered_by_threshold > 0
        assert len(survivors) + vc.filtered_by_threshold == 1000

    def test_generated_counts_every_access(self):
        vc = make_vc(steady_set=frozenset({0}), steady_perc=0.5)
        list(vc.requests_for_slot(400, schedule_pos=0))
        assert vc.generated == 400

    def test_reset_stats(self):
        vc = make_vc(steady_set=frozenset({0}), steady_perc=1.0)
        list(vc.requests_for_slot(100, schedule_pos=0))
        vc.reset_stats()
        assert vc.generated == vc.absorbed_by_cache == 0
        assert vc.filtered_by_threshold == 0

    def test_set_threshold_slots_changes_filtering(self):
        threshold = ThresholdFilter(fig1_schedule(), 0.0)
        vc = make_vc(steady_perc=0.0, threshold=threshold)
        vc.set_threshold_slots(float(len(fig1_schedule())))
        survivors = list(vc.requests_for_slot(300, schedule_pos=0))
        assert survivors == []

    def test_steady_misses_still_reach_server(self):
        vc = make_vc(steady_set=frozenset({0}), steady_perc=1.0, seed=5)
        survivors = list(vc.requests_for_slot(2000, schedule_pos=0))
        # Hot page 0 absorbed; everything else flows through.
        assert 0 not in survivors
        assert len(survivors) > 0
