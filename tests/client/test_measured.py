"""Unit tests for the measured client and warm-up tracking."""

import numpy as np
import pytest

from repro.cache.base import Cache
from repro.cache.p import PPolicy
from repro.client.measured import MeasuredClient, WarmupTracker
from repro.workload.zipf import zipf_probabilities


def make_client(cache_size=3, n=10, warm_target=None, seed=0):
    probs = zipf_probabilities(n, 0.95)
    cache = Cache(cache_size, PPolicy(probs))
    return MeasuredClient(probs, cache, think_time=4.0,
                          rng=np.random.default_rng(seed),
                          warmup_target=warm_target)


class TestWarmupTracker:
    def test_empty_target_rejected(self):
        with pytest.raises(ValueError):
            WarmupTracker(frozenset())

    def test_levels_cross_in_order(self):
        tracker = WarmupTracker(frozenset({0, 1, 2, 3}),
                                levels=(0.25, 0.5, 0.75, 1.0))
        tracker.on_insert(0, now=10.0)
        tracker.on_insert(99, now=11.0)  # non-target: ignored
        tracker.on_insert(1, now=20.0)
        assert tracker.crossing_times == {0.25: 10.0, 0.5: 20.0}
        assert not tracker.complete
        tracker.on_insert(2, now=30.0)
        tracker.on_insert(3, now=40.0)
        assert tracker.complete
        assert tracker.crossing_times[1.0] == 40.0

    def test_eviction_decrements_but_does_not_uncross(self):
        tracker = WarmupTracker(frozenset({0, 1}), levels=(0.5, 1.0))
        tracker.on_insert(0, now=1.0)
        tracker.on_evict(0)
        assert tracker.fraction == 0.0
        assert tracker.crossing_times == {0.5: 1.0}  # first crossing stands

    def test_single_insert_can_cross_multiple_levels(self):
        tracker = WarmupTracker(frozenset({5}), levels=(0.25, 0.5, 1.0))
        tracker.on_insert(5, now=3.0)
        assert tracker.crossing_times == {0.25: 3.0, 0.5: 3.0, 1.0: 3.0}
        assert tracker.complete

    def test_reinsert_does_not_double_count(self):
        """A target re-broadcast while already resident must not inflate
        the warm fraction (it used to count every insert)."""
        tracker = WarmupTracker(frozenset({0, 1}), levels=(0.5, 1.0))
        tracker.on_insert(0, now=1.0)
        tracker.on_insert(0, now=2.0)
        assert tracker.fraction == pytest.approx(0.5)
        assert not tracker.complete

    def test_unmatched_evict_does_not_go_negative(self):
        """Evicting a target that was never inserted is a no-op; the
        fraction stays consistent afterwards."""
        tracker = WarmupTracker(frozenset({0, 1}), levels=(0.5, 1.0))
        tracker.on_evict(0)
        assert tracker.fraction == 0.0
        tracker.on_insert(0, now=1.0)
        assert tracker.fraction == pytest.approx(0.5)

    def test_evict_then_reinsert_round_trips(self):
        tracker = WarmupTracker(frozenset({0, 1}), levels=(0.5, 1.0))
        tracker.on_insert(0, now=1.0)
        tracker.on_evict(0)
        tracker.on_evict(0)  # double evict: already gone, ignored
        assert tracker.fraction == 0.0
        tracker.on_insert(0, now=2.0)
        tracker.on_insert(1, now=3.0)
        assert tracker.complete


class TestMeasuredClient:
    def test_negative_think_time_rejected(self):
        probs = zipf_probabilities(5, 0.5)
        with pytest.raises(ValueError):
            MeasuredClient(probs, Cache(2, PPolicy(probs)), -1.0,
                           np.random.default_rng(0))

    def test_draw_page_in_range(self):
        client = make_client()
        for _ in range(200):
            assert 0 <= client.draw_page() < 10

    def test_stats_gated_by_measuring_flag(self):
        client = make_client()
        client.cache.insert(0)
        assert client.lookup(0, now=1.0)          # hit, not measuring
        assert not client.lookup(5, now=2.0)      # miss, not measuring
        assert client.hits == client.misses == 0
        client.measuring = True
        client.lookup(0, now=3.0)
        client.lookup(5, now=4.0)
        assert client.hits == 1 and client.misses == 1

    def test_hit_records_zero_response(self):
        client = make_client()
        client.measuring = True
        client.cache.insert(0)
        client.lookup(0, now=1.0)
        assert client.response_all.count == 1
        assert client.response_all.mean == 0.0
        assert client.response_miss.count == 0

    def test_receive_records_response_and_caches(self):
        client = make_client()
        client.measuring = True
        client.receive(7, requested_at=10.0, now=14.5)
        assert client.response_miss.mean == pytest.approx(4.5)
        assert client.response_all.mean == pytest.approx(4.5)
        assert 7 in client.cache

    def test_receive_before_request_rejected(self):
        client = make_client()
        with pytest.raises(ValueError):
            client.receive(1, requested_at=5.0, now=4.0)

    def test_receive_updates_warmup_tracker(self):
        client = make_client(cache_size=2, warm_target=frozenset({0, 1}))
        client.receive(0, requested_at=0.0, now=1.0)
        assert client.warmup is not None
        assert client.warmup.fraction == pytest.approx(0.5)
        # Fill the cache so the next insert evicts.
        client.receive(1, requested_at=0.0, now=2.0)
        assert client.warmup.fraction == pytest.approx(1.0)
        client.receive(9, requested_at=0.0, now=3.0)  # evicts a target
        assert client.warmup.fraction < 1.0

    def test_reset_stats(self):
        client = make_client()
        client.measuring = True
        client.lookup(5, now=0.0)
        client.receive(5, requested_at=0.0, now=2.0)
        client.record_pull_sent()
        client.reset_stats()
        assert client.hits == client.misses == client.pulls_sent == 0
        assert client.accesses == 0
        assert client.response_all.count == 0

    def test_miss_rate(self):
        client = make_client()
        client.measuring = True
        client.cache.insert(0)
        client.lookup(0, now=0.0)
        client.lookup(9, now=1.0)
        assert client.miss_rate == pytest.approx(0.5)


class TestAccessCounterCoversMeasuredWindow:
    """Regression: reset_stats used to leave ``accesses`` counting the
    warm-up/settle lookups, so any ratio over it mixed phases."""

    @pytest.mark.parametrize("engine_cls_name",
                             ["FastEngine", "ReferenceEngine"])
    def test_accesses_matches_measured_hits_plus_misses(self,
                                                        engine_cls_name):
        from repro.core.fast import FastEngine
        from repro.core.simulation import ReferenceEngine
        from tests.conftest import small_config

        engine_cls = {"FastEngine": FastEngine,
                      "ReferenceEngine": ReferenceEngine}[engine_cls_name]
        config = small_config(run__settle_accesses=80,
                              run__measure_accesses=150)
        engine = engine_cls(config)
        result = engine.run()
        mc = engine.state.mc
        # The warm-up -> measurement transition zeroed the counter, so it
        # covers exactly the measured window in both engines.
        assert mc.accesses == result.mc_hits + result.mc_misses == 150
