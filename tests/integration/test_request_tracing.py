"""Cross-engine consistency of traced wait decompositions.

The engines consume randomness in different orders, so per-request records
differ — but the *decomposition* of mean wait into push-wait, pull-queue
wait, and service must agree statistically, and within each engine the
decomposition must tie out exactly against the run's own tallies.
"""

import pytest

from repro.core.algorithms import Algorithm
from repro.core.fast import FastEngine
from repro.core.simulation import ReferenceEngine
from repro.obs import MemorySink, RequestTracer
from tests.conftest import small_config


def averaged_breakdown(engine_cls, config, seeds=(1, 2, 3)):
    """Mean wait components per miss, averaged over seeded replicates."""
    totals = {"push_wait": 0.0, "pull_wait": 0.0, "service": 0.0,
              "mean_wait": 0.0, "pull_share": 0.0}
    for seed in seeds:
        tracer = RequestTracer(MemorySink())
        engine_cls(config.with_(run__seed=seed),
                   request_tracer=tracer).run()
        b = tracer.breakdown()
        assert b.misses > 0
        totals["push_wait"] += b.push_wait / b.misses
        totals["pull_wait"] += b.pull_wait / b.misses
        totals["service"] += b.service / b.misses
        totals["mean_wait"] += b.mean_wait
        totals["pull_share"] += b.served_pull / b.misses
    return {k: v / len(seeds) for k, v in totals.items()}


class TestCrossEngineDecomposition:
    @pytest.mark.parametrize("algorithm,ttr", [
        (Algorithm.PURE_PULL, 20.0),
        (Algorithm.IPP, 2.0),
        (Algorithm.IPP, 20.0),
    ])
    def test_wait_components_within_tolerance(self, algorithm, ttr):
        config = small_config(algorithm, client__think_time_ratio=ttr,
                              run__measure_accesses=800)
        fast = averaged_breakdown(FastEngine, config)
        ref = averaged_breakdown(ReferenceEngine, config)
        assert fast["mean_wait"] == pytest.approx(
            ref["mean_wait"], rel=0.25, abs=2.0)
        assert fast["push_wait"] == pytest.approx(
            ref["push_wait"], rel=0.35, abs=2.0)
        assert fast["pull_wait"] == pytest.approx(
            ref["pull_wait"], rel=0.35, abs=2.0)
        assert fast["service"] == pytest.approx(
            ref["service"], rel=0.25, abs=0.5)
        assert fast["pull_share"] == pytest.approx(
            ref["pull_share"], abs=0.15)

    def test_pure_push_decomposition_agrees_exactly(self):
        config = small_config(Algorithm.PURE_PUSH,
                              run__measure_accesses=500)
        breakdowns = []
        for engine_cls in (FastEngine, ReferenceEngine):
            tracer = RequestTracer(MemorySink())
            engine_cls(config, request_tracer=tracer).run()
            breakdowns.append(tracer.breakdown())
        fast, ref = breakdowns
        assert fast.misses == ref.misses
        assert fast.pull_wait == ref.pull_wait == 0.0
        assert fast.push_wait == pytest.approx(ref.push_wait)
        assert fast.service == pytest.approx(ref.service)


class TestDecompositionTiesToTallies:
    @pytest.mark.parametrize("engine_cls", [FastEngine, ReferenceEngine],
                             ids=["fast", "reference"])
    def test_components_sum_to_measured_mean(self, engine_cls):
        config = small_config(Algorithm.IPP, client__think_time_ratio=5.0,
                              run__measure_accesses=800)
        tracer = RequestTracer(MemorySink())
        result = engine_cls(config, request_tracer=tracer).run()
        b = tracer.breakdown()
        # The decomposition partitions the run's own measured mean exactly.
        assert (b.push_wait + b.pull_wait + b.service) / b.misses == \
            pytest.approx(result.response_miss.mean)
        # And the traced quantiles match the engine-side histogram.
        quantiles = tracer.wait_quantiles()
        assert quantiles is not None
        assert quantiles["p50"] == pytest.approx(result.response_miss.p50)
        assert quantiles["p99"] == pytest.approx(result.response_miss.p99)
