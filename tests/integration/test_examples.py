"""Smoke tests: the example scripts run end-to-end and say sane things.

Only the cheap configurations are exercised; the heavier scenario scripts
are validated structurally (importable, callable mains) to keep the test
suite fast.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent.parent / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


class TestInventory:
    def test_at_least_five_examples_exist(self):
        assert len(ALL_EXAMPLES) >= 5
        assert "quickstart.py" in ALL_EXAMPLES

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_examples_are_importable_scripts(self, name):
        """Each example parses, imports, and exposes a main()."""
        spec = importlib.util.spec_from_file_location(
            f"example_{name[:-3]}", EXAMPLES_DIR / name)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert callable(module.main)


class TestQuickstartEndToEnd:
    def test_runs_and_reports_all_algorithms(self):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "quickstart.py"), "2"],
            capture_output=True, text=True, timeout=240)
        assert proc.returncode == 0, proc.stderr
        out = proc.stdout
        assert "a b d a c e a b f a c g" in out  # Figure 1 verbatim
        for algorithm in ("pure-push", "pure-pull", "ipp"):
            assert algorithm in out
