"""Cross-cutting accounting invariants of the measurement methodology.

The paper's methodology (Section 4) measures only after warm-up and
settling; these tests pin down that the reported statistics really do
describe the measured window alone, and that the virtual client's
bookkeeping is consistent with its configured request rate.
"""

import pytest

from repro.core.algorithms import Algorithm
from repro.core.fast import FastEngine
from repro.core.simulation import ReferenceEngine
from tests.conftest import small_config


class TestMeasuredWindowIsolation:
    def test_vc_counters_cover_only_the_measured_window(self, ipp_config):
        """vc_generated must match rate x measured_slots, not the whole
        run — the engine resets VC accounting at the measure boundary."""
        config = ipp_config.with_(client__think_time_ratio=10.0,
                                  run__settle_accesses=300,
                                  run__measure_accesses=300)
        result = FastEngine(config).run()
        rate = config.client.think_time_ratio / config.client.think_time
        expected = rate * result.measured_slots
        assert result.vc_generated == pytest.approx(expected, rel=0.25)
        assert result.measured_slots < result.total_slots

    def test_vc_accounting_partitions(self, ipp_config):
        result = FastEngine(ipp_config).run()
        reaching_server = (result.vc_generated - result.vc_absorbed
                           - result.vc_filtered)
        # Requests reaching the server = queue offers minus the MC's own.
        assert reaching_server == result.request_offers - result.mc_pulls_sent

    def test_longer_settle_does_not_change_seeded_expectations_much(self):
        short = FastEngine(small_config(run__settle_accesses=100)).run()
        long = FastEngine(small_config(run__settle_accesses=600)).run()
        # Same seed, same distributional regime: means stay in the same
        # ballpark (the system is stationary once warm).
        assert long.response_miss.mean == pytest.approx(
            short.response_miss.mean, rel=0.6, abs=3.0)

    def test_served_counts_stay_within_enqueued(self, pull_config):
        result = FastEngine(pull_config).run()
        # Served can exceed enqueued only via requests enqueued before the
        # measurement boundary (queue contents survive the counter reset).
        capacity = pull_config.server.queue_size
        assert result.requests_served <= result.requests_enqueued + capacity


class TestEngineParity:
    @pytest.mark.parametrize("algorithm", list(Algorithm))
    def test_both_engines_honour_the_protocol(self, algorithm):
        config = small_config(algorithm, run__settle_accesses=50,
                              run__measure_accesses=120)
        for engine_cls in (FastEngine, ReferenceEngine):
            result = engine_cls(config).run()
            assert result.mc_hits + result.mc_misses == 120
            assert result.response_all.count == 120

    def test_slot_accounting_fills_measured_window(self, ipp_config):
        result = FastEngine(ipp_config, force_general=False).run()
        slots = (result.slots_push + result.slots_pull
                 + result.slots_padding + result.slots_idle)
        assert slots == pytest.approx(result.measured_slots, abs=2.0)


class TestSeedDiscipline:
    def test_replicates_vary_but_same_seed_repeats(self, ipp_config):
        first = FastEngine(ipp_config).run()
        again = FastEngine(ipp_config).run()
        other = FastEngine(ipp_config.with_(run__seed=99)).run()
        assert first == again
        assert first != other

    def test_algorithm_change_does_not_leak_streams(self):
        """Changing only the algorithm must not alter the MC's access
        stream: the same pages get drawn in the same order."""
        from repro.core.build import build_system

        ipp = build_system(small_config(Algorithm.IPP))
        pull = build_system(small_config(Algorithm.PURE_PULL))
        ipp_draws = [ipp.mc.draw_page() for _ in range(50)]
        pull_draws = [pull.mc.draw_page() for _ in range(50)]
        assert ipp_draws == pull_draws
