"""Cross-validation: the fast engine against the reference engine.

Pure-Push is fully deterministic, so the engines must agree exactly.  The
stochastic algorithms consume randomness in different orders, so agreement
is statistical: means within a tolerance over a decent run.
"""

import pytest

from repro.core.algorithms import Algorithm
from repro.core.fast import FastEngine
from repro.core.simulation import ReferenceEngine
from tests.conftest import small_config


def averaged(engine_cls, config, seeds=(1, 2, 3)):
    means = []
    drops = []
    for seed in seeds:
        result = engine_cls(config.with_(run__seed=seed)).run()
        means.append(result.response_miss.mean)
        drops.append(result.drop_rate)
    return sum(means) / len(means), sum(drops) / len(drops)


class TestPurePushExactAgreement:
    def test_identical_traces(self):
        config = small_config(Algorithm.PURE_PUSH,
                              run__measure_accesses=500)
        fast = FastEngine(config).run()
        general = FastEngine(config, force_general=True).run()
        ref = ReferenceEngine(config).run()
        assert fast.response_miss.mean == pytest.approx(
            general.response_miss.mean)
        assert fast.response_miss.mean == pytest.approx(
            ref.response_miss.mean)
        assert fast.mc_misses == general.mc_misses == ref.mc_misses

    def test_warmup_traces_identical(self):
        config = small_config(Algorithm.PURE_PUSH)
        fast = FastEngine(config).run_warmup()
        ref = ReferenceEngine(config).run_warmup()
        assert fast.warmup_times == ref.warmup_times


class TestStochasticAgreement:
    @pytest.mark.parametrize("algorithm,ttr", [
        (Algorithm.PURE_PULL, 2.0),
        (Algorithm.PURE_PULL, 20.0),
        (Algorithm.IPP, 2.0),
        (Algorithm.IPP, 20.0),
    ])
    def test_mean_response_within_tolerance(self, algorithm, ttr):
        config = small_config(algorithm, client__think_time_ratio=ttr,
                              run__measure_accesses=800)
        fast_mean, fast_drop = averaged(FastEngine, config)
        ref_mean, ref_drop = averaged(ReferenceEngine, config)
        assert fast_mean == pytest.approx(ref_mean, rel=0.25, abs=2.0)
        assert fast_drop == pytest.approx(ref_drop, abs=0.1)

    def test_ipp_pull_share_agrees(self):
        config = small_config(Algorithm.IPP, client__think_time_ratio=20.0,
                              run__measure_accesses=800)
        fast = FastEngine(config).run()
        ref = ReferenceEngine(config).run()
        assert fast.pull_slot_share == pytest.approx(ref.pull_slot_share,
                                                     abs=0.08)
