"""End-to-end tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_defaults(self):
        args = build_parser().parse_args(["figures"])
        assert args.ids == []
        assert not args.full


class TestProgramCommand:
    def test_prints_layout(self, capsys):
        assert main(["program"]) == 0
        out = capsys.readouterr().out
        assert "major cycle: 1608 slots" in out
        assert "disk 1: 100 pages" in out
        assert "disk 3: 500 pages" in out

    def test_chop_marks_pull_only_pages(self, capsys):
        assert main(["program", "--chop", "500"]) == 0
        out = capsys.readouterr().out
        assert "not broadcast (pull only)" in out

    def test_no_offset(self, capsys):
        assert main(["program", "--no-offset"]) == 0
        out = capsys.readouterr().out
        assert "hottest: 0, 1, 2" in out


class TestSimulateCommand:
    def test_emits_json_metrics(self, capsys):
        code = main(["simulate", "--algorithm", "pure-pull", "--ttr", "2",
                     "--settle", "30", "--measure", "60"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["algorithm"] == "pure-pull"
        assert data["response_miss"]["count"] > 0

    def test_ipp_with_threshold_and_chop(self, capsys):
        code = main(["simulate", "--algorithm", "ipp", "--ttr", "2",
                     "--pull-bw", "0.5", "--thresh-perc", "0.35",
                     "--chop", "500", "--settle", "30", "--measure", "40"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["mc_misses"] > 0


class TestVersionFlag:
    def test_prints_version_and_exits(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro-broadcast ")
        assert out.split()[1][0].isdigit()


class TestTraceCommand:
    def test_writes_valid_jsonl(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        code = main(["trace", "--algorithm", "pure-pull", "--ttr", "2",
                     "--settle", "20", "--measure", "40",
                     "--out", str(path)])
        assert code == 0
        lines = path.read_text().splitlines()
        assert lines
        for line in lines:
            record = json.loads(line)
            assert record["kind"] in ("push", "pull", "padding", "idle")
            assert record["queue_depth"] >= 0
        slots = [json.loads(line)["slot"] for line in lines]
        assert slots == list(range(len(slots)))
        assert f"{len(lines)} slot records" in capsys.readouterr().out

    def test_figure_point_traces(self, tmp_path):
        """Acceptance: tracing a figure's representative sweep point
        produces a valid JSONL trace."""
        path = tmp_path / "fig.jsonl"
        code = main(["trace", "--figure", "3a", "--settle", "20",
                     "--measure", "40", "--out", str(path)])
        assert code == 0
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert records
        assert {"push", "pull"} & {r["kind"] for r in records}

    def test_reference_engine_traces_too(self, tmp_path):
        path = tmp_path / "ref.jsonl"
        code = main(["trace", "--algorithm", "pure-push", "--ttr", "2",
                     "--settle", "20", "--measure", "40",
                     "--engine", "reference", "--out", str(path)])
        assert code == 0
        assert path.read_text().splitlines()

    def test_unknown_figure_id(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "--figure", "nope",
                  "--out", str(tmp_path / "t.jsonl")])


class TestProfileCommand:
    def test_prints_phase_table(self, capsys):
        code = main(["profile", "--algorithm", "ipp", "--ttr", "2",
                     "--settle", "20", "--measure", "40"])
        assert code == 0
        out = capsys.readouterr().out
        for phase in ("control", "deliver", "mc_access", "server_tick",
                      "vc_arrivals"):
            assert phase in out
        assert "slots/sec" in out
        assert "response_miss mean" in out


class TestTuneCommand:
    def test_recommends_a_setting(self, capsys):
        code = main(["tune", "--loads", "2", "--pull-bw", "0.5",
                     "--thresh-perc", "0,0.35", "--settle", "20",
                     "--measure", "40"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recommended (worst_case)" in out
        assert "ThresPerc" in out

    def test_mean_objective(self, capsys):
        code = main(["tune", "--loads", "2", "--pull-bw", "0.5",
                     "--thresh-perc", "0", "--objective", "mean",
                     "--settle", "20", "--measure", "40"])
        assert code == 0
        assert "recommended (mean)" in capsys.readouterr().out


class TestFiguresCommand:
    def test_unknown_figure_id(self, capsys):
        assert main(["figures", "nope"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_runs_one_figure_and_writes_json(self, tmp_path, capsys,
                                             monkeypatch):
        # Shrink the quick profile so the test stays fast.
        import repro.cli as cli
        from repro.experiments import figure_3a
        from repro.experiments.base import Profile

        monkeypatch.setattr(
            cli, "QUICK",
            Profile(settle_accesses=20, measure_accesses=40, replicates=1))
        monkeypatch.setattr(
            cli, "ALL_FIGURES",
            {"3a": lambda profile: figure_3a(profile, ttrs=(2, 5))})
        code = main(["figures", "3a", "--json", str(tmp_path), "--chart",
                     "--trace", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 3a" in out
        assert "legend:" in out  # the --chart flag rendered a plot
        data = json.loads((tmp_path / "figure_3a.json").read_text())
        assert data["figure"] == "3a"
        assert len(data["series"]) == 5
        # --trace wrote the figure's representative point as JSONL.
        trace_lines = (tmp_path / "trace_3a.jsonl").read_text().splitlines()
        assert trace_lines
        assert json.loads(trace_lines[0])["slot"] == 0
