"""End-to-end tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_defaults(self):
        args = build_parser().parse_args(["figures"])
        assert args.ids == []
        assert not args.full


class TestProgramCommand:
    def test_prints_layout(self, capsys):
        assert main(["program"]) == 0
        out = capsys.readouterr().out
        assert "major cycle: 1608 slots" in out
        assert "disk 1: 100 pages" in out
        assert "disk 3: 500 pages" in out

    def test_chop_marks_pull_only_pages(self, capsys):
        assert main(["program", "--chop", "500"]) == 0
        out = capsys.readouterr().out
        assert "not broadcast (pull only)" in out

    def test_no_offset(self, capsys):
        assert main(["program", "--no-offset"]) == 0
        out = capsys.readouterr().out
        assert "hottest: 0, 1, 2" in out


class TestSimulateCommand:
    def test_emits_json_metrics(self, capsys):
        code = main(["simulate", "--algorithm", "pure-pull", "--ttr", "2",
                     "--settle", "30", "--measure", "60"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["algorithm"] == "pure-pull"
        assert data["response_miss"]["count"] > 0

    def test_ipp_with_threshold_and_chop(self, capsys):
        code = main(["simulate", "--algorithm", "ipp", "--ttr", "2",
                     "--pull-bw", "0.5", "--thresh-perc", "0.35",
                     "--chop", "500", "--settle", "30", "--measure", "40"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["mc_misses"] > 0


class TestVersionFlag:
    def test_prints_version_and_exits(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro-broadcast ")
        assert out.split()[1][0].isdigit()


class TestTraceCommand:
    def test_writes_valid_jsonl(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        code = main(["trace", "--algorithm", "pure-pull", "--ttr", "2",
                     "--settle", "20", "--measure", "40",
                     "--out", str(path)])
        assert code == 0
        lines = path.read_text().splitlines()
        assert lines
        for line in lines:
            record = json.loads(line)
            assert record["kind"] in ("push", "pull", "padding", "idle")
            assert record["queue_depth"] >= 0
        slots = [json.loads(line)["slot"] for line in lines]
        assert slots == list(range(len(slots)))
        assert f"{len(lines)} slot records" in capsys.readouterr().out

    def test_figure_point_traces(self, tmp_path):
        """Acceptance: tracing a figure's representative sweep point
        produces a valid JSONL trace."""
        path = tmp_path / "fig.jsonl"
        code = main(["trace", "--figure", "3a", "--settle", "20",
                     "--measure", "40", "--out", str(path)])
        assert code == 0
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert records
        assert {"push", "pull"} & {r["kind"] for r in records}

    def test_reference_engine_traces_too(self, tmp_path):
        path = tmp_path / "ref.jsonl"
        code = main(["trace", "--algorithm", "pure-push", "--ttr", "2",
                     "--settle", "20", "--measure", "40",
                     "--engine", "reference", "--out", str(path)])
        assert code == 0
        assert path.read_text().splitlines()

    def test_unknown_figure_id(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "--figure", "nope",
                  "--out", str(tmp_path / "t.jsonl")])

    def test_requests_flag_writes_lifecycle_records(self, tmp_path, capsys):
        path = tmp_path / "req.jsonl"
        code = main(["trace", "--requests", "--algorithm", "ipp",
                     "--ttr", "2", "--settle", "20", "--measure", "60",
                     "--out", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "request records" in out
        assert "pull queue wait" in out  # breakdown printed to terminal
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert records
        assert all("issued_at" in r for r in records)
        misses = [r for r in records if not r["hit"]]
        assert misses
        assert all(r["served_kind"] in ("push", "pull") for r in misses)

    def test_requests_flag_on_reference_engine(self, tmp_path):
        path = tmp_path / "req_ref.jsonl"
        code = main(["trace", "--requests", "--algorithm", "pure-pull",
                     "--ttr", "2", "--settle", "20", "--measure", "40",
                     "--engine", "reference", "--out", str(path)])
        assert code == 0
        assert path.read_text().splitlines()

    def test_columnar_format_writes_npy(self, tmp_path, capsys):
        from repro.obs.columnar import load_columnar, table_of

        path = tmp_path / "slots.npy"
        code = main(["trace", "--algorithm", "pure-pull", "--ttr", "2",
                     "--settle", "20", "--measure", "40",
                     "--format", "columnar", "--out", str(path)])
        assert code == 0
        assert "slot records" in capsys.readouterr().out
        array = load_columnar(path)
        assert table_of(array) == "slot"
        assert array["slot"].tolist() == list(range(array.shape[0]))

    def test_auto_format_follows_npy_suffix(self, tmp_path):
        from repro.obs.columnar import load_columnar, table_of

        path = tmp_path / "req.npy"
        code = main(["trace", "--requests", "--algorithm", "ipp",
                     "--ttr", "2", "--settle", "20", "--measure", "60",
                     "--out", str(path)])
        assert code == 0
        assert table_of(load_columnar(path)) == "request"


class TestConvertCommand:
    def _request_trace(self, tmp_path, name="req.jsonl"):
        path = tmp_path / name
        assert main(["trace", "--requests", "--algorithm", "ipp",
                     "--ttr", "2", "--settle", "20", "--measure", "60",
                     "--out", str(path)]) == 0
        return path

    def test_roundtrip_is_byte_identical(self, tmp_path, capsys):
        src = self._request_trace(tmp_path)
        npy = tmp_path / "req.npy"
        back = tmp_path / "back.jsonl"
        capsys.readouterr()
        assert main(["convert", str(src), str(npy)]) == 0
        assert main(["convert", str(npy), str(back)]) == 0
        out = capsys.readouterr().out
        assert "records" in out
        assert back.read_bytes() == src.read_bytes()

    def test_rejects_ambiguous_directions(self, tmp_path, capsys):
        src = tmp_path / "a.jsonl"
        src.write_text("{}\n")
        assert main(["convert", str(src), str(tmp_path / "b.jsonl")]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert main(["convert", str(tmp_path / "a.npy"),
                     str(tmp_path / "b.npy")]) == 2

    def test_missing_source_reports_cleanly(self, tmp_path, capsys):
        assert main(["convert", str(tmp_path / "nope.jsonl"),
                     str(tmp_path / "out.npy")]) == 2
        assert "convert:" in capsys.readouterr().err

    def test_empty_source_reports_cleanly(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["convert", str(empty),
                     str(tmp_path / "out.npy")]) == 2
        assert "empty trace" in capsys.readouterr().err


class TestReportCommand:
    def test_requires_exactly_one_input(self, tmp_path, capsys):
        assert main(["report"]) == 2
        assert "exactly one" in capsys.readouterr().err
        path = tmp_path / "fig.json"
        path.write_text("{}")
        assert main(["report", str(path), "--trace", str(path)]) == 2

    def test_figure_json_with_provenance(self, tmp_path, capsys):
        from repro.experiments import figure_3a
        from repro.experiments.base import Profile

        profile = Profile(settle_accesses=20, measure_accesses=40,
                          replicates=1)
        figure = figure_3a(profile, ttrs=(2, 5))
        path = tmp_path / "figure_3a.json"
        path.write_text(json.dumps(figure.to_dict()))
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Figure 3a" in out
        assert "response-time quantiles" in out
        assert "p99" in out
        assert "provenance:" in out
        assert "engine" in out

    def test_old_schema_figure_degrades_gracefully(self, capsys):
        """Acceptance: a pre-provenance archive still reports cleanly."""
        from pathlib import Path

        archived = (Path(__file__).resolve().parents[2]
                    / "results" / "figure_3a.json")
        assert main(["report", str(archived)]) == 0
        out = capsys.readouterr().out
        assert "Figure 3a" in out
        assert "no quantile data" in out
        assert "no manifest" in out

    def test_request_trace_breakdown(self, tmp_path, capsys):
        path = tmp_path / "req.jsonl"
        assert main(["trace", "--requests", "--algorithm", "ipp",
                     "--ttr", "2", "--settle", "20", "--measure", "60",
                     "--out", str(path)]) == 0
        capsys.readouterr()
        assert main(["report", "--trace", str(path),
                     "--think-time", "20"]) == 0
        out = capsys.readouterr().out
        assert "request trace:" in out
        assert "pull queue wait" in out
        assert "measured miss wait quantiles" in out

    def test_slot_trace_summary(self, tmp_path, capsys):
        path = tmp_path / "slots.jsonl"
        assert main(["trace", "--algorithm", "pure-pull", "--ttr", "2",
                     "--settle", "20", "--measure", "40",
                     "--out", str(path)]) == 0
        capsys.readouterr()
        assert main(["report", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "slot trace:" in out
        assert "slots by kind:" in out
        assert "mean queue depth:" in out

    @staticmethod
    def _report_lines(capsys, path, *extra):
        assert main(["report", "--trace", str(path), *extra]) == 0
        # Drop the header line that names the trace file; everything
        # else must match between the two encodings of the same trace.
        return [line for line in capsys.readouterr().out.splitlines()
                if str(path) not in line]

    def test_request_report_identical_across_formats(self, tmp_path,
                                                     capsys):
        """Acceptance: a JSONL trace and its columnar conversion report
        identical breakdown and quantile tables."""
        jsonl = tmp_path / "req.jsonl"
        assert main(["trace", "--requests", "--algorithm", "ipp",
                     "--ttr", "2", "--settle", "20", "--measure", "60",
                     "--out", str(jsonl)]) == 0
        npy = tmp_path / "req.npy"
        assert main(["convert", str(jsonl), str(npy)]) == 0
        capsys.readouterr()
        from_jsonl = self._report_lines(capsys, jsonl,
                                        "--think-time", "20")
        from_npy = self._report_lines(capsys, npy, "--think-time", "20")
        assert from_npy == from_jsonl
        assert any("measured miss wait quantiles" in line
                   for line in from_npy)

    def test_slot_report_identical_across_formats(self, tmp_path, capsys):
        jsonl = tmp_path / "slots.jsonl"
        assert main(["trace", "--algorithm", "pure-pull", "--ttr", "2",
                     "--settle", "20", "--measure", "40",
                     "--out", str(jsonl)]) == 0
        npy = tmp_path / "slots.npy"
        assert main(["convert", str(jsonl), str(npy)]) == 0
        capsys.readouterr()
        assert (self._report_lines(capsys, npy)
                == self._report_lines(capsys, jsonl))

    def test_empty_columnar_trace(self, tmp_path, capsys):
        from repro.obs.columnar import ColumnarSink

        path = tmp_path / "empty.npy"
        ColumnarSink(path, table="request").close()
        assert main(["report", "--trace", str(path)]) == 2
        assert "empty trace" in capsys.readouterr().out

    def test_unrecognized_trace_records(self, tmp_path, capsys):
        path = tmp_path / "weird.jsonl"
        path.write_text('{"foo": 1}\n')
        assert main(["report", "--trace", str(path)]) == 2
        assert "unrecognized trace record" in capsys.readouterr().err

    def test_empty_trace(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["report", "--trace", str(path)]) == 2
        assert "empty trace" in capsys.readouterr().out


class TestCompareCommand:
    @staticmethod
    def _write(tmp_path, name, data):
        path = tmp_path / name
        path.write_text(json.dumps(data))
        return path

    @staticmethod
    def _figure_dict(mean_shift=0.0):
        from repro.experiments.base import (
            FigureResult, FigureSeries, PointStats,
        )

        def point(mean):
            return PointStats(mean=mean, stddev=1.0, replicates=5,
                              drop_rate=0.0)

        series = [
            FigureSeries("IPP", [10.0, 100.0],
                         [point(5.0 + mean_shift), point(50.0)]),
            FigureSeries("Pull", [10.0, 100.0],
                         [point(2.0), point(80.0)]),
        ]
        return FigureResult(figure_id="t", title="t", x_label="x",
                            y_label="y", series=series).to_dict()

    def test_identical_files_exit_0(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", self._figure_dict())
        b = self._write(tmp_path, "b.json", self._figure_dict())
        assert main(["compare", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "verdict: OK" in out

    def test_drifted_mean_exits_1(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", self._figure_dict())
        b = self._write(tmp_path, "b.json",
                        self._figure_dict(mean_shift=30.0))
        assert main(["compare", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "verdict: DRIFT" in out
        assert "p=" in out

    def test_alpha_knob_accepts_the_shift(self, tmp_path):
        a = self._write(tmp_path, "a.json", self._figure_dict())
        b = self._write(tmp_path, "b.json",
                        self._figure_dict(mean_shift=30.0))
        assert main(["compare", str(a), str(b), "--alpha", "1e-30"]) == 0

    def test_missing_series_exits_2(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", self._figure_dict())
        data = self._figure_dict()
        del data["series"][1]
        b = self._write(tmp_path, "b.json", data)
        assert main(["compare", str(a), str(b)]) == 2
        out = capsys.readouterr().out
        assert "verdict: STRUCTURAL" in out
        assert "'Pull' missing" in out

    def test_series_filter(self, tmp_path):
        a = self._write(tmp_path, "a.json", self._figure_dict())
        b = self._write(tmp_path, "b.json",
                        self._figure_dict(mean_shift=30.0))
        # The shift is on IPP only; restricting to Pull compares clean.
        assert main(["compare", str(a), str(b), "--series", "Pull"]) == 0
        assert main(["compare", str(a), str(b), "--series", "IPP"]) == 1

    def test_load_error_exits_2(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", self._figure_dict())
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["compare", str(a), str(bad)]) == 2
        assert "compare:" in capsys.readouterr().err
        assert main(["compare", str(a), str(tmp_path / "missing.json")]) == 2

    def test_truncated_series_exits_2(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", self._figure_dict())
        data = self._figure_dict()
        data["series"][0]["y"] = data["series"][0]["y"][:1]
        b = self._write(tmp_path, "b.json", data)
        assert main(["compare", str(a), str(b)]) == 2
        assert "field 'y'" in capsys.readouterr().err

    def test_json_format(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", self._figure_dict())
        b = self._write(tmp_path, "b.json",
                        self._figure_dict(mean_shift=30.0))
        assert main(["compare", str(a), str(b), "--format", "json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["verdict"] == "DRIFT"
        assert data["series"][0]["drifts"][0]["metric"] == "mean"

    def test_v1_archive_self_compare(self, capsys):
        """Acceptance: pre-provenance archives compare via the tolerance
        fallback and report clean against themselves."""
        from pathlib import Path

        archived = (Path(__file__).resolve().parents[2]
                    / "results" / "figure_3a.json")
        assert main(["compare", str(archived), str(archived)]) == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_two_real_sweeps_same_seed_compare_clean(self, tmp_path,
                                                     capsys):
        """Acceptance: two QUICK-style runs of the same code and seed
        exit 0; a perturbed mean exits 1; a dropped series exits 2."""
        from repro.experiments import figure_3a
        from repro.experiments.base import Profile

        profile = Profile(settle_accesses=20, measure_accesses=40,
                          replicates=1)
        paths = []
        for name in ("a.json", "b.json"):
            figure = figure_3a(profile, ttrs=(2, 5))
            path = tmp_path / name
            path.write_text(json.dumps(figure.to_dict()))
            paths.append(path)
        assert main(["compare", str(paths[0]), str(paths[1])]) == 0
        out = capsys.readouterr().out
        assert "verdict: OK" in out

        data = json.loads(paths[1].read_text())
        data["series"][0]["y"][0] *= 1.5
        paths[1].write_text(json.dumps(data))
        assert main(["compare", str(paths[0]), str(paths[1])]) == 1

        del data["series"][0]
        paths[1].write_text(json.dumps(data))
        assert main(["compare", str(paths[0]), str(paths[1])]) == 2


class TestProfileCommand:
    def test_prints_phase_table(self, capsys):
        code = main(["profile", "--algorithm", "ipp", "--ttr", "2",
                     "--settle", "20", "--measure", "40"])
        assert code == 0
        out = capsys.readouterr().out
        for phase in ("control", "deliver", "mc_access", "server_tick",
                      "vc_arrivals"):
            assert phase in out
        assert "slots/sec" in out
        assert "response_miss mean" in out


class TestTuneCommand:
    def test_recommends_a_setting(self, capsys):
        code = main(["tune", "--loads", "2", "--pull-bw", "0.5",
                     "--thresh-perc", "0,0.35", "--settle", "20",
                     "--measure", "40"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recommended (worst_case)" in out
        assert "ThresPerc" in out

    def test_mean_objective(self, capsys):
        code = main(["tune", "--loads", "2", "--pull-bw", "0.5",
                     "--thresh-perc", "0", "--objective", "mean",
                     "--settle", "20", "--measure", "40"])
        assert code == 0
        assert "recommended (mean)" in capsys.readouterr().out


class TestFiguresCommand:
    def test_unknown_figure_id(self, capsys):
        assert main(["figures", "nope"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_runs_one_figure_and_writes_json(self, tmp_path, capsys,
                                             monkeypatch):
        # Shrink the quick profile so the test stays fast.
        import repro.cli as cli
        from repro.experiments import figure_3a
        from repro.experiments.base import Profile

        monkeypatch.setattr(
            cli, "QUICK",
            Profile(settle_accesses=20, measure_accesses=40, replicates=1))
        monkeypatch.setattr(
            cli, "ALL_FIGURES",
            {"3a": lambda profile: figure_3a(profile, ttrs=(2, 5))})
        code = main(["figures", "3a", "--json", str(tmp_path), "--chart",
                     "--trace", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 3a" in out
        assert "legend:" in out  # the --chart flag rendered a plot
        data = json.loads((tmp_path / "figure_3a.json").read_text())
        assert data["figure"] == "3a"
        assert len(data["series"]) == 5
        # --trace wrote the figure's representative point as JSONL.
        trace_lines = (tmp_path / "trace_3a.jsonl").read_text().splitlines()
        assert trace_lines
        assert json.loads(trace_lines[0])["slot"] == 0
