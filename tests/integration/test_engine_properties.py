"""Property-based and failure-injection tests of the simulation engines."""

import math

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.algorithms import Algorithm
from repro.core.fast import FastEngine
from tests.conftest import small_config

ENGINE_SETTINGS = settings(
    max_examples=15, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])


@ENGINE_SETTINGS
@given(
    algorithm=st.sampled_from(list(Algorithm)),
    ttr=st.floats(min_value=0.5, max_value=40.0),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_run_invariants(algorithm, ttr, seed):
    """Accounting invariants hold for every algorithm, load, and seed."""
    config = small_config(algorithm,
                          client__think_time_ratio=ttr,
                          run__seed=seed,
                          run__settle_accesses=20,
                          run__measure_accesses=80)
    result = FastEngine(config).run()

    # The measured window contains exactly the configured accesses.
    assert result.mc_hits + result.mc_misses == 80
    assert result.response_all.count == 80
    assert result.response_miss.count == result.mc_misses
    # Response times are non-negative and bounded by the measured window.
    if result.response_miss.count:
        assert result.response_miss.min >= 0
        assert result.response_miss.max <= result.total_slots
    # Hits contribute zeros: the all-access mean is the diluted miss mean.
    if result.mc_misses:
        expected = result.response_miss.mean * result.mc_miss_rate
        assert math.isclose(result.response_all.mean, expected,
                            rel_tol=1e-9, abs_tol=1e-9)
    # Queue accounting balances.
    assert 0.0 <= result.drop_rate <= 1.0
    assert result.requests_served <= result.requests_enqueued + 5
    # Slot accounting matches the algorithm.
    if algorithm is Algorithm.PURE_PULL:
        assert result.slots_push == 0
    if algorithm is Algorithm.PURE_PUSH:
        assert result.slots_pull == 0
        assert result.request_offers == 0


@ENGINE_SETTINGS
@given(
    pull_bw=st.sampled_from((0.1, 0.3, 0.5, 0.9)),
    thresh=st.sampled_from((0.0, 0.25, 0.75)),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_ipp_knobs_never_break_invariants(pull_bw, thresh, seed):
    config = small_config(Algorithm.IPP,
                          server__pull_bw=pull_bw,
                          server__thresh_perc=thresh,
                          run__seed=seed,
                          run__settle_accesses=20,
                          run__measure_accesses=60)
    result = FastEngine(config).run()
    # Pull never exceeds its bandwidth share by much (the MUX coin is an
    # upper bound; sampling noise only).
    assert result.pull_slot_share <= pull_bw + 0.15
    assert result.mc_hits + result.mc_misses == 60


@ENGINE_SETTINGS
@given(seed=st.integers(min_value=0, max_value=1000))
def test_warmup_times_always_monotone(seed):
    config = small_config(Algorithm.IPP, run__seed=seed)
    result = FastEngine(config).run_warmup()
    assert result.warmup_times is not None
    levels = sorted(result.warmup_times)
    times = [result.warmup_times[level] for level in levels]
    assert times == sorted(times)
    assert all(t >= 0 for t in times)


class TestFailureInjection:
    def test_tiny_queue_degrades_gracefully(self):
        """A 1-slot queue drops nearly everything under load but the run
        still completes with sane statistics."""
        config = small_config(Algorithm.IPP,
                              client__think_time_ratio=30.0,
                              server__queue_size=1,
                              run__measure_accesses=150)
        result = FastEngine(config).run()
        assert result.drop_rate > 0.3
        assert result.response_miss.count == result.mc_misses

    def test_starved_pull_bandwidth_still_terminates(self):
        config = small_config(Algorithm.IPP,
                              client__think_time_ratio=30.0,
                              server__pull_bw=0.05,
                              run__measure_accesses=100)
        result = FastEngine(config).run()
        # With 5% pull slots the push program carries nearly everything.
        assert result.slots_push > result.slots_pull

    def test_pathological_skew_terminates(self):
        """θ=2 concentrates nearly all mass on one page; both extremes of
        cache behaviour must still terminate."""
        for cache in (0, 5):
            config = small_config(Algorithm.IPP,
                                  client__zipf_theta=2.0,
                                  client__cache_size=cache,
                                  run__measure_accesses=100)
            result = FastEngine(config).run()
            assert result.mc_hits + result.mc_misses == 100

    def test_uniform_access_terminates(self):
        config = small_config(Algorithm.IPP, client__zipf_theta=0.0,
                              run__measure_accesses=100)
        result = FastEngine(config).run()
        assert result.mc_misses > 0
