"""Unit tests for the Noise perturbation."""

import numpy as np
import pytest

from repro.workload.noise import noisy_probabilities, perturb_ranking
from repro.workload.zipf import zipf_probabilities


class TestPerturbRanking:
    def test_zero_noise_is_identity(self, rng):
        assert perturb_ranking([3, 1, 2], 0.0, rng) == [3, 1, 2]

    def test_full_noise_is_a_permutation(self, rng):
        ranking = list(range(100))
        perturbed = perturb_ranking(ranking, 1.0, rng)
        assert sorted(perturbed) == ranking
        assert perturbed != ranking  # astronomically unlikely to match

    def test_noise_bounds_validated(self, rng):
        with pytest.raises(ValueError):
            perturb_ranking([0, 1], -0.1, rng)
        with pytest.raises(ValueError):
            perturb_ranking([0, 1], 1.5, rng)

    def test_single_page_unchanged(self, rng):
        assert perturb_ranking([7], 1.0, rng) == [7]

    def test_moderate_noise_moves_some_pages(self, rng):
        ranking = list(range(200))
        perturbed = perturb_ranking(ranking, 0.15, rng)
        moved = sum(1 for a, b in zip(ranking, perturbed) if a != b)
        # Each position joins a swap with p=0.15 or gets hit as a partner;
        # expect a substantial but partial shuffle.
        assert 10 <= moved <= 120

    def test_higher_noise_displaces_more(self):
        ranking = list(range(500))
        moved = []
        for noise in (0.15, 0.35):
            rng = np.random.default_rng(5)
            perturbed = perturb_ranking(ranking, noise, rng)
            moved.append(
                sum(1 for a, b in zip(ranking, perturbed) if a != b))
        assert moved[0] < moved[1]

    def test_deterministic_given_seed(self):
        ranking = list(range(50))
        a = perturb_ranking(ranking, 0.35, np.random.default_rng(3))
        b = perturb_ranking(ranking, 0.35, np.random.default_rng(3))
        assert a == b


class TestNoisyProbabilities:
    def test_zero_noise_preserves_vector(self, rng):
        rank_probs = zipf_probabilities(50, 0.95)
        noisy = noisy_probabilities(rank_probs, 0.0, rng)
        assert np.allclose(noisy, rank_probs)

    def test_result_is_probability_vector(self, rng):
        noisy = noisy_probabilities(zipf_probabilities(100, 0.95), 0.35, rng)
        assert noisy.sum() == pytest.approx(1.0)
        assert np.all(noisy > 0)

    def test_multiset_of_probabilities_preserved(self, rng):
        rank_probs = zipf_probabilities(64, 0.95)
        noisy = noisy_probabilities(rank_probs, 0.5, rng)
        assert np.allclose(np.sort(noisy), np.sort(rank_probs))
