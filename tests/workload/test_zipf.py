"""Unit and property tests for the Zipf distribution and sampler."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workload.zipf import ZipfSampler, zipf_probabilities


class TestZipfProbabilities:
    def test_sums_to_one(self):
        probs = zipf_probabilities(1000, 0.95)
        assert probs.sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        probs = zipf_probabilities(100, 0.95)
        assert np.all(np.diff(probs) < 0)

    def test_theta_zero_is_uniform(self):
        probs = zipf_probabilities(10, 0.0)
        assert np.allclose(probs, 0.1)

    def test_known_ratio(self):
        probs = zipf_probabilities(10, 1.0)
        assert probs[0] / probs[1] == pytest.approx(2.0)
        assert probs[0] / probs[9] == pytest.approx(10.0)

    def test_single_page(self):
        assert zipf_probabilities(1, 0.95)[0] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0, 0.95)
        with pytest.raises(ValueError):
            zipf_probabilities(10, -0.1)

    @given(st.integers(min_value=1, max_value=500),
           st.floats(min_value=0.0, max_value=2.0))
    def test_always_a_distribution(self, n, theta):
        probs = zipf_probabilities(n, theta)
        assert probs.shape == (n,)
        assert np.all(probs > 0)
        assert probs.sum() == pytest.approx(1.0)


class TestZipfSampler:
    def test_rejects_bad_inputs(self, rng):
        with pytest.raises(ValueError):
            ZipfSampler(np.array([]), rng)
        with pytest.raises(ValueError):
            ZipfSampler(np.array([0.5, 0.6]), rng)
        with pytest.raises(ValueError):
            ZipfSampler(np.array([0.5, -0.5, 1.0]), rng)

    def test_sample_range(self, rng):
        sampler = ZipfSampler(zipf_probabilities(50, 0.95), rng)
        draws = sampler.sample(10_000)
        assert draws.min() >= 0
        assert draws.max() < 50

    def test_deterministic_given_seed(self):
        probs = zipf_probabilities(20, 0.95)
        a = ZipfSampler(probs, np.random.default_rng(9)).sample(100)
        b = ZipfSampler(probs, np.random.default_rng(9)).sample(100)
        assert np.array_equal(a, b)

    def test_empirical_frequencies_track_probabilities(self, rng):
        probs = zipf_probabilities(10, 0.95)
        sampler = ZipfSampler(probs, rng)
        draws = sampler.sample(200_000)
        counts = np.bincount(draws, minlength=10) / draws.size
        assert np.allclose(counts, probs, atol=0.01)

    def test_sample_one_matches_domain(self, rng):
        sampler = ZipfSampler(zipf_probabilities(5, 0.5), rng)
        for _ in range(100):
            assert 0 <= sampler.sample_one() < 5

    def test_degenerate_distribution(self, rng):
        sampler = ZipfSampler(np.array([0.0, 1.0, 0.0]), rng)
        assert set(sampler.sample(1000).tolist()) == {1}

    @settings(max_examples=20)
    @given(st.integers(min_value=2, max_value=50))
    def test_num_pages_property(self, n):
        sampler = ZipfSampler(zipf_probabilities(n, 0.95),
                              np.random.default_rng(0))
        assert sampler.num_pages == n
