"""Unit tests for buffered access streams and think-time rates."""

import numpy as np
import pytest

from repro.workload.access import AccessStream, think_time_rate
from repro.workload.zipf import ZipfSampler, zipf_probabilities


def make_stream(steady=0.95, seed=1, n=20):
    rng = np.random.default_rng(seed)
    sampler = ZipfSampler(zipf_probabilities(n, 0.95), rng)
    return AccessStream(sampler, steady, rng)


class TestThinkTimeRate:
    def test_paper_rates(self):
        # ThinkTime 20, ratio 250 -> 12.5 requests per broadcast unit.
        assert think_time_rate(20.0, 250.0) == pytest.approx(12.5)
        assert think_time_rate(20.0, 10.0) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            think_time_rate(0.0, 10.0)
        with pytest.raises(ValueError):
            think_time_rate(20.0, 0.0)


class TestAccessStream:
    def test_steady_perc_validated(self):
        rng = np.random.default_rng(0)
        sampler = ZipfSampler(zipf_probabilities(5, 0.5), rng)
        with pytest.raises(ValueError):
            AccessStream(sampler, 1.5, rng)

    def test_next_yields_valid_pages(self):
        stream = make_stream()
        for _ in range(1000):
            page, steady = stream.next()
            assert 0 <= page < 20
            assert isinstance(steady, bool)

    def test_all_steady_when_perc_is_one(self):
        stream = make_stream(steady=1.0)
        assert all(stream.next()[1] for _ in range(500))

    def test_none_steady_when_perc_is_zero(self):
        stream = make_stream(steady=0.0)
        assert not any(stream.next()[1] for _ in range(500))

    def test_steady_fraction_tracks_parameter(self):
        stream = make_stream(steady=0.3, seed=7)
        draws = [stream.next()[1] for _ in range(50_000)]
        assert np.mean(draws) == pytest.approx(0.3, abs=0.02)

    def test_take_matches_protocol(self):
        stream = make_stream(seed=11)
        pages, steady = stream.take(10_000)
        assert pages.shape == steady.shape == (10_000,)
        assert pages.min() >= 0 and pages.max() < 20

    def test_take_negative_rejected(self):
        with pytest.raises(ValueError):
            make_stream().take(-1)

    def test_take_spanning_refills(self):
        stream = make_stream(seed=3)
        # Larger than one internal buffer; must span refills seamlessly.
        pages, steady = stream.take((1 << 16) + 123)
        assert pages.size == (1 << 16) + 123

    def test_deterministic_given_seed(self):
        a = make_stream(seed=42)
        b = make_stream(seed=42)
        for _ in range(100):
            assert a.next() == b.next()
