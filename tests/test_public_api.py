"""The public API surface: exports resolve and the figure registry is
complete."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.broadcast",
    "repro.workload",
    "repro.cache",
    "repro.server",
    "repro.client",
    "repro.core",
    "repro.analysis",
    "repro.experiments",
    "repro.obs",
    "repro.lint",
    "repro.net",
    "repro.fleet",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        assert module.__all__, f"{package} exports nothing"
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    def test_top_level_quickstart_names(self):
        import repro

        for name in ("Algorithm", "SystemConfig", "simulate",
                     "simulate_warmup", "FastEngine", "ReferenceEngine"):
            assert name in repro.__all__

    def test_version(self):
        import repro

        assert repro.__version__.count(".") == 2


class TestFigureRegistry:
    def test_covers_every_paper_figure(self):
        from repro.experiments import ALL_FIGURES

        assert set(ALL_FIGURES) == {
            "3a", "3b", "4a", "4b", "5a", "5b", "6a", "6b", "7a", "7b", "8"}

    def test_entries_are_callable(self):
        from repro.experiments import ALL_FIGURES

        assert all(callable(fn) for fn in ALL_FIGURES.values())
