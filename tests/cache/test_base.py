"""Unit tests for the cache container."""

import pytest

from repro.cache.base import Cache
from repro.cache.lru import LruPolicy


def lru_cache(capacity=3):
    return Cache(capacity, LruPolicy())


class TestCache:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Cache(-1, LruPolicy())

    def test_miss_then_insert_then_hit(self):
        cache = lru_cache()
        assert not cache.access(1)
        assert cache.insert(1) is None
        assert cache.access(1)

    def test_len_and_contains(self):
        cache = lru_cache()
        cache.insert(1)
        cache.insert(2)
        assert len(cache) == 2
        assert 1 in cache and 2 in cache and 3 not in cache

    def test_eviction_at_capacity(self):
        cache = lru_cache(capacity=2)
        cache.insert(1)
        cache.insert(2)
        evicted = cache.insert(3)
        assert evicted == 1  # LRU
        assert len(cache) == 2
        assert 1 not in cache

    def test_insert_resident_page_is_hit_not_duplicate(self):
        cache = lru_cache(capacity=2)
        cache.insert(1)
        assert cache.insert(1) is None
        assert len(cache) == 1

    def test_zero_capacity_drops_inserts(self):
        cache = lru_cache(capacity=0)
        assert cache.insert(1) is None
        assert len(cache) == 0
        assert not cache.access(1)
        assert cache.is_full  # trivially full

    def test_is_full(self):
        cache = lru_cache(capacity=2)
        assert not cache.is_full
        cache.insert(1)
        cache.insert(2)
        assert cache.is_full

    def test_pages_snapshot(self):
        cache = lru_cache()
        cache.insert(1)
        cache.insert(2)
        snapshot = cache.pages
        cache.insert(3)
        assert snapshot == frozenset({1, 2})

    def test_warm_fraction(self):
        cache = lru_cache(capacity=4)
        cache.insert(1)
        cache.insert(2)
        cache.insert(9)
        assert cache.warm_fraction({1, 2, 3, 4}) == pytest.approx(0.5)
        assert cache.warm_fraction(set()) == 1.0
