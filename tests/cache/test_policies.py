"""Unit tests for PIX, P, and LRU replacement policies."""


import pytest

from repro.cache.base import Cache
from repro.cache.lru import LruPolicy
from repro.cache.p import PPolicy
from repro.cache.pix import PixPolicy


class TestPixPolicy:
    def test_paper_example(self):
        """p=0.3/x=4 is ejected before p=0.1/x=1 (Section 2.1)."""
        probs = [0.3, 0.1, 0.6]
        freqs = {0: 4, 1: 1, 2: 2}
        cache = Cache(2, PixPolicy(probs, freqs))
        cache.insert(0)  # pix 0.075
        cache.insert(1)  # pix 0.1
        evicted = cache.insert(2)  # pix 0.3
        assert evicted == 0

    def test_non_broadcast_page_valued_at_slowest_frequency(self):
        """A pull-only page costs at least as much to refetch as the
        slowest pushed page: same x, so probability decides."""
        probs = [0.5, 0.4, 0.45]
        freqs = {0: 1, 1: 1}  # page 2 is pull-only -> effective x = 1
        policy = PixPolicy(probs, freqs)
        assert policy.value(2)[0] == pytest.approx(0.45)
        cache = Cache(2, policy)
        cache.insert(2)
        cache.insert(1)
        assert cache.insert(0) == 1  # p=0.4 loses to the pull-only 0.45

    def test_cold_pull_only_page_is_not_sticky(self):
        """The degenerate freeze-out the naive infinite-value rule causes
        must not happen: a cold chopped page is evicted before hot pages."""
        probs = [0.6, 0.3, 0.1]
        freqs = {0: 2, 1: 1}  # page 2 pull-only, valued at x=1
        cache = Cache(2, PixPolicy(probs, freqs))
        cache.insert(2)
        cache.insert(1)
        assert cache.insert(0) == 2

    def test_tie_break_by_probability(self):
        probs = [0.2, 0.1, 0.3]
        freqs = {0: 1, 1: 1, 2: 1}  # equal frequencies: p decides
        cache = Cache(2, PixPolicy(probs, freqs))
        cache.insert(0)
        cache.insert(2)
        evicted = cache.insert(1)
        assert evicted == 0  # lowest p among the equal-x pages

    def test_reinsertion_after_eviction(self):
        probs = [0.5, 0.3, 0.2]
        freqs = {0: 1, 1: 1, 2: 1}
        cache = Cache(2, PixPolicy(probs, freqs))
        cache.insert(1)
        cache.insert(2)
        assert cache.insert(0) == 2
        assert cache.insert(2) == 1
        assert cache.pages == frozenset({0, 2})

    def test_victim_on_empty_cache_raises(self):
        policy = PixPolicy([1.0], {0: 1})
        with pytest.raises(RuntimeError):
            policy.choose_victim()


class TestPPolicy:
    def test_evicts_lowest_probability(self):
        cache = Cache(2, PPolicy([0.5, 0.3, 0.2]))
        cache.insert(2)
        cache.insert(0)
        assert cache.insert(1) == 2

    def test_ignores_broadcast_frequency(self):
        """P is pure probability — even a never-broadcast page with low p
        is ejected before a hot page."""
        cache = Cache(1, PPolicy([0.9, 0.1]))
        cache.insert(1)
        assert cache.insert(0) == 1


class TestLruPolicy:
    def test_evicts_least_recent(self):
        cache = Cache(2, LruPolicy())
        cache.insert(1, now=0.0)
        cache.insert(2, now=1.0)
        cache.access(1, now=2.0)  # refresh 1
        assert cache.insert(3, now=3.0) == 2

    def test_insertion_counts_as_use(self):
        cache = Cache(2, LruPolicy())
        cache.insert(1)
        cache.insert(2)
        assert cache.insert(3) == 1

    def test_victim_on_empty_cache_raises(self):
        with pytest.raises(RuntimeError):
            LruPolicy().choose_victim()


class TestPoliciesKeepCacheConsistent:
    @pytest.mark.parametrize("make_policy", [
        lambda: PixPolicy([0.4, 0.3, 0.2, 0.1], {0: 2, 1: 2, 2: 1, 3: 1}),
        lambda: PPolicy([0.4, 0.3, 0.2, 0.1]),
        lambda: LruPolicy(),
    ])
    def test_heavy_churn_respects_capacity(self, make_policy, rng):
        cache = Cache(2, make_policy())
        for step in range(500):
            page = int(rng.integers(0, 4))
            if not cache.access(page, now=float(step)):
                cache.insert(page, now=float(step))
            assert len(cache) <= 2
