"""Unit tests for page-value metrics."""


import pytest

from repro.cache.values import page_values, rank_by_probability, top_valued_pages


class TestPageValues:
    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            page_values([0.5, 0.5], {}, metric="wat")

    def test_p_metric_ignores_frequencies(self):
        values = page_values([0.6, 0.4], {0: 10, 1: 1}, metric="p")
        assert values[0] == (0.6, 0.6)
        assert values[1] == (0.4, 0.4)

    def test_pix_metric_divides_by_frequency(self):
        values = page_values([0.6, 0.4], {0: 3, 1: 2}, metric="pix")
        assert values[0][0] == pytest.approx(0.2)
        assert values[1][0] == pytest.approx(0.2)
        # Tie on p/x broken by raw probability.
        assert values[0][1] > values[1][1]

    def test_missing_frequency_uses_slowest_disk(self):
        values = page_values([0.1, 0.4], {0: 4, 1: 2}, metric="pix")
        # Both pages present here; now drop page 1 from the program:
        values = page_values([0.1, 0.4], {0: 4}, metric="pix")
        assert values[1][0] == pytest.approx(0.4 / 4)

    def test_empty_frequencies_fall_back_to_one(self):
        values = page_values([0.1], {}, metric="pix")
        assert values[0][0] == pytest.approx(0.1)

    def test_none_frequencies_degrade_to_p(self):
        values = page_values([0.7, 0.3], None, metric="pix")
        assert values[0] == (0.7, 0.7)


class TestTopValuedPages:
    def test_p_metric_takes_hottest(self):
        top = top_valued_pages([0.1, 0.5, 0.4], None, 2, metric="p")
        assert top == frozenset({1, 2})

    def test_pix_metric_prefers_slow_pages(self):
        # Page 0 is hot but rebroadcast constantly; page 2 is cool but rare.
        probs = [0.5, 0.3, 0.2]
        freqs = {0: 10, 1: 2, 2: 1}
        top = top_valued_pages(probs, freqs, 2, metric="pix")
        assert top == frozenset({1, 2})

    def test_count_zero(self):
        assert top_valued_pages([1.0], {0: 1}, 0) == frozenset()

    def test_count_negative_rejected(self):
        with pytest.raises(ValueError):
            top_valued_pages([1.0], {0: 1}, -1)

    def test_pull_only_pages_compete_at_slowest_frequency(self):
        probs = [0.4, 0.3, 0.2, 0.1]
        freqs = {0: 1, 1: 1}  # pages 2, 3 pull-only -> effective x = 1
        top = top_valued_pages(probs, freqs, 2, metric="pix")
        # With equal effective frequencies, hotness decides.
        assert top == frozenset({0, 1})


class TestRankByProbability:
    def test_orders_hottest_first(self):
        assert rank_by_probability([0.1, 0.7, 0.2]) == [1, 2, 0]

    def test_stable_for_ties(self):
        assert rank_by_probability([0.4, 0.4, 0.2]) == [0, 1, 2]
