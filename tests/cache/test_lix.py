"""Unit tests for the LIX online approximation of PIX."""

import numpy as np
import pytest

from repro.cache.base import Cache
from repro.cache.lix import LixPolicy
from repro.cache.pix import PixPolicy
from repro.workload.zipf import ZipfSampler, zipf_probabilities


class TestLixPolicy:
    def test_smoothing_validated(self):
        with pytest.raises(ValueError):
            LixPolicy({}, smoothing=0.0)
        with pytest.raises(ValueError):
            LixPolicy({}, smoothing=1.5)

    def test_victim_on_empty_cache_raises(self):
        with pytest.raises(RuntimeError):
            LixPolicy({0: 1}).choose_victim()

    def test_prefers_evicting_frequently_broadcast_pages(self):
        """Two pages accessed at the same rate: the one rebroadcast more
        often is cheaper to refetch and goes first."""
        policy = LixPolicy({0: 4, 1: 1})
        cache = Cache(2, policy)
        cache.insert(0, now=0.0)
        cache.insert(1, now=0.0)
        for t in (1.0, 2.0, 3.0):
            cache.access(0, now=t)
            cache.access(1, now=t)
        assert policy.choose_victim() == 0

    def test_rarely_accessed_page_evicted_within_chain(self):
        policy = LixPolicy({0: 1, 1: 1})
        cache = Cache(2, policy)
        cache.insert(0, now=0.0)
        cache.insert(1, now=0.0)
        for t in range(1, 20):
            cache.access(0, now=float(t))  # page 0 is hot
        cache.access(1, now=30.0)          # page 1 touched once, late
        cache.access(0, now=31.0)
        assert policy.choose_victim() == 1

    def test_pull_only_page_joins_slowest_chain(self):
        # Page 1 is pull-only; it competes at the slowest present
        # frequency (2) instead of being frozen into the cache.
        policy = LixPolicy({0: 2})
        cache = Cache(2, policy)
        cache.insert(1, now=0.0)
        cache.insert(0, now=0.0)
        for t in (1.0, 2.0, 3.0):
            cache.access(0, now=t)  # page 0 is clearly hotter
        cache.access(1, now=10.0)
        cache.access(0, now=11.0)
        assert policy.choose_victim() == 1

    def test_eviction_churn_respects_capacity(self, rng):
        policy = LixPolicy({p: 1 + p % 3 for p in range(10)})
        cache = Cache(3, policy)
        for step in range(2000):
            page = int(rng.integers(0, 10))
            if not cache.access(page, now=float(step)):
                cache.insert(page, now=float(step))
            assert len(cache) <= 3

    def test_lix_approximates_pix_hit_rate(self):
        """On a skewed workload with known probabilities, LIX's hit rate
        should land near PIX's (the [Acha95b] claim)."""
        probs = zipf_probabilities(40, 0.95)
        freqs = {p: (3 if p < 8 else 1) for p in range(40)}

        def run(policy):
            rng = np.random.default_rng(123)
            sampler = ZipfSampler(probs, rng)
            cache = Cache(8, policy)
            hits = 0
            for step in range(30_000):
                page = sampler.sample_one()
                if cache.access(page, now=float(step)):
                    hits += 1
                else:
                    cache.insert(page, now=float(step))
            return hits / 30_000

        pix_rate = run(PixPolicy(probs, freqs))
        lix_rate = run(LixPolicy(freqs))
        assert lix_rate >= pix_rate * 0.8
