"""Parameter-setting advisor — the paper's other future-work tool (§6).

    "Beyond what was presented, we would like to develop tools to make the
    parameter setting decisions for real dissemination-based information
    systems easier."

The paper's own conclusion is that the pure algorithms excel only inside
their niche load ranges, while a well-tuned IPP "can provide reasonably
good performance over the complete range of system loads".  This module
operationalizes that: given the load range a deployment must survive,
sweep the (PullBW, ThresPerc, chop) knob grid and recommend the setting
that minimizes the *worst-case* response time across the range (ties
broken by the mean) — exactly the consistency objective of Section 4.4.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.core.algorithms import Algorithm
from repro.core.config import SystemConfig
from repro.experiments.base import Profile, run_replicated

__all__ = ["TuningSpec", "Candidate", "TuningReport", "recommend"]


@dataclass(frozen=True)
class TuningSpec:
    """What to sweep and what to optimize for."""

    #: The ThinkTimeRatio range the deployment must handle.
    loads: tuple[float, ...] = (10.0, 50.0, 250.0)
    #: Candidate PullBW settings.
    pull_bw_grid: tuple[float, ...] = (0.30, 0.50)
    #: Candidate ThresPerc settings.
    thresh_grid: tuple[float, ...] = (0.0, 0.25, 0.35)
    #: Candidate chop depths (pages removed from the push program).
    chop_grid: tuple[int, ...] = (0,)
    #: "worst_case" (the paper's consistency goal) or "mean".
    objective: str = "worst_case"

    def __post_init__(self):
        if not self.loads:
            raise ValueError("loads must be non-empty")
        if self.objective not in ("worst_case", "mean"):
            raise ValueError(f"unknown objective {self.objective!r}")
        if not (self.pull_bw_grid and self.thresh_grid and self.chop_grid):
            raise ValueError("every knob grid must be non-empty")


@dataclass(frozen=True)
class Candidate:
    """One knob setting with its measured response-time profile."""

    pull_bw: float
    thresh_perc: float
    chop: int
    #: Mean miss response time per load, aligned with the spec's loads.
    response_times: tuple[float, ...]

    @property
    def worst_case(self) -> float:
        """Largest response time across the load range."""
        return max(self.response_times)

    @property
    def mean(self) -> float:
        """Mean response time across the load range."""
        return statistics.fmean(self.response_times)

    def describe(self) -> str:
        """Human-readable knob setting."""
        return (f"PullBW={self.pull_bw:.0%} ThresPerc={self.thresh_perc:.0%}"
                + (f" chop={self.chop}" if self.chop else ""))


@dataclass
class TuningReport:
    """Ranked outcome of a tuning sweep."""

    spec: TuningSpec
    #: Candidates sorted best-first by the spec's objective.
    candidates: list[Candidate] = field(default_factory=list)

    @property
    def best(self) -> Candidate:
        """The top-ranked setting (raises on an empty report)."""
        if not self.candidates:
            raise ValueError("empty tuning report")
        return self.candidates[0]

    def format(self) -> str:
        """Render the ranking as a monospace table."""
        header = (f"{'setting':<38}"
                  + "".join(f"{f'TTR {load:g}':>11}"
                            for load in self.spec.loads)
                  + f"{'worst':>11}{'mean':>11}")
        lines = [header, "-" * len(header)]
        for candidate in self.candidates:
            cells = "".join(f"{rt:>11.1f}" for rt in candidate.response_times)
            lines.append(f"{candidate.describe():<38}{cells}"
                         f"{candidate.worst_case:>11.1f}"
                         f"{candidate.mean:>11.1f}")
        lines.append(f"\nrecommended ({self.spec.objective}): "
                     f"{self.best.describe()}")
        return "\n".join(lines)


def _score(candidate: Candidate, objective: str) -> tuple[float, float]:
    if objective == "worst_case":
        return (candidate.worst_case, candidate.mean)
    return (candidate.mean, candidate.worst_case)


def recommend(base: SystemConfig, spec: TuningSpec,
              profile: Profile) -> TuningReport:
    """Sweep the knob grid over the load range and rank the settings.

    ``base`` supplies everything except the swept knobs; it must be an
    IPP configuration (the pure algorithms have no knobs to tune — run
    them as degenerate grids if a comparison is wanted).
    """
    if base.algorithm is not Algorithm.IPP:
        raise ValueError("tuning sweeps IPP's knobs; pass an IPP config")
    candidates = []
    for chop in spec.chop_grid:
        for pull_bw in spec.pull_bw_grid:
            for thresh in spec.thresh_grid:
                response_times = []
                for load in spec.loads:
                    config = base.with_(
                        client__think_time_ratio=load,
                        server__pull_bw=pull_bw,
                        server__thresh_perc=thresh,
                        server__chop=chop,
                    )
                    response_times.append(
                        run_replicated(config, profile).mean)
                candidates.append(Candidate(
                    pull_bw=pull_bw, thresh_perc=thresh, chop=chop,
                    response_times=tuple(response_times)))
    candidates.sort(key=lambda c: _score(c, spec.objective))
    return TuningReport(spec=spec, candidates=candidates)
