"""Discrete-event simulation kernel.

This subpackage is a from-scratch replacement for the CSIM library used by
the paper (and for simpy, which is unavailable offline).  It provides:

- :class:`~repro.sim.core.Environment` — the event calendar and clock,
- :class:`~repro.sim.core.Event` / :class:`~repro.sim.core.Timeout` —
  one-shot occurrences that processes can wait on,
- :class:`~repro.sim.process.Process` — generator-based coroutine processes
  with interrupt support,
- :mod:`~repro.sim.resources` — FIFO stores and capacity-limited resources,
- :mod:`~repro.sim.monitor` — tally and time-weighted statistics.

The kernel is deterministic: events scheduled for the same time fire in
scheduling order (FIFO), so a seeded simulation always replays identically.
"""

from repro.sim.core import Environment, Event, Timeout, SimulationError
from repro.sim.process import Process, Interrupt
from repro.sim.resources import Store, Resource, StoreFull
from repro.sim.monitor import Tally, TimeWeighted

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "SimulationError",
    "Process",
    "Interrupt",
    "Store",
    "Resource",
    "StoreFull",
    "Tally",
    "TimeWeighted",
]
