"""Generator-based coroutine processes for the discrete-event kernel.

A process is a Python generator that yields :class:`~repro.sim.core.Event`
objects.  Yielding suspends the process until the event fires; the event's
value becomes the result of the ``yield`` expression.  A failed event is
raised inside the generator.  A process is itself an event that fires with
the generator's return value, so processes can wait on each other.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.sim.core import Environment, Event, SimulationError, URGENT

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    The ``cause`` passed to :meth:`Process.interrupt` is available as
    ``exc.cause``.
    """

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0] if self.args else None


class Process(Event):
    """A running simulation process wrapping a generator.

    Create via :meth:`Environment.process`.  The process starts at the
    current simulation time (before other events already scheduled *later*,
    after events already scheduled now).
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, env: Environment, generator: Generator[Event, Any, Any]):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__}")
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Event | None = None
        # Kick-start the process via an immediately-scheduled initial event.
        start = Event(env)
        start._triggered = True
        env._schedule(start, priority=URGENT)
        start.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on remains pending; the process
        may re-wait on it after handling the interrupt.
        """
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        if getattr(self.env, "_active_process", None) is self:
            raise SimulationError("a process cannot interrupt itself")
        wakeup = Event(self.env)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        wakeup._triggered = True
        self.env._schedule(wakeup, priority=URGENT)
        # Detach from the event we were waiting on so its eventual firing
        # does not resume us twice.
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        wakeup.add_callback(self._resume)

    # -- internal ------------------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        self.env._active_process = self
        try:
            self._step(trigger)
        finally:
            self.env._active_process = None

    def _step(self, trigger: Event) -> None:
        while True:
            try:
                if trigger.ok:
                    target = self._generator.send(trigger.value)
                else:
                    target = self._generator.throw(trigger.value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:
                # A crashed process fails its own event; if nobody is
                # waiting on the process the error propagates out of run().
                if self.callbacks:
                    self.fail(exc)
                    return
                raise
            if not isinstance(target, Event):
                trigger = Event(self.env)
                trigger._ok = False
                trigger._value = SimulationError(
                    f"process yielded a non-event: {target!r}")
                trigger._triggered = True
                continue
            if target.processed:
                # Already-fired events resume the process synchronously.
                trigger = target
                continue
            self._waiting_on = target
            target.add_callback(self._resume)
            return
