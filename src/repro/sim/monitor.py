"""Statistics collectors for simulation output.

:class:`Tally` accumulates per-observation statistics (response times);
:class:`TimeWeighted` integrates a piecewise-constant signal over simulated
time (queue lengths, occupancy).  Both use numerically stable streaming
updates (Welford) so million-observation runs stay accurate.
"""

from __future__ import annotations

import math

__all__ = ["Tally", "TimeWeighted"]


class Tally:
    """Streaming count / mean / variance / extrema of observations."""

    __slots__ = ("count", "_mean", "_m2", "min", "max")

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        """Record one observation.

        Non-finite values raise: a NaN would silently poison ``_mean`` /
        ``_m2`` while the ``min``/``max`` comparisons stay false, leaving
        an inconsistent snapshot long after the bad observation.
        """
        if not math.isfinite(value):
            raise ValueError(f"non-finite observation {value!r}")
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def add_weighted(self, value: float, weight: float) -> None:
        """Record one observation carrying a frequency weight.

        West's (1979) weighted Welford update: the observation counts as
        ``weight`` identical samples, so inverse-probability corrected
        streams (sampled request traces) estimate the full-population
        mean/variance.  ``count`` becomes the total weight — fractional
        when weights are — and the n-1 variance denominator is then the
        usual frequency-weight convention.  This is a separate method
        (not a ``weight=1`` default on :meth:`add`) so the unweighted
        path keeps its exact ``delta / count`` rounding: multiplying by
        ``weight / count`` rounds differently and would break
        bit-identical unsampled runs.
        """
        if not math.isfinite(value):
            raise ValueError(f"non-finite observation {value!r}")
        if not weight > 0:
            raise ValueError("weight must be positive")
        self.count += weight
        delta = value - self._mean
        self._mean += delta * weight / self.count
        self._m2 += weight * delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @classmethod
    def from_moments(cls, count: float, mean: float, m2: float,
                     min_: float, max_: float) -> "Tally":
        """A tally pre-loaded with batch moments (for vectorized feeds).

        ``m2`` is the sum of squared deviations from ``mean`` (the Welford
        accumulator), so batch producers can compute the moments with one
        numpy pass and fold them in via :meth:`merge` — exact Chan et al.,
        identical to having streamed every observation.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        tally = cls()
        if count == 0:
            return tally
        for name, value in (("mean", mean), ("m2", m2),
                            ("min", min_), ("max", max_)):
            if not math.isfinite(value):
                raise ValueError(f"non-finite batch {name} {value!r}")
        tally.count = count
        tally._mean = mean
        tally._m2 = m2
        tally.min = min_
        tally.max = max_
        return tally

    def merge(self, other: "Tally") -> None:
        """Fold another tally's observations into this one."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min, self.max = other.min, other.max
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._mean += delta * other.count / total
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        """Arithmetic mean (NaN when empty)."""
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        if self.count < 2:
            return math.nan
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation (NaN below two observations)."""
        variance = self.variance
        return math.sqrt(variance) if variance == variance else math.nan

    def as_dict(self) -> dict:
        """Plain-dict summary (the form the metrics registry exports)."""
        empty = self.count == 0
        return {
            "count": self.count,
            "mean": self.mean,
            "stddev": self.stddev,
            "min": math.nan if empty else self.min,
            "max": math.nan if empty else self.max,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Tally(count={self.count}, mean={self.mean:.4g}, "
                f"min={self.min:.4g}, max={self.max:.4g})")


class TimeWeighted:
    """Time-average of a piecewise-constant signal.

    Call :meth:`update` whenever the signal changes; :attr:`mean` is the
    integral divided by elapsed time.
    """

    __slots__ = ("_start", "_last_time", "_value", "_area", "max")

    def __init__(self, time: float = 0.0, value: float = 0.0):
        self._start = time
        self._last_time = time
        self._value = value
        self._area = 0.0
        self.max = value

    @property
    def value(self) -> float:
        """Current level of the signal."""
        return self._value

    def update(self, time: float, value: float) -> None:
        """Record that the signal changed to ``value`` at ``time``."""
        if time < self._last_time:
            raise ValueError("time moved backwards")
        self._area += self._value * (time - self._last_time)
        self._last_time = time
        self._value = value
        if value > self.max:
            self.max = value

    def mean(self, now: float | None = None) -> float:
        """Time-average from construction to ``now`` (default: last update)."""
        end = self._last_time if now is None else now
        if end < self._last_time:
            raise ValueError("now precedes the last recorded update")
        elapsed = end - self._start
        if elapsed == 0:
            return self._value
        area = self._area + self._value * (end - self._last_time)
        return area / elapsed

    def as_dict(self, now: float | None = None) -> dict:
        """Plain-dict summary for observability exports."""
        return {"value": self._value, "mean": self.mean(now),
                "max": self.max}
