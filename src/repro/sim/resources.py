"""Waitable resources for the discrete-event kernel.

Two primitives cover everything the broadcast model needs:

- :class:`Store` — a FIFO buffer of items with optional capacity; ``get``
  events fire when an item is available, ``put`` events when space exists.
- :class:`Resource` — a counted resource (e.g. a server with *n* service
  slots) with a FIFO wait queue.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.sim.core import Environment, Event

__all__ = ["Store", "Resource", "StoreFull"]


class StoreFull(Exception):
    """Raised by :meth:`Store.put_nowait` when the store is at capacity."""


class Store:
    """A FIFO item buffer with optional bounded capacity.

    ``put(item)`` and ``get()`` return events.  A ``put`` on a full store
    waits until space frees; :meth:`put_nowait` raises instead (used to model
    the paper's drop-on-full server queue at a higher level).
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        """True when the buffer is at capacity."""
        return len(self.items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Event that fires once ``item`` has been accepted."""
        event = Event(self.env)
        self._putters.append((event, item))
        self._dispatch()
        return event

    def put_nowait(self, item: Any) -> None:
        """Accept ``item`` immediately or raise :class:`StoreFull`."""
        if self._getters:
            # A waiting consumer takes the item directly.
            getter = self._getters.popleft()
            getter.succeed(item)
            return
        if self.is_full:
            raise StoreFull(f"store at capacity {self.capacity}")
        self.items.append(item)

    def get(self) -> Event:
        """Event that fires with the oldest available item."""
        event = Event(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Move queued puts into the buffer while capacity allows.
            while self._putters and not self.is_full:
                put_event, item = self._putters.popleft()
                self.items.append(item)
                put_event.succeed()
                progressed = True
            # Satisfy waiting getters from the buffer.
            while self._getters and self.items:
                self._getters.popleft().succeed(self.items.popleft())
                progressed = True


class Resource:
    """A counted resource with FIFO queueing.

    ``request()`` returns an event firing when a unit is granted; call
    :meth:`release` exactly once per granted request.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Units currently granted."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Requests waiting for a unit."""
        return len(self._waiters)

    def request(self) -> Event:
        """Event firing when a unit is granted (FIFO order)."""
        event = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return a granted unit, waking the next waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError("release() without a matching request()")
        if self._waiters:
            # Hand the unit straight to the next waiter.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1
