"""Event calendar and clock for the discrete-event kernel.

The design follows the classic event-scheduling world view: an
:class:`Environment` owns a priority queue of ``(time, priority, seq, event)``
entries and fires events in nondecreasing time order.  Ties are broken first
by an explicit integer priority (lower fires earlier) and then by scheduling
order, which makes runs fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional

__all__ = ["Environment", "Event", "Timeout", "AnyOf", "AllOf", "SimulationError"]

#: Default priority for ordinary events.
NORMAL = 1
#: Priority used by :class:`~repro.sim.process.Process` wake-ups so that a
#: process resumed by an event runs after same-time ordinary callbacks.
URGENT = 0


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double triggering, running a dead env...)."""


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    An event goes through three states: *pending* (created), *triggered*
    (scheduled on the calendar with a value), and *processed* (callbacks have
    run).  Waiting on an already-processed event is allowed: the waiter is
    resumed immediately at the current simulation time.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok = True
        self._triggered = False
        self._processed = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (False once :meth:`fail` is called)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event was triggered with."""
        if not self._triggered:
            raise SimulationError("value accessed before the event triggered")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self._triggered:
            raise SimulationError("event has already been triggered")
        self._triggered = True
        self._value = value
        self.env._schedule(self, delay=delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire as a failure carrying ``exception``.

        A waiting process receives the exception thrown into its generator.
        """
        if self._triggered:
            raise SimulationError("event has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._schedule(self, delay=delay)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires.

        If the event was already processed the callback runs immediately.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def _fire(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.env.now}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` time units in the future.

    ``priority`` breaks same-instant ties: :data:`URGENT` timeouts fire
    before every :data:`NORMAL` event scheduled for the same time,
    regardless of scheduling order.
    """

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None,
                 priority: int = NORMAL):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(env)
        self._triggered = True
        self._value = value
        env._schedule(self, delay=delay, priority=priority)


class _CompositeEvent(Event):
    """Shared machinery for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("_events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._pending = len(self._events)
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> dict[Event, Any]:
        return {e: e.value for e in self._events if e.processed and e.ok}


class AnyOf(_CompositeEvent):
    """Fires when the first of ``events`` fires; value maps event -> value."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
        else:
            self.succeed(self._collect())


class AllOf(_CompositeEvent):
    """Fires when all of ``events`` have fired; value maps event -> value."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class Environment:
    """The simulation clock and event calendar.

    Usage::

        env = Environment()
        env.process(my_generator(env))
        env.run(until=1000.0)
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        #: The process currently executing (guards self-interrupt).
        self._active_process = None

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None,
                priority: int = NORMAL) -> Timeout:
        """Create an event firing ``delay`` units from now."""
        return Timeout(self, delay, value, priority=priority)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when every one of ``events`` has fired."""
        return AllOf(self, events)

    def process(self, generator) -> "Process":
        """Start a new :class:`~repro.sim.process.Process` from a generator."""
        from repro.sim.process import Process

        return Process(self, generator)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = NORMAL) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Fire the single next event (advancing the clock to it)."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        time, _, _, event = heapq.heappop(self._queue)
        self._now = time
        event._fire()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the calendar drains or the clock reaches ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if no event is scheduled there, mirroring simpy semantics.
        """
        if until is None:
            while self._queue:
                self.step()
            return
        until = float(until)
        if until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= until:
            self.step()
        self._now = until
