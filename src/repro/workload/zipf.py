"""Zipf access distributions.

The paper models skewed client access with a Zipf distribution ([Knut81])
over the ``ServerDBSize`` pages: the page of rank *i* (1-based, hottest
first) has probability proportional to ``1 / i**theta``.  Page ids are
0-based here; by convention page id equals rank-1 for the *virtual* client,
while the measured client's ranking may be perturbed by Noise.
"""

from __future__ import annotations

import numpy as np

__all__ = ["zipf_probabilities", "ZipfSampler"]


def zipf_probabilities(num_pages: int, theta: float) -> np.ndarray:
    """Normalized Zipf(θ) probabilities, hottest first.

    ``theta = 0`` degenerates to uniform access; larger values skew harder.
    """
    if num_pages < 1:
        raise ValueError("num_pages must be positive")
    if theta < 0:
        raise ValueError("theta must be non-negative")
    ranks = np.arange(1, num_pages + 1, dtype=np.float64)
    weights = ranks ** -theta
    return weights / weights.sum()


class ZipfSampler:
    """Batched sampler for an arbitrary discrete page distribution.

    Sampling is inverse-CDF via ``searchsorted``, which keeps million-draw
    batches cheap and makes the draw order independent of the probability
    vector's internal layout (important for seeded reproducibility across
    noise settings).
    """

    def __init__(self, probabilities: np.ndarray, rng: np.random.Generator):
        probabilities = np.asarray(probabilities, dtype=np.float64)
        if probabilities.ndim != 1 or probabilities.size == 0:
            raise ValueError("probabilities must be a non-empty 1-D array")
        if np.any(probabilities < 0):
            raise ValueError("probabilities must be non-negative")
        total = probabilities.sum()
        if not np.isclose(total, 1.0, rtol=1e-9, atol=1e-12):
            raise ValueError(f"probabilities must sum to 1, got {total}")
        self.probabilities = probabilities
        self._cdf = np.cumsum(probabilities)
        # Guard against floating-point shortfall at the top of the CDF.
        self._cdf[-1] = 1.0
        self._rng = rng

    @property
    def num_pages(self) -> int:
        """Size of the page domain."""
        return self.probabilities.size

    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` page ids as an int64 array."""
        uniforms = self._rng.random(size)
        return np.searchsorted(self._cdf, uniforms, side="right")

    def sample_one(self) -> int:
        """Draw a single page id."""
        return int(np.searchsorted(self._cdf, self._rng.random(),
                                   side="right"))
