"""The Noise perturbation of the measured client's access pattern.

The broadcast program is generated from the *aggregate* (virtual client)
access pattern, so it is "very likely sub-optimal for any single client"
(Section 3.1).  ``Noise`` measures how far the measured client's pattern
diverges: with ``Noise = 0`` the MC and VC rankings agree exactly; as Noise
grows, an increasing fraction of the MC's ranking positions are swapped
with randomly chosen positions, following the systematic perturbation of
[Acha95a].
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["perturb_ranking", "noisy_probabilities"]


def perturb_ranking(ranking: Sequence[int], noise: float,
                    rng: np.random.Generator) -> list[int]:
    """Swap each ranking position with a random one with probability ``noise``.

    Args:
        ranking: hottest-first page ordering (the VC / server view).
        noise: probability in [0, 1] that a given position participates in
            a swap (the paper's ``Noise`` expressed as a fraction).
        rng: seeded random generator.

    Returns:
        A new, perturbed hottest-first ordering for the measured client.
    """
    if not 0.0 <= noise <= 1.0:
        raise ValueError(f"noise must be within [0, 1], got {noise}")
    perturbed = list(ranking)
    if noise == 0.0 or len(perturbed) < 2:
        return perturbed
    n = len(perturbed)
    swap_mask = rng.random(n) < noise
    partners = rng.integers(0, n, size=n)
    for i in range(n):
        if swap_mask[i]:
            j = int(partners[i])
            perturbed[i], perturbed[j] = perturbed[j], perturbed[i]
    return perturbed


def noisy_probabilities(rank_probabilities: np.ndarray, noise: float,
                        rng: np.random.Generator) -> np.ndarray:
    """Per-page probabilities for an MC whose ranking is Noise-perturbed.

    ``rank_probabilities[r]`` is the probability a client assigns to its
    rank-``r`` page (e.g. a Zipf vector).  The VC maps rank *r* to page *r*;
    the MC maps rank *r* to ``perturbed[r]``.  The result is indexed by
    page id.
    """
    rank_probabilities = np.asarray(rank_probabilities, dtype=np.float64)
    num_pages = rank_probabilities.size
    perturbed = perturb_ranking(range(num_pages), noise, rng)
    by_page = np.empty(num_pages, dtype=np.float64)
    for rank, page in enumerate(perturbed):
        by_page[page] = rank_probabilities[rank]
    return by_page
