"""Client workload generation.

- :mod:`~repro.workload.zipf` — the Zipf(θ) access distribution the paper
  uses for both the measured and the virtual client (θ = 0.95, Table 3),
- :mod:`~repro.workload.noise` — the Noise perturbation of [Acha95a] that
  makes the measured client's access pattern disagree with the broadcast,
- :mod:`~repro.workload.access` — batched access-stream samplers and
  think-time draws shared by the simulation engines.
"""

from repro.workload.zipf import zipf_probabilities, ZipfSampler
from repro.workload.noise import perturb_ranking, noisy_probabilities
from repro.workload.access import AccessStream, think_time_rate

__all__ = [
    "zipf_probabilities",
    "ZipfSampler",
    "perturb_ranking",
    "noisy_probabilities",
    "AccessStream",
    "think_time_rate",
]
