"""Access-stream machinery shared by the simulation engines.

:class:`AccessStream` wraps a :class:`~repro.workload.zipf.ZipfSampler`
plus the coins the virtual client needs (steady-state vs warm-up), drawing
everything in large pre-filled buffers so the per-request cost inside the
hot simulation loop is a couple of list indexing operations.
"""

from __future__ import annotations

import numpy as np

from repro.workload.zipf import ZipfSampler

__all__ = ["AccessStream", "think_time_rate"]

#: Pre-draw buffer length.  Large enough to amortize numpy call overhead,
#: small enough to keep memory trivial.
_BUFFER_SIZE = 1 << 16


def think_time_rate(mc_think_time: float, think_time_ratio: float) -> float:
    """Virtual-client request rate in requests per broadcast unit.

    The VC draws think times from an exponential distribution with mean
    ``MCThinkTime / ThinkTimeRatio`` (Section 3.1), i.e. it is a Poisson
    request source of this rate.
    """
    if mc_think_time <= 0:
        raise ValueError("mc_think_time must be positive")
    if think_time_ratio <= 0:
        raise ValueError("think_time_ratio must be positive")
    return think_time_ratio / mc_think_time


class AccessStream:
    """Buffered stream of (page, steady?) access draws.

    Used by the fast engine's virtual client: each call to :meth:`next`
    returns one page id and whether the issuing (virtual) client is in
    steady state — decided by a coin weighted by ``steady_state_perc``.
    """

    def __init__(self, sampler: ZipfSampler, steady_state_perc: float,
                 rng: np.random.Generator):
        if not 0.0 <= steady_state_perc <= 1.0:
            raise ValueError("steady_state_perc must be within [0, 1]")
        self._sampler = sampler
        self._steady_perc = steady_state_perc
        self._rng = rng
        # Buffers are plain Python lists: scalar indexing of a list is
        # several times faster than indexing a numpy array, and the hot
        # simulation loop consumes these one draw at a time.
        self._pages: list[int] = []
        self._steady: list[bool] = []
        self._cursor = 0

    def _refill(self) -> None:
        self._pages = self._sampler.sample(_BUFFER_SIZE).tolist()
        if self._steady_perc >= 1.0:
            self._steady = [True] * _BUFFER_SIZE
        elif self._steady_perc <= 0.0:
            self._steady = [False] * _BUFFER_SIZE
        else:
            self._steady = (
                self._rng.random(_BUFFER_SIZE) < self._steady_perc).tolist()
        self._cursor = 0

    def next(self) -> tuple[int, bool]:
        """Next (page id, is_steady_state) pair."""
        if self._cursor >= len(self._pages):
            self._refill()
        index = self._cursor
        self._cursor = index + 1
        return self._pages[index], self._steady[index]

    def take(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Take ``count`` draws at once (pages array, steady mask)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        pages: list[int] = []
        steady: list[bool] = []
        while len(pages) < count:
            if self._cursor >= len(self._pages):
                self._refill()
            chunk = min(len(self._pages) - self._cursor, count - len(pages))
            pages.extend(self._pages[self._cursor:self._cursor + chunk])
            steady.extend(self._steady[self._cursor:self._cursor + chunk])
            self._cursor += chunk
        return np.asarray(pages, dtype=np.int64), np.asarray(steady, dtype=bool)
