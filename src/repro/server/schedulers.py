"""Pull-queue scheduling disciplines and push-program reprogramming.

The paper serves the backchannel queue strictly FIFO (Section 3.2) and
keeps the push program fixed for a whole run; §6 explicitly calls for
"more dynamic algorithms".  This module opens both axes behind one small
interface:

- :class:`PullScheduler` — the hook surface a
  :class:`~repro.server.queue.BoundedRequestQueue` drives: ``offer``-side
  hooks receive every request's arrival slot (building per-page waiter
  counts and per-request arrival lists), and :meth:`PullScheduler.select`
  picks which queued page the next pull slot serves.
- :class:`FifoScheduler` — the paper's discipline, bit-identical to the
  pre-refactor queue: no extra state, no RNG draws, always the head.
- :class:`RxWScheduler` — Aksoy & Franklin's R×W: serve the page with the
  largest ``waiters × wait``; an ``aging`` exponent on the wait term
  interpolates between most-requested-first (``aging → 0``) and
  longest-first-wait (large ``aging``), the knob the Robert & Schabanel
  per-user flow-time objective tunes.
- :class:`LwfScheduler` — longest *total accumulated* wait first: the
  page whose outstanding requests (duplicates included) have together
  waited longest.  Distinct from FIFO, which only honours each page's
  first arrival.
- :class:`PushReprogrammer` — temperature-driven online rebuild of the
  push program: rank pages by observed backchannel demand and rebuild the
  multi-disk schedule so the pages clients actually wait for move to the
  fast disks.

Determinism: no discipline consumes randomness, and ties break in FIFO
order (strict ``>`` while scanning the queue front-to-back), so runs stay
bit-reproducible per seed and the FIFO discipline reproduces historic
baselines exactly.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.broadcast.program import DiskAssignment, build_schedule
from repro.broadcast.schedule import Schedule

__all__ = [
    "DISCIPLINES",
    "PullScheduler",
    "FifoScheduler",
    "RxWScheduler",
    "LwfScheduler",
    "PushReprogrammer",
    "make_scheduler",
]

#: Selectable pull-queue disciplines (``SchedulerConfig.discipline``).
#: Mirrors ``repro.obs.events.SCHEDULER_DISCIPLINES`` (lint rule REP005
#: enforces the sync without a runtime import).
DISCIPLINES: tuple[str, ...] = ("fifo", "rxw", "lwf")


class PullScheduler:
    """Base discipline: the hook surface the bounded queue drives.

    The queue calls the ``on_*`` hooks with the page and its arrival slot
    (the server's absolute tick count) for every offer outcome, and
    :meth:`select` when a pull slot frees up.  The base implementation is
    plain FIFO; subclasses override the hooks they need.

    Two decision counters feed the metrics registry
    (``repro.obs.events.SCHEDULER_DECISIONS``): ``pops`` — pull services
    granted — and ``reordered`` — services that did *not* take the FIFO
    head.  ``temperature`` accumulates per-page observed demand (every
    offer, duplicates and drops included) when ``track_temperature`` is
    set; it deliberately survives measurement-phase counter resets, being
    a demand signal for :class:`PushReprogrammer`, not a statistic.
    """

    name = "fifo"

    def __init__(self, *, track_temperature: bool = False):
        self.track_temperature = track_temperature
        #: Cumulative observed demand per page (offers of any outcome).
        self.temperature: dict[int, int] = {}
        # Decision counters (reset with the queue's stats).
        self.pops = 0
        self.reordered = 0

    def _observe(self, page: int) -> None:
        if self.track_temperature:
            self.temperature[page] = self.temperature.get(page, 0) + 1

    # -- offer-side hooks --------------------------------------------------
    def on_enqueued(self, page: int, now: int) -> None:
        """A distinct request for ``page`` entered the queue at slot ``now``."""
        self._observe(page)

    def on_duplicate(self, page: int, now: int) -> None:
        """Another request arrived for an already-queued page."""
        self._observe(page)

    def on_dropped(self, page: int, now: int) -> None:
        """A distinct request was dropped because the queue was full."""
        self._observe(page)

    def on_served(self, page: int, now: int) -> None:
        """``page`` was popped for service (clear per-page wait state)."""

    # -- selection ---------------------------------------------------------
    def select(self, fifo: "deque[int]", now: int) -> int:
        """The queued page the next pull slot should serve.

        ``fifo`` is the queue's arrival-ordered deque (never empty here);
        the base class serves its head.
        """
        return fifo[0]

    def reset_decisions(self) -> None:
        """Zero the decision counters (measurement-phase boundary)."""
        self.pops = 0
        self.reordered = 0


class FifoScheduler(PullScheduler):
    """The paper's discipline — first-come-first-served over distinct pages.

    Identical to the base class; exists so ``discipline="fifo"`` names a
    concrete type and benchmarks can price the hook overhead alone.
    """

    name = "fifo"


class RxWScheduler(PullScheduler):
    """R×W (Aksoy & Franklin): serve max ``waiters × (wait + 1)^aging``.

    ``waiters`` counts every request observed for the page while queued
    (the first arrival plus duplicates) and ``wait`` is slots since the
    first arrival, so popular pages and starving pages both rise.  The
    ``aging`` exponent weights the wait term: 1.0 is classic R×W, values
    below 1 favour request counts (toward most-requested-first at 0),
    values above 1 favour the longest waiter (starvation resistance).
    Ties keep FIFO order.
    """

    name = "rxw"

    def __init__(self, *, aging: float = 1.0,
                 track_temperature: bool = False):
        if aging < 0:
            raise ValueError("aging must be non-negative")
        super().__init__(track_temperature=track_temperature)
        self.aging = aging
        self._first_arrival: dict[int, int] = {}
        self._waiters: dict[int, int] = {}

    def on_enqueued(self, page: int, now: int) -> None:
        self._observe(page)
        self._first_arrival[page] = now
        self._waiters[page] = 1

    def on_duplicate(self, page: int, now: int) -> None:
        self._observe(page)
        self._waiters[page] += 1

    def on_served(self, page: int, now: int) -> None:
        del self._first_arrival[page]
        del self._waiters[page]

    def waiters(self, page: int) -> int:
        """Requests observed for a queued page (0 when not queued)."""
        return self._waiters.get(page, 0)

    def select(self, fifo: "deque[int]", now: int) -> int:
        first = self._first_arrival
        waiters = self._waiters
        aging = self.aging
        best = fifo[0]
        best_score = -1.0
        for page in fifo:
            score = waiters[page] * (now - first[page] + 1.0) ** aging
            if score > best_score:
                best = page
                best_score = score
        return best


class LwfScheduler(PullScheduler):
    """Longest-total-wait-first: maximize summed outstanding wait.

    Each page's priority is the total wait accumulated by *all* its
    outstanding requests — duplicates included, each from its own arrival
    slot — kept as O(1) running aggregates (request count and arrival-slot
    sum) per page.  A page with many recent duplicates can overtake a
    page with one old request, which is exactly where LWF and FIFO
    diverge.  Ties keep FIFO order.
    """

    name = "lwf"

    def __init__(self, *, track_temperature: bool = False):
        super().__init__(track_temperature=track_temperature)
        self._count: dict[int, int] = {}
        self._arrival_sum: dict[int, int] = {}

    def on_enqueued(self, page: int, now: int) -> None:
        self._observe(page)
        self._count[page] = 1
        self._arrival_sum[page] = now

    def on_duplicate(self, page: int, now: int) -> None:
        self._observe(page)
        self._count[page] += 1
        self._arrival_sum[page] += now

    def on_served(self, page: int, now: int) -> None:
        del self._count[page]
        del self._arrival_sum[page]

    def total_wait(self, page: int, now: int) -> float:
        """Summed wait (slots, +1 each) of a page's outstanding requests."""
        count = self._count.get(page, 0)
        return count * (now + 1.0) - self._arrival_sum.get(page, 0)

    def select(self, fifo: "deque[int]", now: int) -> int:
        count = self._count
        arrival_sum = self._arrival_sum
        best = fifo[0]
        best_score = float("-inf")
        for page in fifo:
            score = count[page] * (now + 1.0) - arrival_sum[page]
            if score > best_score:
                best = page
                best_score = score
        return best


def make_scheduler(discipline: str, *, aging: float = 1.0,
                   track_temperature: bool = False) -> PullScheduler:
    """Construct the discipline named by ``SchedulerConfig.discipline``."""
    if discipline == "rxw":
        return RxWScheduler(aging=aging,
                            track_temperature=track_temperature)
    if discipline == "lwf":
        return LwfScheduler(track_temperature=track_temperature)
    if discipline == "fifo":
        return FifoScheduler(track_temperature=track_temperature)
    raise ValueError(f"unknown discipline {discipline!r} "
                     f"(expected one of {DISCIPLINES})")


class PushReprogrammer:
    """Temperature-driven online rebuild of the push program.

    Every ``interval`` slots the engine asks for a rebuild; one happens
    only when at least ``min_requests`` new backchannel offers were
    observed since the last rebuild (pure silence carries no signal —
    the same principle as the adaptive controller's no-signal windows).

    The rebuild ranks pages by cumulative observed demand (hottest
    first, page id breaking ties) and refills the original disk layout
    in that order, so the pages clients actually wait for migrate to the
    fast disks.  Pages never requested keep their aggregate-rank order
    behind the observed ones.  No Offset transform is applied: observed
    backchannel demand already excludes cache-absorbed pages, which is
    the empirical counterpart of what Offset approximates a priori.

    Chopped programs are rejected at config validation: reprogramming
    rebuilds a *full* program, and re-adding a chopped page would strand
    clients already waiting on the old program's safety net.
    """

    def __init__(self, db_size: int, disk_sizes: tuple[int, ...],
                 rel_freqs: tuple[int, ...], *, interval: int,
                 min_requests: int):
        if interval < 1:
            raise ValueError("interval must be positive")
        if min_requests < 1:
            raise ValueError("min_requests must be positive")
        self.db_size = db_size
        self.disk_sizes = tuple(disk_sizes)
        self.rel_freqs = tuple(rel_freqs)
        self.interval = interval
        self.min_requests = min_requests
        self.reprograms = 0
        self._demand_at_last = 0
        #: (slot, window demand) per accepted rebuild.
        self.trace: list[tuple[int, int]] = []

    def ranking(self, temperature: dict[int, int]) -> list[int]:
        """Demand-ranked page order: hot pages first, cold in rank order."""
        hot = sorted(temperature, key=lambda page: (-temperature[page], page))
        hot_set = set(hot)
        return hot + [page for page in range(self.db_size)
                      if page not in hot_set]

    def maybe_reprogram(self, now: int,
                        scheduler: PullScheduler) -> Optional[Schedule]:
        """A rebuilt schedule when enough new demand accrued, else None."""
        demand = sum(scheduler.temperature.values())
        if demand - self._demand_at_last < self.min_requests:
            return None
        self._demand_at_last = demand
        assignment = DiskAssignment.from_ranking(
            self.ranking(scheduler.temperature), self.disk_sizes,
            self.rel_freqs)
        self.reprograms += 1
        self.trace.append((now, demand))
        return build_schedule(assignment)
