"""The per-slot server state machine, shared by both simulation engines.

Each broadcast unit the server emits exactly one slot: a pull response, a
push-program page, a padded empty program slot, or an idle slot (no program
and nothing queued).  Both the reference (event-driven) and the fast
(slot-driven) engine call :meth:`BroadcastServer.tick` once per slot, so the
two implementations share identical server semantics by construction.
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.broadcast.schedule import Schedule
from repro.server.mux import PushPullMux
from repro.server.queue import BoundedRequestQueue
from repro.server.schedulers import PullScheduler

__all__ = ["BroadcastServer", "SlotKind"]


class SlotKind(enum.Enum):
    """What a broadcast slot carried.

    Values mirror ``repro.obs.events.SLOT_KINDS`` (importing obs here
    would cycle through core; lint rule REP005 enforces the sync).
    """

    PUSH = "push"      #: a page from the periodic program
    PULL = "pull"      #: a queued backchannel request
    PADDING = "padding"  #: an empty program slot (chunk padding)
    IDLE = "idle"      #: no program and an empty queue (Pure-Pull only)

    @property
    def carries_page(self) -> bool:
        """True for slot kinds that transmit a page a client can receive."""
        return self in (SlotKind.PUSH, SlotKind.PULL)


class BroadcastServer:
    """Broadcast server: periodic program + bounded pull queue + MUX."""

    def __init__(self, schedule: Optional[Schedule], queue_size: int,
                 pull_bw: float, rng: np.random.Generator,
                 scheduler: Optional[PullScheduler] = None):
        """Args:
            schedule: the push program, or None for Pure-Pull (which must
                then use ``pull_bw = 1.0``).
            queue_size: backchannel queue capacity (``ServerQSize``).
            pull_bw: fraction of slots offered to pulls (``PullBW``).
            rng: seeded generator for the MUX coin.
            scheduler: pull-queue service discipline (FIFO when omitted).
        """
        if schedule is None and pull_bw < 1.0:
            raise ValueError("a push program is required when pull_bw < 1")
        self.schedule = schedule
        self.queue = BoundedRequestQueue(queue_size, scheduler)
        self.mux = PushPullMux(pull_bw, rng)
        self.schedule_pos = 0
        #: Absolute slot clock: ticks emitted since construction.  Never
        #: reset (unlike the statistics) — it stamps queue arrivals for
        #: the scheduling disciplines, and waits must stay monotone
        #: across measurement-phase boundaries.
        self.ticks = 0
        # Slot accounting by kind.
        self.slot_counts: dict[SlotKind, int] = {kind: 0 for kind in SlotKind}

    @property
    def pending_requests(self) -> int:
        """Requests currently queued on the backchannel."""
        return len(self.queue)

    def request(self, page: int):
        """Present a backchannel request (see :class:`BoundedRequestQueue`)."""
        return self.queue.offer(page)

    def tick(self) -> tuple[Optional[int], SlotKind]:
        """Emit the next slot: ``(page or None, slot kind)``.

        The periodic program's position advances only when the slot actually
        carries a program entry (page or padding), so pull responses delay —
        rather than consume — the push schedule.
        """
        self.ticks += 1
        self.queue.now = self.ticks
        if self.mux.wants_pull() and len(self.queue) > 0:
            page = self.queue.pop()
            self.slot_counts[SlotKind.PULL] += 1
            return page, SlotKind.PULL
        if self.schedule is None:
            self.slot_counts[SlotKind.IDLE] += 1
            return None, SlotKind.IDLE
        page = self.schedule.page_at(self.schedule_pos)
        self.schedule_pos = (self.schedule_pos + 1) % len(self.schedule)
        if page is None:
            self.slot_counts[SlotKind.PADDING] += 1
            return None, SlotKind.PADDING
        self.slot_counts[SlotKind.PUSH] += 1
        return page, SlotKind.PUSH

    def set_schedule(self, schedule: Schedule) -> None:
        """Swap the push program in place (temperature reprogramming).

        The cursor is kept modulo the new cycle so the program keeps
        rolling from an equivalent position; callers are responsible for
        refreshing any client-side distance tables derived from the old
        program (see :class:`~repro.server.schedulers.PushReprogrammer`).
        """
        if self.schedule is None:
            raise ValueError("cannot reprogram a server with no push program")
        self.schedule = schedule
        self.schedule_pos %= len(schedule)

    def stats_snapshot(self) -> dict:
        """Point-in-time view of the server for observability tooling.

        Combines the slot accounting, the schedule cursor, and the queue's
        own :meth:`~repro.server.queue.BoundedRequestQueue.snapshot`.
        """
        return {
            "schedule_pos": self.schedule_pos,
            "slots": {kind.value: count
                      for kind, count in self.slot_counts.items()},
            "queue": self.queue.snapshot(),
        }

    def reset_stats(self) -> None:
        """Zero slot and queue counters at a measurement-phase boundary."""
        self.slot_counts = {kind: 0 for kind in SlotKind}
        self.queue.reset_stats()
