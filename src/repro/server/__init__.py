"""Server-side machinery.

- :class:`~repro.server.queue.BoundedRequestQueue` — the finite FIFO
  backchannel queue with duplicate suppression and drop accounting,
- :class:`~repro.server.mux.PushPullMux` — the PullBW-weighted coin that
  chooses per slot between the periodic program and a queued pull,
- :class:`~repro.server.broadcast_server.BroadcastServer` — the per-slot
  server state machine shared by both simulation engines.
"""

from repro.server.queue import BoundedRequestQueue, Offer
from repro.server.mux import PushPullMux
from repro.server.broadcast_server import BroadcastServer, SlotKind

__all__ = [
    "BoundedRequestQueue",
    "Offer",
    "PushPullMux",
    "BroadcastServer",
    "SlotKind",
]
