"""The bounded backchannel request queue (Section 2.2 / 3.2).

The server holds outstanding pull requests in a FIFO queue of capacity
``ServerQSize`` *distinct pages*.  An arriving request is dropped when the
queue is full, and ignored when a request for the same page is already
queued (the earlier broadcast will satisfy both — clients snoop on the
frontchannel).  Clients get no feedback about either outcome.
"""

from __future__ import annotations

import enum
from collections import deque

__all__ = ["BoundedRequestQueue", "Offer"]


class Offer(enum.Enum):
    """Outcome of presenting a request to the server queue.

    Values mirror ``repro.obs.events.OFFER_OUTCOMES`` (lint rule REP005
    enforces the sync without a runtime import).
    """

    #: The request was queued; a pull slot will eventually broadcast it.
    ENQUEUED = "enqueued"
    #: A request for the same page was already queued (benign: the earlier
    #: request's broadcast satisfies this client too).
    DUPLICATE = "duplicate"
    #: The queue was full; the request is thrown away with no feedback.
    DROPPED = "dropped"


class BoundedRequestQueue:
    """FIFO queue of distinct page requests with drop-on-full semantics."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._fifo: deque[int] = deque()
        self._queued: set[int] = set()
        # Cumulative accounting, one counter per Offer outcome.
        self.enqueued = 0
        self.duplicates = 0
        self.dropped = 0
        self.served = 0

    def __len__(self) -> int:
        return len(self._fifo)

    def __contains__(self, page: int) -> bool:
        return page in self._queued

    @property
    def is_full(self) -> bool:
        """True when another distinct request would be dropped."""
        return len(self._fifo) >= self.capacity

    @property
    def offers(self) -> int:
        """Total requests presented to the queue."""
        return self.enqueued + self.duplicates + self.dropped

    @property
    def drop_rate(self) -> float:
        """Fraction of offered requests dropped because the queue was full.

        Duplicates are excluded: a duplicated request is still satisfied by
        the already-queued broadcast.
        """
        offers = self.offers
        return self.dropped / offers if offers else 0.0

    def offer(self, page: int) -> Offer:
        """Present a pull request; returns what happened to it."""
        if page in self._queued:
            self.duplicates += 1
            return Offer.DUPLICATE
        if len(self._fifo) >= self.capacity:
            self.dropped += 1
            return Offer.DROPPED
        self._fifo.append(page)
        self._queued.add(page)
        self.enqueued += 1
        return Offer.ENQUEUED

    def attach_observer(self, callback) -> None:
        """Report every offer outcome to ``callback(page, outcome)``.

        Implemented by shadowing :meth:`offer` with a wrapping instance
        attribute, so the un-observed hot path keeps zero extra branches
        — attaching costs one closure call per offer, detaching restores
        the plain bound method.  One observer at a time (request tracers
        fan out internally if they need more).
        """
        if "offer" in self.__dict__:
            raise RuntimeError("an observer is already attached")
        inner = self.offer

        def observed_offer(page: int) -> Offer:
            outcome = inner(page)
            callback(page, outcome)
            return outcome

        self.offer = observed_offer  # type: ignore[method-assign]

    def detach_observer(self) -> None:
        """Remove the observer installed by :meth:`attach_observer`."""
        self.__dict__.pop("offer", None)

    def pop(self) -> int:
        """Dequeue the oldest request for service (raises if empty)."""
        page = self._fifo.popleft()
        self._queued.remove(page)
        self.served += 1
        return page

    def snapshot(self) -> dict:
        """Point-in-time accounting view (depth plus cumulative counters).

        Plain-dict so tracers, the CLI, and the metrics registry can ship
        it without holding a reference to the live queue.
        """
        return {
            "depth": len(self._fifo),
            "capacity": self.capacity,
            "enqueued": self.enqueued,
            "duplicates": self.duplicates,
            "dropped": self.dropped,
            "served": self.served,
            "drop_rate": self.drop_rate,
        }

    def reset_stats(self) -> None:
        """Zero the cumulative counters (queue contents are kept).

        Used when a run switches from the warm-up to the measured phase.
        """
        self.enqueued = 0
        self.duplicates = 0
        self.dropped = 0
        self.served = 0
