"""The bounded backchannel request queue (Section 2.2 / 3.2).

The server holds outstanding pull requests in a queue of capacity
``ServerQSize`` *distinct pages*.  An arriving request is dropped when the
queue is full, and ignored when a request for the same page is already
queued (the earlier broadcast will satisfy both — clients snoop on the
frontchannel).  Clients get no feedback about either outcome.

Arrival order is kept in a FIFO deque; *service* order is delegated to a
:class:`~repro.server.schedulers.PullScheduler` discipline (the paper's
FIFO by default — bit-identical to the historic hard-coded behaviour).
The queue stamps every offer with :attr:`now`, the server's absolute
slot clock, so disciplines can weigh waits without owning a clock.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Optional

from repro.server.schedulers import FifoScheduler, PullScheduler

__all__ = ["BoundedRequestQueue", "Offer"]


class Offer(enum.Enum):
    """Outcome of presenting a request to the server queue.

    Values mirror ``repro.obs.events.OFFER_OUTCOMES`` (lint rule REP005
    enforces the sync without a runtime import).
    """

    #: The request was queued; a pull slot will eventually broadcast it.
    ENQUEUED = "enqueued"
    #: A request for the same page was already queued (benign: the earlier
    #: request's broadcast satisfies this client too).
    DUPLICATE = "duplicate"
    #: The queue was full; the request is thrown away with no feedback.
    DROPPED = "dropped"


class BoundedRequestQueue:
    """Bounded queue of distinct page requests with drop-on-full semantics."""

    def __init__(self, capacity: int,
                 scheduler: Optional[PullScheduler] = None):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.scheduler: PullScheduler = (
            scheduler if scheduler is not None else FifoScheduler())
        #: The server's absolute slot clock; offers are stamped with it.
        self.now = 0
        self._fifo: deque[int] = deque()
        self._queued: set[int] = set()
        # Cumulative accounting, one counter per Offer outcome.
        self.enqueued = 0
        self.duplicates = 0
        self.dropped = 0
        self.served = 0

    def __len__(self) -> int:
        return len(self._fifo)

    def __contains__(self, page: int) -> bool:
        return page in self._queued

    @property
    def is_full(self) -> bool:
        """True when another distinct request would be dropped."""
        return len(self._fifo) >= self.capacity

    @property
    def offers(self) -> int:
        """Total requests presented to the queue (duplicates included)."""
        return self.enqueued + self.duplicates + self.dropped

    @property
    def distinct_offers(self) -> int:
        """Offers that competed for queue capacity (``enqueued + dropped``).

        Duplicates are excluded: they neither take a slot nor can be
        dropped, so they carry no information about saturation.
        """
        return self.enqueued + self.dropped

    @property
    def drop_rate(self) -> float:
        """Fraction of *distinct* offers dropped because the queue was full.

        Computed over ``enqueued + dropped``.  Duplicates are excluded
        from the denominator as well as the numerator: a duplicated
        request is satisfied by the already-queued broadcast regardless
        of queue pressure, so counting it would dilute the saturation
        signal the adaptive controller thresholds on — at high load most
        offers for hot pages are duplicates, and the diluted rate could
        sit under ``AdaptivePolicy.high_drop`` while every distinct
        request was being dropped.
        """
        distinct = self.enqueued + self.dropped
        return self.dropped / distinct if distinct else 0.0

    def offer(self, page: int) -> Offer:
        """Present a pull request; returns what happened to it."""
        if page in self._queued:
            self.duplicates += 1
            self.scheduler.on_duplicate(page, self.now)
            return Offer.DUPLICATE
        if len(self._fifo) >= self.capacity:
            self.dropped += 1
            self.scheduler.on_dropped(page, self.now)
            return Offer.DROPPED
        self._fifo.append(page)
        self._queued.add(page)
        self.enqueued += 1
        self.scheduler.on_enqueued(page, self.now)
        return Offer.ENQUEUED

    def attach_observer(self, callback) -> None:
        """Report every offer outcome to ``callback(page, outcome)``.

        Implemented by shadowing :meth:`offer` with a wrapping instance
        attribute, so the un-observed hot path keeps zero extra branches
        — attaching costs one closure call per offer, detaching restores
        the plain bound method.  One observer at a time (request tracers
        fan out internally if they need more).
        """
        if "offer" in self.__dict__:
            raise RuntimeError("an observer is already attached")
        inner = self.offer

        def observed_offer(page: int) -> Offer:
            outcome = inner(page)
            callback(page, outcome)
            return outcome

        self.offer = observed_offer  # type: ignore[method-assign]

    def detach_observer(self) -> None:
        """Remove the observer installed by :meth:`attach_observer`."""
        self.__dict__.pop("offer", None)

    def peek(self) -> Optional[int]:
        """The page the discipline would serve next (None when empty)."""
        if not self._fifo:
            return None
        return self.scheduler.select(self._fifo, self.now)

    def pop(self) -> int:
        """Dequeue the discipline's pick for service (raises if empty)."""
        scheduler = self.scheduler
        fifo = self._fifo
        page = scheduler.select(fifo, self.now)
        scheduler.pops += 1
        if page == fifo[0]:
            fifo.popleft()
        else:
            fifo.remove(page)
            scheduler.reordered += 1
        self._queued.remove(page)
        self.served += 1
        scheduler.on_served(page, self.now)
        return page

    def snapshot(self) -> dict:
        """Point-in-time accounting view (depth plus cumulative counters).

        Plain-dict so tracers, the CLI, and the metrics registry can ship
        it without holding a reference to the live queue.  ``drop_rate``
        follows the distinct-offers definition (see :attr:`drop_rate`).
        """
        return {
            "depth": len(self._fifo),
            "capacity": self.capacity,
            "enqueued": self.enqueued,
            "duplicates": self.duplicates,
            "dropped": self.dropped,
            "served": self.served,
            "drop_rate": self.drop_rate,
            "scheduler": {
                "discipline": self.scheduler.name,
                "pops": self.scheduler.pops,
                "reordered": self.scheduler.reordered,
            },
        }

    def reset_stats(self) -> None:
        """Zero the cumulative counters (queue contents are kept).

        Used when a run switches from the warm-up to the measured phase.
        The scheduler's decision counters reset too; its temperature
        accumulator does not (it is a demand signal, not a statistic).
        """
        self.enqueued = 0
        self.duplicates = 0
        self.dropped = 0
        self.served = 0
        self.scheduler.reset_decisions()
