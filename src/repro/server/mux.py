"""The Push/Pull multiplexer (Section 2.2).

Before every slot the server tosses a coin weighted by ``PullBW``: heads
dedicates the slot to the request at the head of the backchannel queue,
tails continues the periodic program.  ``PullBW`` is only an *upper bound*
on pull bandwidth — when the queue is empty the slot reverts to the push
program, and when there is no push program an empty queue idles the slot.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PushPullMux"]


class PushPullMux:
    """Per-slot pull-vs-push decision."""

    def __init__(self, pull_bw: float, rng: np.random.Generator):
        if not 0.0 <= pull_bw <= 1.0:
            raise ValueError(f"pull_bw must be within [0, 1], got {pull_bw}")
        self.pull_bw = pull_bw
        self._rng = rng

    def wants_pull(self) -> bool:
        """Toss the PullBW coin for the next slot.

        The degenerate settings skip the random draw entirely so Pure-Push
        (0.0) and Pure-Pull (1.0) stay deterministic and cheap.
        """
        if self.pull_bw <= 0.0:
            return False
        if self.pull_bw >= 1.0:
            return True
        return self._rng.random() < self.pull_bw
