"""Closed-form Pure-Push response times.

With no backchannel the periodic program is never perturbed, so the
expected response time of a Pure-Push client follows directly from the
schedule geometry: a request arriving uniformly at random inside a gap of
``g`` slots before the next broadcast of its page waits on average
``(g + 1) / 2`` slots (it must also ride out the transmission slot).

These formulas give the simulators an exact yardstick: the Pure-Push
engines must converge to :func:`expected_push_response` as the measured
access count grows.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.broadcast.schedule import Schedule
from repro.cache.values import page_values

__all__ = [
    "expected_page_delay",
    "steady_cache_contents",
    "expected_push_response",
]


def expected_page_delay(schedule: Schedule, page: int) -> float:
    """Expected slots until ``page`` completes, from a uniform random time.

    Delegates to :meth:`Schedule.expected_delay`; ``inf`` for pages not on
    the program.
    """
    return schedule.expected_delay(page)


def steady_cache_contents(probabilities: Sequence[float],
                          schedule: Schedule | None, cache_size: int,
                          metric: str = "pix") -> frozenset[int]:
    """The pages a fully-warm cache converges to holding.

    Under a static value metric the replacement policy keeps exactly the
    ``cache_size`` highest-valued pages once it has seen them all.
    """
    frequencies = schedule.frequencies() if schedule is not None else None
    values = page_values(probabilities, frequencies, metric)
    order = sorted(range(len(values)), key=values.__getitem__, reverse=True)
    return frozenset(order[:cache_size])


def expected_push_response(probabilities: Sequence[float],
                           schedule: Schedule, cache_size: int,
                           per_miss: bool = True,
                           stable_slots: int | None = None) -> float:
    """Expected steady-state Pure-Push response time, in broadcast units.

    Models the warm cache as permanently holding its ``stable_slots``
    highest-PIX pages.  An insert-on-every-miss cache churns its last slot
    (each cold miss displaces the least valuable resident), which is why
    the paper says steady-state clients hold the *CacheSize − 1* highest
    valued pages (Section 4.1.1) — the default here.  The true simulated
    mean lies between ``stable_slots = cache_size − 1`` (churn slot never
    hits) and ``stable_slots = cache_size`` (churn slot always holds the
    next-best page); both bounds are validated against the simulator in
    the test suite.

    Args:
        probabilities: the measured client's access distribution.
        schedule: the push program.
        cache_size: the client cache size.
        per_miss: report the mean over cache misses (the paper's headline
            metric); if False, average over all accesses with hits at 0.
        stable_slots: override the stable-resident count.

    Raises:
        ValueError: if a missable page is absent from the program (its
            expected delay would be unbounded).
    """
    if stable_slots is None:
        stable_slots = max(cache_size - 1, 0)
    cached = steady_cache_contents(probabilities, schedule, stable_slots,
                                   metric="pix")
    miss_mass = 0.0
    weighted_delay = 0.0
    for page, prob in enumerate(probabilities):
        if page in cached or prob == 0.0:
            continue
        delay = schedule.expected_delay(page)
        if math.isinf(delay):
            raise ValueError(
                f"page {page} can miss but is not on the push program")
        miss_mass += prob
        weighted_delay += prob * delay
    if miss_mass == 0.0:
        return 0.0
    if per_miss:
        return weighted_delay / miss_mass
    return weighted_delay
