"""Broadcast predictability and receiver-energy implications.

Footnote 2 of the paper: "Predictability may be important for certain
environments.  For example, in mobile networks, predictability of the
broadcast can be used to reduce power consumption [Imie94b]."

A mobile client that can predict the slot carrying its next page sleeps
(doze mode) through the rest of the broadcast.  Interleaving pull
responses makes slots unpredictable: each slot is a pull with probability
``PullBW`` (whenever the queue is busy), so the client must stay awake
through an uncertain prefix.  These helpers quantify that tradeoff:

- :func:`slot_predictability` — probability a given future program slot
  appears exactly where the schedule says (no pulls intervene),
- :func:`expected_awake_slots` — expected slots a doze-capable client
  must listen for a page at program distance *d* (it wakes at the earliest
  possible arrival and must then stay awake through the pull jitter),
- :func:`doze_fraction` — long-run fraction of slots a client can doze
  through under the two extremes of the paper (Pure-Push: everything but
  its own pages; saturated IPP: nothing it can predict).
"""

from __future__ import annotations

import math

__all__ = ["slot_predictability", "expected_awake_slots", "doze_fraction"]


def _validate(pull_bw: float, busy_fraction: float) -> float:
    if not 0.0 <= pull_bw <= 1.0:
        raise ValueError("pull_bw must be within [0, 1]")
    if not 0.0 <= busy_fraction <= 1.0:
        raise ValueError("busy_fraction must be within [0, 1]")
    # A pull displaces a program slot only when the queue has work.
    return pull_bw * busy_fraction


def slot_predictability(distance: int, pull_bw: float,
                        busy_fraction: float = 1.0) -> float:
    """Probability the next ``distance`` program slots suffer no pull.

    With per-slot pull probability ``q = pull_bw * busy_fraction``, the
    page at program distance ``d`` arrives exactly on time iff none of
    the ``d + 1`` slots up to and including its own is stolen:
    ``(1 - q) ** (d + 1)``.
    """
    if distance < 0:
        raise ValueError("distance must be non-negative")
    steal = _validate(pull_bw, busy_fraction)
    return (1.0 - steal) ** (distance + 1)


def expected_awake_slots(distance: int, pull_bw: float,
                         busy_fraction: float = 1.0) -> float:
    """Expected slots awake to catch a page at program distance ``d``.

    The client sleeps until the earliest possible arrival (``d`` slots of
    pure program), then listens until ``d + 1`` *program* slots have
    actually elapsed.  Each program slot costs ``1 / (1 - q)`` real slots
    in expectation under per-slot steal probability ``q``; the client is
    awake for the last ``d + 1`` program slots' jitter plus its own
    transmission — i.e. ``(d + 1) / (1 - q) - d`` slots.

    With ``q = 0`` this is exactly 1 (wake for your own slot only); as
    ``q -> 1`` it diverges — an unpredictable broadcast forces the
    receiver to idle-listen, footnote 2's concern.
    """
    if distance < 0:
        raise ValueError("distance must be non-negative")
    steal = _validate(pull_bw, busy_fraction)
    if steal >= 1.0:
        return math.inf
    return (distance + 1) / (1.0 - steal) - distance


def doze_fraction(distance: int, pull_bw: float,
                  busy_fraction: float = 1.0) -> float:
    """Fraction of the wait a doze-capable client sleeps through.

    The total expected wait for the page is ``(d + 1) / (1 - q)`` slots;
    the client is awake for :func:`expected_awake_slots` of them.
    """
    steal = _validate(pull_bw, busy_fraction)
    if steal >= 1.0:
        return 0.0
    total = (distance + 1) / (1.0 - steal)
    awake = expected_awake_slots(distance, pull_bw, busy_fraction)
    return 1.0 - awake / total
