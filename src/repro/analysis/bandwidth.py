"""Broadcast bandwidth allocation theory for disk-layout ablations.

The classic result for minimizing mean broadcast delay ([Amma85]/[Wong88],
cited by the paper) is the *square-root rule*: page *i*'s share of the
broadcast should be proportional to the square root of its access
probability.  Broadcast Disks quantize this ideal into a few discrete
"disks"; the helpers here compute the ideal allocation and search small
disk partitions against it, powering the layout ablation benchmarks.
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

__all__ = ["square_root_frequencies", "ideal_mean_delay", "optimal_disk_split"]


def square_root_frequencies(probabilities: Sequence[float]) -> np.ndarray:
    """Ideal per-page bandwidth shares (sum to 1) — the square-root rule."""
    probs = np.asarray(probabilities, dtype=np.float64)
    if probs.ndim != 1 or probs.size == 0:
        raise ValueError("probabilities must be a non-empty 1-D array")
    if np.any(probs < 0):
        raise ValueError("probabilities must be non-negative")
    roots = np.sqrt(probs)
    total = roots.sum()
    if total == 0:
        raise ValueError("at least one page needs positive probability")
    return roots / total


def ideal_mean_delay(probabilities: Sequence[float]) -> float:
    """Lower bound on mean broadcast delay with perfectly even spacing.

    A page granted share ``s`` of the bandwidth recurs every ``1/s`` slots;
    evenly spaced, its expected wait is ``1/(2s)``.  With square-root
    shares the overall bound is ``(Σ√p)² / 2``.
    """
    probs = np.asarray(probabilities, dtype=np.float64)
    return float(np.sqrt(probs).sum() ** 2 / 2.0)


def _split_delay(probs: np.ndarray, sizes: tuple[int, ...],
                 freqs: Sequence[int]) -> float:
    """Mean delay of a disk partition under even-spacing approximation."""
    boundaries = np.cumsum((0,) + sizes)
    # Cycle length in "frequency-weighted" slots.
    cycle = sum(size * freq for size, freq in zip(sizes, freqs))
    delay = 0.0
    for disk, freq in enumerate(freqs):
        lo, hi = boundaries[disk], boundaries[disk + 1]
        spacing = cycle / freq
        delay += probs[lo:hi].sum() * spacing / 2.0
    return float(delay)


def optimal_disk_split(probabilities: Sequence[float],
                       rel_freqs: Sequence[int],
                       granularity: int = 25) -> tuple[tuple[int, ...], float]:
    """Best disk sizes (hottest-first partition) for fixed frequencies.

    Exhaustively searches partitions of the ranked pages into
    ``len(rel_freqs)`` non-empty disks at multiples of ``granularity``
    pages, scoring each with the even-spacing delay approximation.

    Returns ``(disk_sizes, approx_mean_delay)``.
    """
    probs = np.sort(np.asarray(probabilities, dtype=np.float64))[::-1]
    num_pages = probs.size
    num_disks = len(rel_freqs)
    if num_disks < 1:
        raise ValueError("need at least one disk")
    if num_pages % granularity:
        raise ValueError(
            f"granularity {granularity} must divide the database size "
            f"{num_pages}")
    units = num_pages // granularity
    if units < num_disks:
        raise ValueError("granularity too coarse for this many disks")
    best: tuple[tuple[int, ...], float] | None = None
    # Compositions of `units` into num_disks positive parts.
    for cuts in itertools.combinations(range(1, units), num_disks - 1):
        sizes = tuple(
            (b - a) * granularity
            for a, b in zip((0,) + cuts, cuts + (units,)))
        delay = _split_delay(probs, sizes, rel_freqs)
        if best is None or delay < best[1]:
            best = (sizes, delay)
    assert best is not None
    return best
