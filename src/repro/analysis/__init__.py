"""Analytical models: validation yardsticks and related-work comparisons.

- :mod:`~repro.analysis.push_delay` — exact expected Pure-Push response
  times from the schedule geometry (validates the simulators),
- :mod:`~repro.analysis.queueing` — an M/M/1/K model of the backchannel,
  the style of analysis of [Imie94c]/[Vish94] that the paper contrasts
  with its finite-queue simulation,
- :mod:`~repro.analysis.bandwidth` — square-root-rule broadcast frequency
  allocation for disk-layout ablations,
- :mod:`~repro.analysis.predictability` — footnote 2's broadcast
  predictability / receiver doze-mode energy model.
"""

from repro.analysis.push_delay import (
    expected_page_delay,
    expected_push_response,
    steady_cache_contents,
)
from repro.analysis.queueing import MM1KQueue
from repro.analysis.bandwidth import square_root_frequencies, optimal_disk_split
from repro.analysis.predictability import (
    doze_fraction,
    expected_awake_slots,
    slot_predictability,
)

__all__ = [
    "expected_page_delay",
    "expected_push_response",
    "steady_cache_contents",
    "MM1KQueue",
    "square_root_frequencies",
    "optimal_disk_split",
    "slot_predictability",
    "expected_awake_slots",
    "doze_fraction",
]
