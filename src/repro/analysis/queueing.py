"""An M/M/1/K model of the backchannel queue.

Related work ([Imie94c], [Vish94]) analyzed push/pull splits with an
M/M/1 queue; the paper argues its environment "is not accurately captured
by an M/M/1 queue" because requests and service times are not memoryless
and the queue is bounded.  This module provides the bounded-queue
(M/M/1/K) analogue so benchmarks can quantify exactly how far the
simulated backchannel deviates from the memoryless idealization.

Standard birth–death results: with offered load ``ρ = λ/μ`` and room for
``K`` requests, the stationary occupancy is geometric and truncated; the
blocking (drop) probability is the probability of finding the queue full.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["MM1KQueue"]


@dataclass(frozen=True)
class MM1KQueue:
    """Stationary M/M/1/K metrics for the backchannel.

    Attributes:
        arrival_rate: request arrivals per broadcast unit (λ).
        service_rate: pull responses per broadcast unit (μ) — for a slotted
            broadcast channel this is ``PullBW`` (an upper bound on pulled
            pages per slot).
        capacity: queue room, including the request in service (K).
    """

    arrival_rate: float
    service_rate: float
    capacity: int

    def __post_init__(self):
        if self.arrival_rate < 0:
            raise ValueError("arrival_rate must be non-negative")
        if self.service_rate <= 0:
            raise ValueError("service_rate must be positive")
        if self.capacity < 1:
            raise ValueError("capacity must be positive")

    @property
    def rho(self) -> float:
        """Offered load λ/μ (may exceed 1 — the queue is lossy)."""
        return self.arrival_rate / self.service_rate

    def occupancy_pmf(self) -> list[float]:
        """P[n requests in system] for n = 0..K."""
        rho, k = self.rho, self.capacity
        if math.isclose(rho, 1.0):
            return [1.0 / (k + 1)] * (k + 1)
        norm = (1.0 - rho) / (1.0 - rho ** (k + 1))
        return [norm * rho ** n for n in range(k + 1)]

    @property
    def blocking_probability(self) -> float:
        """Probability an arriving request is dropped (queue full).

        By PASTA, this equals the stationary probability of K in system.
        """
        return self.occupancy_pmf()[self.capacity]

    @property
    def mean_occupancy(self) -> float:
        """Expected number of requests in the system."""
        return sum(n * p for n, p in enumerate(self.occupancy_pmf()))

    @property
    def throughput(self) -> float:
        """Accepted-request rate λ(1 − P_block)."""
        return self.arrival_rate * (1.0 - self.blocking_probability)

    @property
    def mean_wait(self) -> float:
        """Expected response time of an *accepted* request (Little's law)."""
        throughput = self.throughput
        if throughput == 0.0:
            return 0.0
        return self.mean_occupancy / throughput
