"""``python -m repro.lint`` — run the domain lint suite standalone."""

import sys

from repro.lint.cli import main

if __name__ == "__main__":  # pragma: no cover - thin shim
    sys.exit(main())
