"""Path-scoped rule configuration from ``pyproject.toml``.

Inline ``# lint: allow[...]`` pragmas are the right tool for *point*
exemptions, but a module whose whole purpose violates a rule — the
:mod:`repro.net` serving layer reads wall clocks by design — would need
a pragma on every other line.  ``[tool.repro-lint]`` scopes an
exemption to a path pattern instead::

    [tool.repro-lint]

    [[tool.repro-lint.allow]]
    path = "net/*.py"
    rules = ["REP001"]
    reason = "the serving layer measures wall-clock time by design"

Semantics:

- ``path`` uses :meth:`pathlib.PurePosixPath.match` — right-anchored
  glob components — against each finding's root-relative path, so
  ``net/*.py`` matches both ``net/server.py`` (scanning ``src/repro``)
  and ``src/repro/net/server.py`` (scanning the repo root),
- ``rules`` lists the rule ids the pattern exempts; every other rule
  stays strict on those files,
- ``reason`` is mandatory documentation, like a pragma's rationale.

Discovery walks up from the first scanned path to the first
``pyproject.toml`` that *contains* a ``[tool.repro-lint]`` section
(``--config`` overrides, ``--no-config`` disables).  Findings removed
this way are counted separately (``config_allowed``) from pragma
suppressions.

Parsing uses :mod:`tomllib` where available (Python 3.11+); on 3.10 a
line-oriented fallback extracts just the ``tool.repro-lint`` tables and
ignores everything else in the file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path, PurePosixPath
from typing import Any, Mapping, Optional

__all__ = [
    "AllowEntry",
    "LintConfig",
    "LintConfigError",
    "EMPTY_CONFIG",
    "parse_lint_config",
    "load_lint_config",
    "discover_lint_config",
]


class LintConfigError(ValueError):
    """Malformed ``[tool.repro-lint]`` configuration."""


@dataclass(frozen=True)
class AllowEntry:
    """One path-scoped exemption."""

    #: Right-anchored glob (``PurePosixPath.match`` semantics).
    path: str
    #: Rule ids the pattern exempts.
    rules: frozenset[str]
    #: Why the exemption exists (mandatory, mirrors pragma rationale).
    reason: str

    def matches(self, rel: str, rule: str) -> bool:
        return rule in self.rules and PurePosixPath(rel).match(self.path)


@dataclass(frozen=True)
class LintConfig:
    """The parsed ``[tool.repro-lint]`` section."""

    allows: tuple[AllowEntry, ...] = ()
    #: The pyproject.toml this came from (None for the empty config).
    source: Optional[Path] = None
    #: Whether a ``[tool.repro-lint]`` section was present at all
    #: (discovery keeps walking up past files without one).
    defined: bool = False

    def allowed(self, rel: str, rule: str) -> bool:
        """Is ``rule`` exempted for the root-relative path ``rel``?"""
        return any(entry.matches(rel, rule) for entry in self.allows)

    def _anchored(self, path: Optional[Path]) -> Optional[str]:
        """``path`` relative to the config file's directory, if under it."""
        if path is None or self.source is None:
            return None
        try:
            return path.resolve().relative_to(
                self.source.parent.resolve()).as_posix()
        except ValueError:
            return None

    def matching_entry(self, path: Optional[Path], rel: str,
                       rule: str) -> Optional[AllowEntry]:
        """The first entry exempting ``rule`` for this file, if any.

        Matches both the scan-root-relative ``rel`` and ``path`` relative
        to the config file's own directory: ``net/*.py`` must exempt
        ``src/repro/net/client.py`` no matter whether the scan root was
        the repo, ``src/repro``, or ``src/repro/net`` itself — the
        scan-root-relative ``rel`` alone cannot provide that (scanning
        ``net/`` directly yields the bare basename), but the
        config-relative path is root-independent.
        """
        for entry in self.allows:
            if entry.matches(rel, rule):
                return entry
        anchored = self._anchored(path)
        if anchored is not None and anchored != rel:
            for entry in self.allows:
                if entry.matches(anchored, rule):
                    return entry
        return None

    def allowed_file(self, path: Optional[Path], rel: str,
                     rule: str) -> bool:
        """Like :meth:`allowed`, also matching ``path`` relative to the
        config file's own directory (see :meth:`matching_entry`)."""
        return self.matching_entry(path, rel, rule) is not None

    def entry_covers(self, entry: AllowEntry, path: Optional[Path],
                     rel: str) -> bool:
        """Pattern-only test: does ``entry.path`` match this file at all?

        Used by the unused-exemption check (LINT001) to decide whether a
        config entry was even *in scope* for the scanned file set —
        entries whose pattern matches no scanned file are ignored rather
        than reported, so partial-tree scans don't cry wolf.
        """
        if PurePosixPath(rel).match(entry.path):
            return True
        anchored = self._anchored(path)
        return (anchored is not None
                and PurePosixPath(anchored).match(entry.path))


#: The no-configuration configuration.
EMPTY_CONFIG = LintConfig()


def _require_str(value: Any, what: str) -> str:
    if not isinstance(value, str) or not value:
        raise LintConfigError(f"{what} must be a non-empty string, "
                              f"got {value!r}")
    return value


def parse_lint_config(data: Mapping[str, Any],
                      source: Optional[Path] = None,
                      known_rules: Optional[frozenset[str]] = None,
                      ) -> LintConfig:
    """Extract the ``[tool.repro-lint]`` section from a pyproject dict.

    ``known_rules`` (default: the rule registry) validates the ids so a
    typo fails loudly instead of silently exempting nothing.
    """
    if known_rules is None:
        from repro.lint.rules import REGISTRY
        known_rules = frozenset(REGISTRY)
    tool = data.get("tool")
    section = tool.get("repro-lint") if isinstance(tool, Mapping) else None
    if section is None:
        return LintConfig(source=source, defined=False)
    if not isinstance(section, Mapping):
        raise LintConfigError("[tool.repro-lint] must be a table, "
                              f"got {type(section).__name__}")
    raw_allows = section.get("allow", [])
    if not isinstance(raw_allows, list):
        raise LintConfigError("[[tool.repro-lint.allow]] must be an array "
                              "of tables")
    entries: list[AllowEntry] = []
    for position, raw in enumerate(raw_allows, start=1):
        context = f"[[tool.repro-lint.allow]] entry #{position}"
        if not isinstance(raw, Mapping):
            raise LintConfigError(f"{context}: must be a table")
        unknown_keys = set(raw) - {"path", "rules", "reason"}
        if unknown_keys:
            raise LintConfigError(
                f"{context}: unknown key(s) {', '.join(sorted(unknown_keys))}")
        pattern = _require_str(raw.get("path"), f"{context}: 'path'")
        reason = _require_str(raw.get("reason"), f"{context}: 'reason'")
        raw_rules = raw.get("rules")
        if (not isinstance(raw_rules, list) or not raw_rules
                or not all(isinstance(r, str) for r in raw_rules)):
            raise LintConfigError(f"{context}: 'rules' must be a non-empty "
                                  "list of rule ids")
        bad = sorted(set(raw_rules) - known_rules)
        if bad:
            raise LintConfigError(
                f"{context}: unknown rule id(s): {', '.join(bad)}")
        entries.append(AllowEntry(path=pattern,
                                  rules=frozenset(raw_rules),
                                  reason=reason))
    return LintConfig(allows=tuple(entries), source=source, defined=True)


def _parse_toml_value(text: str) -> Any:
    """Parse a TOML string / string-array value (fallback parser only).

    TOML basic strings and ``["a", "b"]`` arrays are valid Python
    literals, so ``ast.literal_eval`` covers the subset the
    ``tool.repro-lint`` tables use.
    """
    candidate = text.strip()
    for attempt in (candidate, candidate.rsplit("#", 1)[0].strip()):
        try:
            return ast.literal_eval(attempt)
        except (ValueError, SyntaxError):
            continue
    raise LintConfigError(f"cannot parse TOML value: {text.strip()!r}")


def _scan_minimal_toml(text: str) -> dict[str, Any]:
    """Extract just the ``tool.repro-lint`` tables from TOML source.

    A line-oriented subset parser for Python 3.10 (no :mod:`tomllib`):
    it understands ``[tool.repro-lint]`` / ``[[tool.repro-lint.allow]]``
    headers and simple ``key = value`` lines inside them, skipping every
    other section untouched.  Multi-line arrays are joined on unclosed
    brackets.
    """
    section: dict[str, Any] = {}
    allows: list[dict[str, Any]] = []
    current: Optional[dict[str, Any]] = None
    seen = False
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        line = lines[index].strip()
        index += 1
        if not line or line.startswith("#"):
            continue
        if line.startswith("[["):
            header = line.strip("[]").strip()
            if header == "tool.repro-lint.allow":
                seen = True
                current = {}
                allows.append(current)
            else:
                current = None
            continue
        if line.startswith("["):
            header = line.strip("[]").strip()
            if header == "tool.repro-lint":
                seen = True
                current = section
            else:
                current = None
            continue
        if current is None or "=" not in line:
            continue
        key, _, value = line.partition("=")
        value = value.strip()
        # Join continuation lines of a multi-line array.
        while value.count("[") > value.count("]") and index < len(lines):
            value += " " + lines[index].strip()
            index += 1
        current[key.strip()] = _parse_toml_value(value)
    if not seen:
        return {}
    if allows:
        section["allow"] = allows
    return {"tool": {"repro-lint": section}}


def _load_toml(path: Path) -> dict[str, Any]:
    try:
        import tomllib
    except ModuleNotFoundError:  # Python 3.10
        return _scan_minimal_toml(path.read_text(encoding="utf-8"))
    with path.open("rb") as handle:
        try:
            return tomllib.load(handle)
        except tomllib.TOMLDecodeError as exc:
            raise LintConfigError(f"{path}: {exc}") from None


def load_lint_config(path: Path) -> LintConfig:
    """Load and parse one ``pyproject.toml``."""
    try:
        data = _load_toml(path)
    except OSError as exc:
        raise LintConfigError(f"{path}: {exc}") from None
    try:
        return parse_lint_config(data, source=path)
    except LintConfigError as exc:
        raise LintConfigError(f"{path}: {exc}") from None


def discover_lint_config(start: Path) -> LintConfig:
    """Walk up from ``start`` to the nearest configured pyproject.toml.

    Returns :data:`EMPTY_CONFIG` when no ancestor's ``pyproject.toml``
    carries a ``[tool.repro-lint]`` section.
    """
    node = start.resolve()
    if node.is_file():
        node = node.parent
    for directory in (node, *node.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            config = load_lint_config(candidate)
            if config.defined:
                return config
    return EMPTY_CONFIG
