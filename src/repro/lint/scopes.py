"""Symbol tables and scope resolution — the shared analysis substrate.

Every rule that reasons about *names* (rather than bare syntax) builds on
this layer: a :class:`ScopeTable` maps each AST node to the lexical scope
it executes in, records every binding a scope introduces (assignments —
including tuple unpacking and augmented assignment — imports, function
parameters, ``for``/``with``/``except`` targets, comprehension targets,
function and class definitions), and tracks every ``Load`` of a name per
scope.  Resolution follows Python's actual rules: ``global`` and
``nonlocal`` redirect lookups, class bodies are skipped by nested
functions, and comprehensions get their own scope while their *first*
iterable evaluates in the enclosing one.

The table also offers a scope-aware :meth:`ScopeTable.canonical` — like
:class:`~repro.lint.rules.base.ImportResolver` but immune to shadowing:
``time = fake(); time.sleep(1)`` no longer resolves to ``time.sleep``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.lint.source import SourceFile

__all__ = ["Binding", "Scope", "ScopeTable", "table_for"]

#: Scope kinds (Scope.kind values).
MODULE = "module"
FUNCTION = "function"
ASYNC_FUNCTION = "async function"
CLASS = "class"
LAMBDA = "lambda"
COMPREHENSION = "comprehension"

_FUNCTION_KINDS = frozenset({FUNCTION, ASYNC_FUNCTION, LAMBDA,
                             COMPREHENSION})

#: Binding kinds (Binding.kind values).  Comparison sites use these
#: names rather than string literals (also keeps REP005's event-literal
#: scanner from mistaking a binding kind for an event name).
BIND_ASSIGN = "assign"
BIND_PARAM = "param"
BIND_DEF = "def"
BIND_CLASS = "class"
BIND_IMPORT = "import"


@dataclass
class Binding:
    """One introduction of a name into a scope."""

    name: str
    #: How the name was bound: "assign", "augassign", "annassign",
    #: "param", "def", "class", "import", "for", "with", "comp",
    #: "except", "walrus", "match".
    kind: str
    #: The binding site (the target Name / arg / def node).
    node: ast.AST
    #: RHS expression, when one exists.  For tuple unpacking this is the
    #: structurally matching sub-expression when the RHS literal aligns
    #: (``a, b = x, y`` binds ``a`` to ``x``); otherwise the whole RHS
    #: with :attr:`unpacked` set.  ``for``/``comp`` bindings store the
    #: *iterable* with :attr:`unpacked` set (the name holds an element).
    value: Optional[ast.AST] = None
    #: True when ``value`` is a containing expression, not the bound
    #: value itself (unpacking target, loop element, ...).
    unpacked: bool = False
    #: Canonical dotted import target for "import" bindings.
    import_target: Optional[str] = None

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 0)


@dataclass
class Scope:
    """One lexical scope and everything bound or read inside it."""

    kind: str
    node: ast.AST
    parent: Optional["Scope"] = None
    #: Display name ("<module>", function/class name, "<listcomp>"...).
    name: str = ""
    bindings: dict[str, list[Binding]] = field(default_factory=dict)
    #: Name -> every Load of it occurring directly in this scope.
    loads: dict[str, list[ast.Name]] = field(default_factory=dict)
    globals_: set[str] = field(default_factory=set)
    nonlocals: set[str] = field(default_factory=set)
    children: list["Scope"] = field(default_factory=list)

    @property
    def is_function(self) -> bool:
        return self.kind in (FUNCTION, ASYNC_FUNCTION)

    def bind(self, binding: Binding) -> None:
        self.bindings.setdefault(binding.name, []).append(binding)

    def binds(self, name: str) -> bool:
        return name in self.bindings

    def walk(self) -> Iterator["Scope"]:
        """This scope and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


class ScopeTable:
    """The complete scope structure of one parsed module."""

    def __init__(self, module: Scope) -> None:
        self.module = module
        #: id(node) -> the scope the node executes in.
        self._scope_of: dict[int, Scope] = {}
        #: id(node) -> syntactic parent node.
        self._parent_of: dict[int, ast.AST] = {}

    # -- construction ---------------------------------------------------------
    @classmethod
    def of(cls, tree: ast.AST) -> "ScopeTable":
        """Build the scope table for a parsed module."""
        module = Scope(kind=MODULE, node=tree, name="<module>")
        table = cls(module)
        _Builder(table).build(tree, module)
        return table

    # -- structural queries ---------------------------------------------------
    def scope_of(self, node: ast.AST) -> Scope:
        """The scope ``node`` executes in (the module scope as fallback)."""
        return self._scope_of.get(id(node), self.module)

    def parent_of(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of ``node`` (None for the module)."""
        return self._parent_of.get(id(node))

    def enclosing_function(self, node: ast.AST) -> Optional[Scope]:
        """The nearest enclosing function/lambda scope, if any."""
        scope: Optional[Scope] = self.scope_of(node)
        while scope is not None:
            if scope.kind in (FUNCTION, ASYNC_FUNCTION, LAMBDA):
                return scope
            scope = scope.parent
        return None

    def in_async_function(self, node: ast.AST) -> bool:
        """True when ``node`` executes inside an ``async def`` body."""
        enclosing = self.enclosing_function(node)
        return enclosing is not None and enclosing.kind == ASYNC_FUNCTION

    # -- name resolution ------------------------------------------------------
    def resolving_scope(self, scope: Scope, name: str) -> Optional[Scope]:
        """The scope whose binding a Load of ``name`` in ``scope`` sees.

        Follows ``global``/``nonlocal`` declarations and skips class
        scopes for names referenced from nested functions (Python's
        class bodies are not part of the lexical chain).
        """
        if name in scope.globals_:
            return self._module_if_binds(name)
        if name in scope.nonlocals:
            outer = scope.parent
            while outer is not None and outer.kind != MODULE:
                if outer.is_function and outer.binds(name):
                    return outer
                outer = outer.parent
            return None
        current: Optional[Scope] = scope
        first = True
        while current is not None:
            if (first or current.kind != CLASS) and current.binds(name):
                # Redirections recorded in the binding scope also apply.
                if name in current.globals_ and current.kind != MODULE:
                    return self._module_if_binds(name)
                return current
            first = False
            current = current.parent
        return None

    def _module_if_binds(self, name: str) -> Optional[Scope]:
        return self.module if self.module.binds(name) else None

    def lookup(self, scope: Scope, name: str) -> list[Binding]:
        """Every binding a Load of ``name`` in ``scope`` may observe."""
        resolved = self.resolving_scope(scope, name)
        return resolved.bindings.get(name, []) if resolved is not None else []

    def loads_resolving_to(self, scope: Scope, name: str) -> list[ast.Name]:
        """Loads of ``name`` (anywhere in or under ``scope``) that resolve
        to ``scope``'s own binding — i.e. real uses of that binding,
        including from nested closures."""
        uses: list[ast.Name] = []
        for inner in scope.walk():
            for load in inner.loads.get(name, ()):  # pragma: no branch
                if self.resolving_scope(inner, name) is scope:
                    uses.append(load)
        return uses

    # -- canonical dotted names ----------------------------------------------
    def canonical(self, node: ast.AST) -> Optional[str]:
        """Scope-aware canonical dotted path of a Name/Attribute chain.

        Resolves through import bindings only: a name shadowed by any
        non-import binding in its resolving scope is *not* canonical.
        """
        if isinstance(node, ast.Name):
            bindings = self.lookup(self.scope_of(node), node.id)
            if not bindings:
                return None
            targets = {b.import_target for b in bindings}
            if len(targets) == 1 and None not in targets:
                return next(iter(targets))
            return None
        if isinstance(node, ast.Attribute):
            base = self.canonical(node.value)
            if base is not None:
                return f"{base}.{node.attr}"
        return None


def table_for(source: "SourceFile") -> ScopeTable:
    """The (cached) scope table of a parsed source file.

    Several rules walk the same module; the table is built once per file
    and memoized on the :class:`~repro.lint.source.SourceFile` itself.
    """
    assert source.tree is not None
    cached = getattr(source, "_scope_table", None)
    if isinstance(cached, ScopeTable):
        return cached
    table = ScopeTable.of(source.tree)
    source._scope_table = table  # type: ignore[attr-defined]
    return table


class _Builder:
    """Single-pass scope-tree builder."""

    def __init__(self, table: ScopeTable) -> None:
        self.table = table

    def build(self, node: ast.AST, scope: Scope) -> None:
        for child in ast.iter_child_nodes(node):
            self.table._parent_of[id(child)] = node
        self._dispatch(node, scope)

    # -- helpers --------------------------------------------------------------
    def _enter(self, node: ast.AST, scope: Scope) -> None:
        """Record ``node`` in ``scope`` and recurse into its children."""
        self.table._scope_of[id(node)] = scope
        for child in ast.iter_child_nodes(node):
            self.table._parent_of[id(child)] = node
            self._dispatch(child, scope)

    def _dispatch(self, node: ast.AST, scope: Scope) -> None:
        handler = getattr(self, f"_visit_{type(node).__name__}", None)
        if handler is not None:
            handler(node, scope)
        else:
            self._generic(node, scope)

    def _generic(self, node: ast.AST, scope: Scope) -> None:
        self.table._scope_of[id(node)] = scope
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                scope.loads.setdefault(node.id, []).append(node)
            return
        for child in ast.iter_child_nodes(node):
            self.table._parent_of[id(child)] = node
            self._dispatch(child, scope)

    def _new_scope(self, kind: str, node: ast.AST, parent: Scope,
                   name: str) -> Scope:
        child = Scope(kind=kind, node=node, parent=parent, name=name)
        parent.children.append(child)
        return child

    def _bind_target(self, target: ast.AST, scope: Scope, kind: str,
                     value: Optional[ast.AST], unpacked: bool = False
                     ) -> None:
        """Bind one assignment target, aligning literal unpackings."""
        if isinstance(target, ast.Name):
            scope.bind(Binding(name=target.id, kind=kind, node=target,
                               value=value, unpacked=unpacked))
            self.table._scope_of[id(target)] = scope
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements: list[Optional[ast.AST]]
            if (isinstance(value, (ast.Tuple, ast.List)) and not unpacked
                    and len(value.elts) == len(target.elts)
                    and not any(isinstance(e, ast.Starred)
                                for e in target.elts)):
                elements = list(value.elts)
                aligned = True
            else:
                elements = [value] * len(target.elts)
                aligned = False
            for sub, sub_value in zip(target.elts, elements):
                self._bind_target(sub, scope, kind, sub_value,
                                  unpacked=unpacked or not aligned)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, scope, kind, value,
                              unpacked=True)
        else:
            # Attribute / Subscript targets bind no name; still walk them
            # (their value expressions contain Loads).
            self._enter(target, scope)

    def _params(self, args: ast.arguments, scope: Scope) -> None:
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            scope.bind(Binding(name=arg.arg, kind="param", node=arg))
        for arg in (args.vararg, args.kwarg):
            if arg is not None:
                scope.bind(Binding(name=arg.arg, kind="param", node=arg))

    # -- statements that bind -------------------------------------------------
    def _visit_FunctionDef(self, node: ast.FunctionDef, scope: Scope,
                           kind: str = FUNCTION) -> None:
        self.table._scope_of[id(node)] = scope
        scope.bind(Binding(name=node.name, kind="def", node=node))
        # Decorators, defaults, and annotations evaluate in the defining
        # scope, not the function's own.
        outer_parts: list[ast.AST] = [*node.decorator_list,
                                      *node.args.defaults,
                                      *node.args.kw_defaults]
        if node.returns is not None:
            outer_parts.append(node.returns)
        for part in outer_parts:
            if part is not None:
                self.table._parent_of[id(part)] = node
                self._dispatch(part, scope)
        inner = self._new_scope(kind, node, scope, node.name)
        self._params(node.args, inner)
        for stmt in node.body:
            self.table._parent_of[id(stmt)] = node
            self._dispatch(stmt, inner)

    def _visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef,
                                scope: Scope) -> None:
        self._visit_FunctionDef(node, scope, kind=ASYNC_FUNCTION)  # type: ignore[arg-type]

    def _visit_Lambda(self, node: ast.Lambda, scope: Scope) -> None:
        self.table._scope_of[id(node)] = scope
        for default in (*node.args.defaults, *node.args.kw_defaults):
            if default is not None:
                self.table._parent_of[id(default)] = node
                self._dispatch(default, scope)
        inner = self._new_scope(LAMBDA, node, scope, "<lambda>")
        self._params(node.args, inner)
        self.table._parent_of[id(node.body)] = node
        self._dispatch(node.body, inner)

    def _visit_ClassDef(self, node: ast.ClassDef, scope: Scope) -> None:
        self.table._scope_of[id(node)] = scope
        scope.bind(Binding(name=node.name, kind="class", node=node))
        for part in (*node.decorator_list, *node.bases,
                     *[kw.value for kw in node.keywords]):
            self.table._parent_of[id(part)] = node
            self._dispatch(part, scope)
        inner = self._new_scope(CLASS, node, scope, node.name)
        for stmt in node.body:
            self.table._parent_of[id(stmt)] = node
            self._dispatch(stmt, inner)

    def _visit_Assign(self, node: ast.Assign, scope: Scope) -> None:
        self.table._scope_of[id(node)] = scope
        self.table._parent_of[id(node.value)] = node
        self._dispatch(node.value, scope)
        for target in node.targets:
            self.table._parent_of[id(target)] = node
            self._bind_target(target, scope, "assign", node.value)

    def _visit_AnnAssign(self, node: ast.AnnAssign, scope: Scope) -> None:
        self.table._scope_of[id(node)] = scope
        self.table._parent_of[id(node.annotation)] = node
        self._dispatch(node.annotation, scope)
        if node.value is not None:
            self.table._parent_of[id(node.value)] = node
            self._dispatch(node.value, scope)
        self.table._parent_of[id(node.target)] = node
        self._bind_target(node.target, scope, "annassign", node.value)

    def _visit_AugAssign(self, node: ast.AugAssign, scope: Scope) -> None:
        self.table._scope_of[id(node)] = scope
        self.table._parent_of[id(node.value)] = node
        self._dispatch(node.value, scope)
        self.table._parent_of[id(node.target)] = node
        if isinstance(node.target, ast.Name):
            # An augmented assignment both reads and rebinds the name.
            scope.loads.setdefault(node.target.id, []).append(node.target)
            scope.bind(Binding(name=node.target.id, kind="augassign",
                               node=node.target, value=node.value))
            self.table._scope_of[id(node.target)] = scope
        else:
            self._enter(node.target, scope)

    def _visit_NamedExpr(self, node: ast.NamedExpr, scope: Scope) -> None:
        self.table._scope_of[id(node)] = scope
        self.table._parent_of[id(node.value)] = node
        self._dispatch(node.value, scope)
        # PEP 572: in a comprehension, the walrus binds in the enclosing
        # function/module scope, not the comprehension's own.
        owner = scope
        while owner.kind == COMPREHENSION and owner.parent is not None:
            owner = owner.parent
        owner.bind(Binding(name=node.target.id, kind="walrus",
                           node=node.target, value=node.value))
        self.table._scope_of[id(node.target)] = owner

    def _visit_For(self, node: Union[ast.For, ast.AsyncFor],
                   scope: Scope) -> None:
        self.table._scope_of[id(node)] = scope
        self.table._parent_of[id(node.iter)] = node
        self._dispatch(node.iter, scope)
        self.table._parent_of[id(node.target)] = node
        self._bind_target(node.target, scope, "for", node.iter,
                          unpacked=True)
        for stmt in (*node.body, *node.orelse):
            self.table._parent_of[id(stmt)] = node
            self._dispatch(stmt, scope)

    _visit_AsyncFor = _visit_For

    def _visit_With(self, node: Union[ast.With, ast.AsyncWith],
                    scope: Scope) -> None:
        self.table._scope_of[id(node)] = scope
        for item in node.items:
            self.table._parent_of[id(item.context_expr)] = node
            self._dispatch(item.context_expr, scope)
            if item.optional_vars is not None:
                self.table._parent_of[id(item.optional_vars)] = node
                self._bind_target(item.optional_vars, scope, "with",
                                  item.context_expr, unpacked=True)
        for stmt in node.body:
            self.table._parent_of[id(stmt)] = node
            self._dispatch(stmt, scope)

    _visit_AsyncWith = _visit_With

    def _visit_ExceptHandler(self, node: ast.ExceptHandler,
                             scope: Scope) -> None:
        self.table._scope_of[id(node)] = scope
        if node.name is not None:
            scope.bind(Binding(name=node.name, kind="except", node=node))
        for child in ast.iter_child_nodes(node):
            self.table._parent_of[id(child)] = node
            self._dispatch(child, scope)

    def _visit_Import(self, node: ast.Import, scope: Scope) -> None:
        self.table._scope_of[id(node)] = scope
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = (alias.name if alias.asname
                      else alias.name.split(".")[0])
            scope.bind(Binding(name=local, kind="import", node=node,
                               import_target=target))

    def _visit_ImportFrom(self, node: ast.ImportFrom, scope: Scope) -> None:
        self.table._scope_of[id(node)] = scope
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            target = (f"{node.module}.{alias.name}"
                      if node.module and not node.level else None)
            scope.bind(Binding(name=local, kind="import", node=node,
                               import_target=target))

    def _visit_Global(self, node: ast.Global, scope: Scope) -> None:
        self.table._scope_of[id(node)] = scope
        scope.globals_.update(node.names)

    def _visit_Nonlocal(self, node: ast.Nonlocal, scope: Scope) -> None:
        self.table._scope_of[id(node)] = scope
        scope.nonlocals.update(node.names)

    # -- comprehensions -------------------------------------------------------
    def _visit_comp(self, node: ast.AST, scope: Scope, name: str,
                    bodies: list[ast.AST]) -> None:
        generators = node.generators  # type: ignore[attr-defined]
        self.table._scope_of[id(node)] = scope
        inner = self._new_scope(COMPREHENSION, node, scope, name)
        for index, gen in enumerate(generators):
            # The first iterable evaluates eagerly in the enclosing
            # scope; later iterables and all conditions run inside.
            iter_scope = scope if index == 0 else inner
            self.table._parent_of[id(gen.iter)] = node
            self._dispatch(gen.iter, iter_scope)
            self.table._parent_of[id(gen.target)] = node
            self._bind_target(gen.target, inner, "comp", gen.iter,
                              unpacked=True)
            for cond in gen.ifs:
                self.table._parent_of[id(cond)] = node
                self._dispatch(cond, inner)
        for body in bodies:
            self.table._parent_of[id(body)] = node
            self._dispatch(body, inner)

    def _visit_ListComp(self, node: ast.ListComp, scope: Scope) -> None:
        self._visit_comp(node, scope, "<listcomp>", [node.elt])

    def _visit_SetComp(self, node: ast.SetComp, scope: Scope) -> None:
        self._visit_comp(node, scope, "<setcomp>", [node.elt])

    def _visit_GeneratorExp(self, node: ast.GeneratorExp,
                            scope: Scope) -> None:
        self._visit_comp(node, scope, "<genexpr>", [node.elt])

    def _visit_DictComp(self, node: ast.DictComp, scope: Scope) -> None:
        self._visit_comp(node, scope, "<dictcomp>", [node.key, node.value])
