"""Finding: one diagnostic produced by a lint rule.

A finding pins a rule violation to ``path:line``, carries the rule id, a
one-line message, and a fix hint.  Its :meth:`Finding.fingerprint` —
deliberately line-number-free — identifies the finding across code motion
for the baseline ratchet (see :mod:`repro.lint.baseline`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: where, which rule, what, and how to fix it."""

    #: Path of the offending file, relative to the scanned root (posix).
    path: str
    #: 1-based line of the offending node (0 for whole-file findings).
    line: int
    #: Rule identifier, e.g. ``"REP001"``.
    rule: str
    #: One-line description of the violation.
    message: str
    #: How to fix it (or how to allowlist it legitimately).
    hint: str = ""
    #: True when the finding matched the baseline and does not fail the run.
    baselined: bool = field(default=False, compare=False)

    def fingerprint(self) -> str:
        """Stable identity for baselining: rule + path + message, no line.

        Line numbers are excluded so unrelated edits above a baselined
        finding do not churn the baseline file.
        """
        return f"{self.rule}::{self.path}::{self.message}"

    def as_baselined(self) -> "Finding":
        """A copy marked as matched by the baseline."""
        return replace(self, baselined=True)

    def to_dict(self) -> dict:
        """JSON-ready form (the ``--format json`` finding schema)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
            "baselined": self.baselined,
        }

    def render(self) -> str:
        """Human-readable one/two-liner for terminal output."""
        mark = " [baselined]" if self.baselined else ""
        text = f"{self.path}:{self.line}: {self.rule}{mark} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text
