"""Baseline ratchet: accepted findings that must never grow.

A baseline file records the fingerprints of known findings (as counts,
since a fingerprint omits line numbers and may legitimately occur more
than once).  The engine marks up to the recorded count of matching
findings as *baselined* — they are reported but do not fail the run —
while any finding beyond the baseline stays *new* and fails.  Re-running
with ``--update-baseline`` rewrites the file to the current findings, so
the baseline only moves when a human decides it should.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable

from repro.lint.findings import Finding

__all__ = ["Baseline", "BASELINE_VERSION"]

BASELINE_VERSION = 1


class Baseline:
    """Fingerprint counts loaded from / saved to a JSON baseline file."""

    def __init__(self, counts: dict[str, int] | None = None) -> None:
        self.counts: Counter[str] = Counter(counts or {})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file (raises ValueError on a bad schema)."""
        data = json.loads(path.read_text(encoding="utf-8"))
        if (not isinstance(data, dict)
                or data.get("version") != BASELINE_VERSION
                or not isinstance(data.get("findings"), dict)):
            raise ValueError(
                f"{path}: not a v{BASELINE_VERSION} lint baseline")
        counts = data["findings"]
        if not all(isinstance(k, str) and isinstance(v, int) and v > 0
                   for k, v in counts.items()):
            raise ValueError(f"{path}: malformed baseline fingerprints")
        return cls(counts)

    @classmethod
    def of(cls, findings: Iterable[Finding]) -> "Baseline":
        """A baseline accepting exactly the given findings."""
        return cls(Counter(f.fingerprint() for f in findings))

    def save(self, path: Path) -> None:
        """Write the baseline (sorted, one fingerprint per entry)."""
        payload = {
            "version": BASELINE_VERSION,
            "findings": dict(sorted(self.counts.items())),
        }
        path.write_text(json.dumps(payload, indent=2) + "\n",
                        encoding="utf-8")

    def apply(self, findings: list[Finding]) -> tuple[list[Finding],
                                                      list[Finding]]:
        """Split findings into (new, baselined).

        Findings are consumed against the recorded counts in sorted
        order, so which occurrences are baselined is deterministic.
        """
        remaining = Counter(self.counts)
        new: list[Finding] = []
        baselined: list[Finding] = []
        for finding in findings:
            key = finding.fingerprint()
            if remaining[key] > 0:
                remaining[key] -= 1
                baselined.append(finding.as_baselined())
            else:
                new.append(finding)
        return new, baselined
