"""repro.lint — domain-aware static analysis for the reproduction.

Generic linters cannot check the two invariants this repo's credibility
rests on: runs are bit-reproducible from an explicit seed, and the
reference and fast engines consume the exact same model surface.  This
package is a small AST-based analyzer with rules for exactly those
invariants:

- ``REP001`` wall-clock sanitizer (no host clocks/timers, no ambient RNG),
- ``REP002`` RNG seed discipline (every generator explicitly seeded),
- ``REP003`` no float equality on simulated-time values,
- ``REP004`` cross-engine config parity (every config field reaches both
  engines, or is PARITY_EXEMPT with a rationale),
- ``REP005`` event-name registry discipline (``repro/obs/events.py`` is
  the single event vocabulary),
- ``REP006`` tracer-hook symmetry between the engines.

Run it as ``repro-broadcast lint`` or ``python -m repro.lint``; see
``docs/STATIC_ANALYSIS.md`` for the allowlist-pragma and baseline
workflow, the path-scoped ``[tool.repro-lint]`` configuration, and how
to add a rule.
"""

from repro.lint.baseline import Baseline
from repro.lint.config import (
    EMPTY_CONFIG,
    AllowEntry,
    LintConfig,
    LintConfigError,
    discover_lint_config,
    load_lint_config,
    parse_lint_config,
)
from repro.lint.engine import LintResult, run_lint
from repro.lint.findings import Finding
from repro.lint.rules import REGISTRY

__all__ = [
    "Finding",
    "LintResult",
    "run_lint",
    "Baseline",
    "REGISTRY",
    "AllowEntry",
    "LintConfig",
    "LintConfigError",
    "EMPTY_CONFIG",
    "parse_lint_config",
    "load_lint_config",
    "discover_lint_config",
]
