"""Runtime determinism sanitizer: replay a config, diff traces bit-exactly.

The static rules prove the *sources* of nondeterminism are absent —
REP001 bans wall clocks in sim state, REP002/REP010 pin every RNG to the
configured seed, REP007-REP009 police the asyncio layer.  This module
checks the *outcome*: running the same :class:`~repro.core.config.\
SystemConfig` twice on the same engine must produce bit-identical slot
traces.  Each engine is replayed two ways:

- **in-process** — a second :func:`~repro.obs.compare.capture_trace` in
  the same interpreter catches leaked module/global state (a cached RNG,
  an accumulator that survives engine construction),
- **subprocess under a different ``PYTHONHASHSEED``** — hash
  randomization can only change before interpreter start, so a child
  process (``python -m repro.lint.sanitize --child``) replays the config
  with a different hash seed and ships its trace back as a columnar
  ``.npy``.  A diff here means iteration order of a dict or set leaked
  into simulation state — invisible to any in-process check.

The scope boundary follows DESIGN.md: the *simulation state machine* is
deterministic and is what gets diffed; the wall-clock ``repro.net``
layer is nondeterministic by construction and is out of scope here (its
invariants are checked by ``serve --self-test`` instead).

``--inject-divergence SLOT`` perturbs the in-process replay from that
slot onward — the documented self-test hook proving the diff actually
trips and names the first divergent slot.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional, Sequence

from repro.obs.compare import capture_trace, diff_traces
from repro.obs.trace import SlotRecord

__all__ = [
    "DEFAULT_HASH_SEED",
    "ENGINES",
    "ReplayCheck",
    "EngineReport",
    "SanitizeReport",
    "sanitize_config",
    "main",
]

#: PYTHONHASHSEED handed to the subprocess replay (any value that is
#: unlikely to be the parent's own seed does the job).
DEFAULT_HASH_SEED = "31337"

#: Engines the sanitizer knows how to replay.
ENGINES: tuple[str, ...] = ("fast", "reference")

#: Wall-clock ceiling on one subprocess replay (the child runs the same
#: config the parent just ran in-process, so 10 minutes is generous).
CHILD_TIMEOUT = 600.0


@dataclass(frozen=True)
class ReplayCheck:
    """One baseline-vs-replay comparison."""

    #: What was replayed: "replay" (in-process) or
    #: "subprocess PYTHONHASHSEED=<seed>".
    label: str
    #: True when the replay matched the baseline record for record.
    ok: bool
    #: First divergent slot (None when identical).
    divergent_slot: Optional[int]
    #: The full divergence report (empty string when identical).
    detail: str


@dataclass(frozen=True)
class EngineReport:
    """All replay checks for one engine."""

    engine: str
    #: Baseline trace length in slot records.
    slots: int
    checks: tuple[ReplayCheck, ...]

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)


@dataclass(frozen=True)
class SanitizeReport:
    """Outcome of sanitizing one config across engines."""

    engines: tuple[EngineReport, ...]

    @property
    def ok(self) -> bool:
        return all(engine.ok for engine in self.engines)

    def to_dict(self) -> dict:
        """JSON-ready form (mirrors :meth:`format`)."""
        return {
            "ok": self.ok,
            "engines": [
                {
                    "engine": engine.engine,
                    "ok": engine.ok,
                    "slots": engine.slots,
                    "checks": [
                        {
                            "label": check.label,
                            "ok": check.ok,
                            "divergent_slot": check.divergent_slot,
                        }
                        for check in engine.checks
                    ],
                }
                for engine in self.engines
            ],
        }

    def format(self) -> str:
        """Human-readable report; failures include the trace diff."""
        lines = []
        for engine in self.engines:
            lines.append(f"engine {engine.engine}: {engine.slots} slot "
                         f"records")
            for check in engine.checks:
                verdict = ("identical" if check.ok
                           else f"DIVERGED at slot {check.divergent_slot}")
                lines.append(f"  {check.label:<34}: {verdict}")
                if not check.ok:
                    for row in check.detail.splitlines():
                        lines.append(f"    {row}")
        checks = sum(len(engine.checks) for engine in self.engines)
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(f"sanitize: {verdict} ({len(self.engines)} engine(s), "
                     f"{checks} check(s))")
        return "\n".join(lines)


def _inject(records: list[SlotRecord], slot: int) -> list[SlotRecord]:
    """Perturb every record from ``slot`` onward (self-test hook).

    Bumps ``queue_depth`` — a field every slot record carries — so the
    diff must trip exactly at the first perturbed record.  A ``slot``
    beyond the end of the trace perturbs the last record instead, so the
    hook can never silently do nothing.
    """
    if not records:
        return records
    if all(record.slot < slot for record in records):
        return records[:-1] + [replace(records[-1],
                                       queue_depth=records[-1].queue_depth + 1)]
    return [replace(record, queue_depth=record.queue_depth + 1)
            if record.slot >= slot else record
            for record in records]


def _check(label: str, baseline: Sequence[SlotRecord],
           replay: Sequence[SlotRecord], context: int) -> ReplayCheck:
    """Diff a replay against the baseline; bit-exact or it fails."""
    diff = diff_traces(baseline, replay, context=context)
    if diff.identical:
        return ReplayCheck(label=label, ok=True, divergent_slot=None,
                           detail="")
    return ReplayCheck(label=label, ok=False,
                       divergent_slot=diff.divergent_slot,
                       detail=diff.format())


def _subprocess_replay(config, engine: str, hash_seed: str,
                       timeout: float = CHILD_TIMEOUT) -> list[SlotRecord]:
    """Replay ``config`` in a child interpreter under ``hash_seed``.

    The child is ``python -m repro.lint.sanitize --child``; it reads the
    config as JSON on stdin and writes its slot trace as a columnar
    ``.npy``, which keeps the exchange format independent of the hash
    seed being varied.
    """
    from repro.obs.columnar import array_to_records, load_columnar
    from repro.obs.manifest import config_to_dict

    import repro

    src_root = Path(repro.__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_root)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    with tempfile.TemporaryDirectory(prefix="repro-sanitize-") as tmp:
        out = Path(tmp) / "replay.npy"
        try:
            proc = subprocess.run(
                [sys.executable, "-m", "repro.lint.sanitize", "--child",
                 "--engine", engine, "--out", str(out)],
                input=json.dumps(config_to_dict(config)),
                capture_output=True, text=True, env=env, timeout=timeout)
        except subprocess.TimeoutExpired:
            raise RuntimeError(
                f"sanitize child ({engine}) exceeded {timeout:.0f}s")
        if proc.returncode != 0:
            detail = proc.stderr.strip() or proc.stdout.strip()
            raise RuntimeError(
                f"sanitize child ({engine}) exited "
                f"{proc.returncode}: {detail}")
        return array_to_records(load_columnar(out, mmap=False))


def sanitize_config(config, engines: Sequence[str] = ENGINES,
                    hash_seed: Optional[str] = DEFAULT_HASH_SEED,
                    inject_divergence: Optional[int] = None,
                    context: int = 3) -> SanitizeReport:
    """Replay ``config`` per engine and diff the traces bit-exactly.

    Args:
        config: the :class:`~repro.core.config.SystemConfig` to replay.
        engines: which engines to check (default: both).
        hash_seed: ``PYTHONHASHSEED`` for the subprocess replay; ``None``
            skips the subprocess check entirely.
        inject_divergence: perturb the in-process replay from this slot
            onward (self-test hook; see module docstring).
        context: matching records shown before a divergence.

    Raises:
        ValueError: on an unknown engine name.
        RuntimeError: when a subprocess replay fails to produce a trace.
    """
    reports = []
    for engine in engines:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r} "
                             f"(known: {', '.join(ENGINES)})")
        baseline = capture_trace(config, engine=engine)
        replay = capture_trace(config, engine=engine)
        if inject_divergence is not None:
            replay = _inject(replay, inject_divergence)
        checks = [_check("replay (in-process)", baseline, replay, context)]
        if hash_seed is not None:
            child = _subprocess_replay(config, engine, hash_seed)
            checks.append(_check(
                f"subprocess PYTHONHASHSEED={hash_seed}",
                baseline, child, context))
        reports.append(EngineReport(engine=engine, slots=len(baseline),
                                    checks=tuple(checks)))
    return SanitizeReport(engines=tuple(reports))


def _child_main(args) -> int:
    """Child-mode entry: config on stdin, columnar trace to ``--out``."""
    from repro.obs.columnar import ColumnarSink
    from repro.obs.manifest import config_from_dict

    config = config_from_dict(json.load(sys.stdin))
    records = capture_trace(config, engine=args.engine)
    with ColumnarSink(args.out, table="slot") as sink:
        for record in records:
            sink.emit(record)
    print(json.dumps({
        "records": len(records),
        "hash_seed": os.environ.get("PYTHONHASHSEED"),
    }))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.lint.sanitize`` — the subprocess child entry.

    The user-facing front end is ``repro-broadcast sanitize``; running
    this module directly only supports ``--child`` mode.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint.sanitize",
        description="determinism-sanitizer subprocess child")
    parser.add_argument("--child", action="store_true",
                        help="replay the config read from stdin")
    parser.add_argument("--engine", choices=ENGINES, default="fast")
    parser.add_argument("--out", type=Path, required=False,
                        help="(--child) columnar .npy trace destination")
    args = parser.parse_args(argv)
    if not args.child or args.out is None:
        parser.error("this entry point only supports --child --out FILE; "
                     "use 'repro-broadcast sanitize' instead")
    return _child_main(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
