"""The analysis driver: walk files, run rules, apply pragmas + baseline.

:func:`run_lint` is the single entry point used by the CLI and the test
suite.  It parses every ``.py`` file under the given paths once, runs the
selected file rules per module and project rules over the whole set,
drops findings suppressed by inline allow-pragmas or by the path-scoped
``[tool.repro-lint]`` configuration (see :mod:`repro.lint.config`), and
splits the rest against an optional :class:`~repro.lint.baseline.Baseline`.

Two engine-emitted pseudo-rules ride along:

- ``LINT000`` — parse failures and malformed pragmas;
- ``LINT001`` — *unused* exemptions: an allow-pragma (or an in-scope
  ``[[tool.repro-lint.allow]]`` entry) that suppressed nothing this
  scan.  Exemption sets rot as rules and code evolve; flagging dead ones
  keeps the audit trail honest.  Disabled via ``unused_pragmas=False``
  (CLI ``--no-unused-pragma``) for partial-tree scans.

The per-file map step is embarrassingly parallel: ``jobs > 1`` fans file
parsing + file rules out over a process pool, then runs project rules
single-pass over the merged result.  Findings are fully sorted by
``(path, line, rule, message)`` before baseline fingerprinting and
rendering, so worker scheduling and dict order can never reorder reports
or churn baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.lint.baseline import Baseline
from repro.lint.config import EMPTY_CONFIG, LintConfig, discover_lint_config
from repro.lint.findings import Finding
from repro.lint.rules import (
    PRAGMA_RULE_ID,
    REGISTRY,
    UNUSED_PRAGMA_RULE_ID,
    FileRule,
    ProjectRule,
)
from repro.lint.source import Project, SourceFile, load_source

__all__ = ["LintResult", "run_lint", "collect_files"]

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".ruff_cache",
                        ".mypy_cache", ".pytest_cache"})


@dataclass
class LintResult:
    """Everything one analysis run produced."""

    #: Non-baselined findings (these fail the run), sorted.
    findings: list[Finding] = field(default_factory=list)
    #: Findings matched by the baseline (reported, never failing).
    baselined: list[Finding] = field(default_factory=list)
    #: Findings suppressed by inline allow-pragmas.
    suppressed: int = 0
    #: Findings exempted by the path-scoped ``[tool.repro-lint]`` config.
    config_allowed: int = 0
    #: Number of files parsed.
    files_scanned: int = 0
    #: Rule ids that ran.
    rules: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing non-baselined was found."""
        return not self.findings

    def all_findings(self) -> list[Finding]:
        """New + baselined findings in one sorted list."""
        return sorted(self.findings + self.baselined)

    def to_dict(self) -> dict:
        """The ``--format json`` output schema (version 1)."""
        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "rules": self.rules,
            "counts": {
                "new": len(self.findings),
                "baselined": len(self.baselined),
                "suppressed": self.suppressed,
                "config_allowed": self.config_allowed,
            },
            "findings": [f.to_dict() for f in self.all_findings()],
        }


def collect_files(paths: Sequence[Path]) -> list[tuple[Path, str]]:
    """(absolute path, root-relative posix path) for every .py under paths.

    Directory arguments are walked recursively; file arguments are taken
    as-is with their basename as the relative path.  Raises
    FileNotFoundError for a missing argument (the CLI maps it to a usage
    error).
    """
    collected: list[tuple[Path, str]] = []
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            collected.append((root, root.name))
        elif root.is_dir():
            for file_path in sorted(root.rglob("*.py")):
                if any(part in _SKIP_DIRS for part in file_path.parts):
                    continue
                rel = file_path.relative_to(root).as_posix()
                collected.append((file_path, rel))
        else:
            raise FileNotFoundError(f"no such file or directory: {root}")
    return collected


def _select_rules(select: Optional[Sequence[str]]) -> list[str]:
    if select is None:
        return sorted(REGISTRY)
    unknown = sorted(set(select) - set(REGISTRY))
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(unknown)}")
    return sorted(set(select))


def _scan_batch(batch: Sequence[tuple[Path, str]],
                known: frozenset[str],
                rule_ids: Sequence[str],
                ) -> list[tuple[SourceFile, list[Finding]]]:
    """Parse one batch of files and run the file rules on each.

    Top-level (picklable) so it can run inside a process-pool worker;
    the lazily cached scope table is stripped before the SourceFile
    crosses back to the parent, since its identity-keyed node maps do
    not survive pickling.
    """
    results: list[tuple[SourceFile, list[Finding]]] = []
    for path, rel in batch:
        source = load_source(path, rel, known)
        findings: list[Finding] = []
        if source.tree is not None:
            for rule_id in rule_ids:
                rule = REGISTRY[rule_id]
                if isinstance(rule, FileRule):
                    findings.extend(rule.check(source))
        source.__dict__.pop("_scope_table", None)
        results.append((source, findings))
    return results


def _scan_files(files: Sequence[tuple[Path, str]],
                known: frozenset[str],
                rule_ids: Sequence[str],
                jobs: Optional[int],
                ) -> list[tuple[SourceFile, list[Finding]]]:
    """The map step: serial, or fanned out over a process pool."""
    workers = min(jobs or 1, len(files))
    if workers <= 1 or len(files) < 2:
        return _scan_batch(files, known, rule_ids)
    # Contiguous chunks keep the merged order identical to a serial run
    # (the final sort makes ordering cosmetic, but determinism is free).
    from concurrent.futures import ProcessPoolExecutor

    chunk = (len(files) + workers - 1) // workers
    batches = [files[start:start + chunk]
               for start in range(0, len(files), chunk)]
    results: list[tuple[SourceFile, list[Finding]]] = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for part in pool.map(_scan_batch, batches,
                             [known] * len(batches),
                             [rule_ids] * len(batches)):
            results.extend(part)
    return results


def run_lint(paths: Sequence[Path],
             select: Optional[Sequence[str]] = None,
             baseline: Optional[Baseline] = None,
             config: Optional[LintConfig] = None,
             jobs: Optional[int] = None,
             unused_pragmas: bool = True) -> LintResult:
    """Analyze ``paths`` with the selected rules (default: all).

    ``config`` scopes rule exemptions to path patterns; None (the
    default) auto-discovers the nearest ``pyproject.toml`` with a
    ``[tool.repro-lint]`` section above the first scanned path — pass
    :data:`~repro.lint.config.EMPTY_CONFIG` to disable.

    ``jobs`` > 1 parallelizes file parsing and per-file rules over a
    process pool (project rules still run single-pass afterwards).
    ``unused_pragmas=False`` disables the LINT001 unused-exemption
    check.

    Raises FileNotFoundError for missing paths, KeyError for unknown
    rule ids, and :class:`~repro.lint.config.LintConfigError` for a
    malformed configuration — the CLI converts all three into usage
    errors (exit 2).
    """
    rule_ids = _select_rules(select)
    if config is None:
        config = (discover_lint_config(Path(paths[0])) if paths
                  else EMPTY_CONFIG)
    known = (frozenset(REGISTRY)
             | {PRAGMA_RULE_ID, UNUSED_PRAGMA_RULE_ID})
    scanned = _scan_files(collect_files(paths), known, rule_ids, jobs)
    sources = [source for source, _ in scanned]
    project = Project(files=sources)

    raw: list[Finding] = []
    for source, file_findings in scanned:
        if source.parse_error is not None:
            raw.append(Finding(
                path=source.rel, line=0, rule=PRAGMA_RULE_ID,
                message=f"file does not parse: {source.parse_error}",
                hint="fix the syntax error; unparseable files are "
                     "invisible to every other rule"))
            continue
        for error in source.pragma_errors:
            raw.append(Finding(
                path=source.rel, line=error.line, rule=PRAGMA_RULE_ID,
                message=error.message,
                hint="write '# lint: allow[RULE,...] -- rationale' with "
                     "registered rule ids and a justification"))
        raw.extend(file_findings)

    for rule_id in rule_ids:
        rule = REGISTRY[rule_id]
        if isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(project))

    by_rel = {source.rel: source for source in sources}
    engine_rules = (PRAGMA_RULE_ID, UNUSED_PRAGMA_RULE_ID)
    kept: list[Finding] = []
    suppressed = 0
    config_allowed = 0
    used_pragmas: set[int] = set()
    used_entries: set[int] = set()
    for finding in raw:
        source = by_rel.get(finding.path)
        if finding.rule not in engine_rules and source is not None:
            matched = source.allowing(finding.rule, finding.line)
            if matched:
                used_pragmas.update(id(p) for p in matched)
                suppressed += 1
                continue
        if finding.rule not in engine_rules:
            entry = config.matching_entry(
                source.path if source is not None else None,
                finding.path, finding.rule)
            if entry is not None:
                used_entries.add(id(entry))
                config_allowed += 1
                continue
        kept.append(finding)

    if unused_pragmas:
        kept.extend(_unused_exemptions(
            sources, config, frozenset(rule_ids),
            used_pragmas, used_entries))

    # Full deterministic order before fingerprinting and rendering —
    # worker scheduling and dict order must never churn a baseline.
    kept.sort()

    if baseline is not None:
        new, matched_findings = baseline.apply(kept)
    else:
        new, matched_findings = kept, []
    return LintResult(findings=new, baselined=matched_findings,
                      suppressed=suppressed, config_allowed=config_allowed,
                      files_scanned=len(sources),
                      rules=rule_ids)


def _unused_exemptions(sources: Sequence[SourceFile],
                       config: LintConfig,
                       ran: frozenset[str],
                       used_pragmas: set[int],
                       used_entries: set[int]) -> list[Finding]:
    """LINT001 findings for exemptions that suppressed nothing.

    A pragma (or config entry) is only reported when *every* rule it
    names actually ran — a ``--select`` subset must not condemn
    exemptions belonging to rules that sat the scan out.  Config entries
    are additionally required to be in scope: their path pattern must
    match at least one scanned file, so linting a sibling subtree does
    not flag entries for the rest of the repo.
    """
    findings: list[Finding] = []
    for source in sources:
        for pragma in source.pragmas:
            if id(pragma) in used_pragmas or not pragma.rules <= ran:
                continue
            rules = ",".join(sorted(pragma.rules))
            findings.append(Finding(
                path=source.rel, line=pragma.line,
                rule=UNUSED_PRAGMA_RULE_ID,
                message=f"allow-pragma for {rules} suppressed nothing "
                        f"in this scan",
                hint="delete the stale pragma (or re-run with "
                     "--no-unused-pragma if this is a partial-tree "
                     "scan)"))
    if config.defined and config.source is not None:
        config_rel = config.source.name
        for entry in config.allows:
            if id(entry) in used_entries or not entry.rules <= ran:
                continue
            in_scope = any(
                config.entry_covers(entry, source.path, source.rel)
                for source in sources)
            if not in_scope:
                continue
            rules = ",".join(sorted(entry.rules))
            findings.append(Finding(
                path=config_rel, line=0,
                rule=UNUSED_PRAGMA_RULE_ID,
                message=f"[[tool.repro-lint.allow]] entry "
                        f"(path='{entry.path}', rules={rules}) "
                        f"suppressed nothing in this scan",
                hint="delete the stale config entry (or re-run with "
                     "--no-unused-pragma if this is a partial-tree "
                     "scan)"))
    return findings
