"""The analysis driver: walk files, run rules, apply pragmas + baseline.

:func:`run_lint` is the single entry point used by the CLI and the test
suite.  It parses every ``.py`` file under the given paths once, runs the
selected file rules per module and project rules over the whole set,
drops findings suppressed by inline allow-pragmas or by the path-scoped
``[tool.repro-lint]`` configuration (see :mod:`repro.lint.config`), and
splits the rest against an optional :class:`~repro.lint.baseline.Baseline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.lint.baseline import Baseline
from repro.lint.config import EMPTY_CONFIG, LintConfig, discover_lint_config
from repro.lint.findings import Finding
from repro.lint.rules import PRAGMA_RULE_ID, REGISTRY, FileRule, ProjectRule
from repro.lint.source import Project, SourceFile, load_source

__all__ = ["LintResult", "run_lint", "collect_files"]

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".ruff_cache",
                        ".mypy_cache", ".pytest_cache"})


@dataclass
class LintResult:
    """Everything one analysis run produced."""

    #: Non-baselined findings (these fail the run), sorted.
    findings: list[Finding] = field(default_factory=list)
    #: Findings matched by the baseline (reported, never failing).
    baselined: list[Finding] = field(default_factory=list)
    #: Findings suppressed by inline allow-pragmas.
    suppressed: int = 0
    #: Findings exempted by the path-scoped ``[tool.repro-lint]`` config.
    config_allowed: int = 0
    #: Number of files parsed.
    files_scanned: int = 0
    #: Rule ids that ran.
    rules: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing non-baselined was found."""
        return not self.findings

    def all_findings(self) -> list[Finding]:
        """New + baselined findings in one sorted list."""
        return sorted(self.findings + self.baselined)

    def to_dict(self) -> dict:
        """The ``--format json`` output schema (version 1)."""
        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "rules": self.rules,
            "counts": {
                "new": len(self.findings),
                "baselined": len(self.baselined),
                "suppressed": self.suppressed,
                "config_allowed": self.config_allowed,
            },
            "findings": [f.to_dict() for f in self.all_findings()],
        }


def collect_files(paths: Sequence[Path]) -> list[tuple[Path, str]]:
    """(absolute path, root-relative posix path) for every .py under paths.

    Directory arguments are walked recursively; file arguments are taken
    as-is with their basename as the relative path.  Raises
    FileNotFoundError for a missing argument (the CLI maps it to a usage
    error).
    """
    collected: list[tuple[Path, str]] = []
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            collected.append((root, root.name))
        elif root.is_dir():
            for file_path in sorted(root.rglob("*.py")):
                if any(part in _SKIP_DIRS for part in file_path.parts):
                    continue
                rel = file_path.relative_to(root).as_posix()
                collected.append((file_path, rel))
        else:
            raise FileNotFoundError(f"no such file or directory: {root}")
    return collected


def _select_rules(select: Optional[Sequence[str]]) -> list[str]:
    if select is None:
        return sorted(REGISTRY)
    unknown = sorted(set(select) - set(REGISTRY))
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(unknown)}")
    return sorted(set(select))


def run_lint(paths: Sequence[Path],
             select: Optional[Sequence[str]] = None,
             baseline: Optional[Baseline] = None,
             config: Optional[LintConfig] = None) -> LintResult:
    """Analyze ``paths`` with the selected rules (default: all).

    ``config`` scopes rule exemptions to path patterns; None (the
    default) auto-discovers the nearest ``pyproject.toml`` with a
    ``[tool.repro-lint]`` section above the first scanned path — pass
    :data:`~repro.lint.config.EMPTY_CONFIG` to disable.

    Raises FileNotFoundError for missing paths, KeyError for unknown
    rule ids, and :class:`~repro.lint.config.LintConfigError` for a
    malformed configuration — the CLI converts all three into usage
    errors (exit 2).
    """
    rule_ids = _select_rules(select)
    if config is None:
        config = (discover_lint_config(Path(paths[0])) if paths
                  else EMPTY_CONFIG)
    known = frozenset(REGISTRY) | {PRAGMA_RULE_ID}
    sources = [load_source(path, rel, known)
               for path, rel in collect_files(paths)]
    project = Project(files=sources)

    raw: list[Finding] = []
    for source in sources:
        if source.parse_error is not None:
            raw.append(Finding(
                path=source.rel, line=0, rule=PRAGMA_RULE_ID,
                message=f"file does not parse: {source.parse_error}",
                hint="fix the syntax error; unparseable files are "
                     "invisible to every other rule"))
            continue
        for error in source.pragma_errors:
            raw.append(Finding(
                path=source.rel, line=error.line, rule=PRAGMA_RULE_ID,
                message=error.message,
                hint="write '# lint: allow[RULE,...] -- rationale' with "
                     "registered rule ids and a justification"))

    for rule_id in rule_ids:
        rule = REGISTRY[rule_id]
        if isinstance(rule, FileRule):
            for source in sources:
                if source.tree is not None:
                    raw.extend(rule.check(source))
        elif isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(project))

    by_rel = {source.rel: source for source in sources}
    kept: list[Finding] = []
    suppressed = 0
    config_allowed = 0
    for finding in raw:
        source = by_rel.get(finding.path)
        if (finding.rule != PRAGMA_RULE_ID and source is not None
                and source.allows(finding.rule, finding.line)):
            suppressed += 1
            continue
        if (finding.rule != PRAGMA_RULE_ID
                and config.allowed_file(
                    source.path if source is not None else None,
                    finding.path, finding.rule)):
            config_allowed += 1
            continue
        kept.append(finding)
    kept.sort()

    if baseline is not None:
        new, matched = baseline.apply(kept)
    else:
        new, matched = kept, []
    return LintResult(findings=new, baselined=matched,
                      suppressed=suppressed, config_allowed=config_allowed,
                      files_scanned=len(sources),
                      rules=rule_ids)
