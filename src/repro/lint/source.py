"""Source model: parsed files, inline allow-pragmas, and the project view.

The engine hands rules :class:`SourceFile` objects (one parsed module) or
a :class:`Project` (every file in the scan, for cross-file rules).  Both
carry the pragma table parsed from comments:

- ``# lint: allow[REP001] -- rationale`` suppresses the listed rules on
  that line (or, when the comment stands alone, on the next line);
- ``# lint: allow-file[REP001] -- rationale`` suppresses them for the
  whole file.

A rationale after ``--`` is mandatory: an allowlist entry without a
recorded justification is itself a finding (``LINT000``), so exemptions
stay auditable.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

__all__ = ["PragmaError", "Pragma", "SourceFile", "Project",
           "load_source"]

_PRAGMA = re.compile(
    r"#\s*lint:\s*(?P<scope>allow|allow-file)\[(?P<rules>[^\]]*)\]"
    r"(?:\s*--\s*(?P<why>.*))?")
_RULE_ID = re.compile(r"^[A-Z]+\d+$")


@dataclass(frozen=True)
class PragmaError:
    """A malformed allow-pragma (reported as a LINT000 finding)."""

    line: int
    message: str


@dataclass
class Pragma:
    """One well-formed allow-pragma, tracked as a unit.

    A standalone line pragma covers two physical lines (its own and the
    next), but it is *one* exemption: the engine's unused-pragma check
    (LINT001) counts it used when any covered line suppressed a finding.
    """

    #: Line the pragma comment sits on (where LINT001 would point).
    line: int
    #: Rule ids the pragma exempts.
    rules: frozenset[str]
    #: "line" or "file".
    scope: str
    #: Lines covered (empty for file scope, which covers everything).
    targets: tuple[int, ...] = ()

    def covers(self, rule: str, line: int) -> bool:
        if rule not in self.rules:
            return False
        return self.scope == "file" or line in self.targets


@dataclass
class SourceFile:
    """One parsed Python source file plus its pragma table."""

    #: Absolute path on disk.
    path: Path
    #: Path relative to the scanned root (posix form; used in findings).
    rel: str
    #: Raw source text.
    text: str
    #: Parsed module, or None when the file failed to parse.
    tree: Optional[ast.AST]
    #: Syntax-error description when ``tree`` is None.
    parse_error: Optional[str] = None
    #: Every well-formed allow-pragma, in file order.
    pragmas: list[Pragma] = field(default_factory=list)
    #: Malformed pragmas found while parsing comments.
    pragma_errors: list[PragmaError] = field(default_factory=list)

    @property
    def name(self) -> str:
        """Basename, used by cross-file rules to locate known modules."""
        return self.path.name

    def allowing(self, rule: str, line: int) -> list[Pragma]:
        """The pragmas that suppress ``rule`` at ``line`` (maybe empty)."""
        return [p for p in self.pragmas if p.covers(rule, line)]

    def allows(self, rule: str, line: int) -> bool:
        """True when an allow-pragma suppresses ``rule`` at ``line``."""
        return any(p.covers(rule, line) for p in self.pragmas)


def _iter_comments(text: str) -> Iterator[tuple[int, str, bool]]:
    """(line, comment text, standalone?) for each comment token.

    Tokenizing (rather than scanning physical lines) keeps pragma
    examples inside docstrings from being taken literally.
    """
    import io
    import tokenize

    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                standalone = token.line[:token.start[1]].strip() == ""
                yield token.start[0], token.string, standalone
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return  # ast.parse already failed or will fail; nothing to scan


def _parse_pragmas(source: SourceFile, known_rules: frozenset[str]) -> None:
    """Fill the pragma tables from the file's comment tokens."""
    for lineno, comment, standalone in _iter_comments(source.text):
        match = _PRAGMA.search(comment)
        if match is None:
            if "lint:" in comment and "allow" in comment:
                source.pragma_errors.append(PragmaError(
                    lineno, "unparseable lint pragma (expected "
                    "'# lint: allow[RULE,...] -- rationale')"))
            continue
        rules = {r.strip() for r in match.group("rules").split(",") if r.strip()}
        why = (match.group("why") or "").strip()
        bad = sorted(r for r in rules if not _RULE_ID.match(r))
        unknown = sorted(r for r in rules - set(bad) if r not in known_rules)
        if not rules:
            source.pragma_errors.append(PragmaError(
                lineno, "allow-pragma lists no rule ids"))
            continue
        if bad:
            source.pragma_errors.append(PragmaError(
                lineno, f"malformed rule id(s) in allow-pragma: "
                        f"{', '.join(bad)}"))
            continue
        if unknown:
            source.pragma_errors.append(PragmaError(
                lineno, f"unknown rule id(s) in allow-pragma: "
                        f"{', '.join(unknown)}"))
            continue
        if not why:
            source.pragma_errors.append(PragmaError(
                lineno, "allow-pragma is missing its '-- rationale' "
                        "justification"))
            continue
        if match.group("scope") == "allow-file":
            source.pragmas.append(Pragma(
                line=lineno, rules=frozenset(rules), scope="file"))
        else:
            targets = [lineno]
            if standalone:
                # A standalone comment pragma covers the following line.
                targets.append(lineno + 1)
            source.pragmas.append(Pragma(
                line=lineno, rules=frozenset(rules), scope="line",
                targets=tuple(targets)))


def load_source(path: Path, rel: str,
                known_rules: frozenset[str]) -> SourceFile:
    """Read, parse, and pragma-scan one file (never raises on bad source)."""
    text = path.read_text(encoding="utf-8")
    try:
        tree: Optional[ast.AST] = ast.parse(text, filename=str(path))
        error = None
    except SyntaxError as exc:
        tree, error = None, f"{exc.msg} (line {exc.lineno})"
    source = SourceFile(path=path, rel=rel, text=text, tree=tree,
                        parse_error=error)
    _parse_pragmas(source, known_rules)
    return source


@dataclass
class Project:
    """Every scanned file, for rules that reason across modules."""

    files: list[SourceFile]

    def named(self, basename: str) -> Optional[SourceFile]:
        """The unique parsed file with this basename, or None.

        Cross-file rules locate well-known modules (``config.py``,
        ``fast.py``, ...) by basename so they work both on the real tree
        and on miniature fixture trees.
        """
        matches = [f for f in self.files
                   if f.name == basename and f.tree is not None]
        return matches[0] if len(matches) == 1 else None

    def all_named(self, basename: str) -> Iterator[SourceFile]:
        """Every parsed file with this basename."""
        return (f for f in self.files
                if f.name == basename and f.tree is not None)
