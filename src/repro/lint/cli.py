"""CLI for the domain lint suite.

Exposed two ways (both share this module):

- ``repro-broadcast lint ...`` — a subcommand of the main CLI,
- ``python -m repro.lint ...`` — standalone.

Exit codes: 0 = clean (or every finding baselined), 1 = new findings,
2 = usage error (bad path, unknown rule id, unreadable baseline).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Optional, Sequence, TextIO

from repro.lint.baseline import Baseline
from repro.lint.config import (
    EMPTY_CONFIG,
    LintConfig,
    LintConfigError,
    load_lint_config,
)
from repro.lint.engine import LintResult, run_lint
from repro.lint.rules import REGISTRY

__all__ = ["add_arguments", "run", "main", "build_parser"]

#: Exit codes (the contract tests pin these).
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint arguments on ``parser`` (shared by both CLIs)."""
    parser.add_argument(
        "paths", nargs="*", type=Path, metavar="PATH",
        help="files or directories to analyze (default: the installed "
             "repro package source)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)")
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help="baseline file of accepted findings (ratchet: matched "
             "findings pass, new ones fail)")
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline to the current findings and exit 0")
    parser.add_argument(
        "--config", type=Path, default=None, metavar="PYPROJECT",
        help="pyproject.toml with the [tool.repro-lint] path-scoped rule "
             "exemptions (default: discovered by walking up from the "
             "first scanned path)")
    parser.add_argument(
        "--no-config", action="store_true",
        help="ignore any [tool.repro-lint] configuration")
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="parse files and run per-file rules across N worker "
             "processes (default: the machine's CPU count; project "
             "rules always run single-pass afterwards)")
    parser.add_argument(
        "--no-unused-pragma", action="store_true",
        help="skip the LINT001 unused-exemption check (use for "
             "partial-tree scans where pragmas may legitimately match "
             "nothing)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit")


def _default_paths() -> list[Path]:
    """The installed/imported repro package source tree."""
    import repro

    return [Path(repro.__file__).parent]


def _render_text(result: LintResult, out: TextIO) -> None:
    for finding in result.all_findings():
        print(finding.render(), file=out)
    summary = (f"{result.files_scanned} files scanned, "
               f"{len(result.findings)} finding(s)")
    if result.baselined:
        summary += f", {len(result.baselined)} baselined"
    if result.suppressed:
        summary += f", {result.suppressed} allowed by pragma"
    if result.config_allowed:
        summary += f", {result.config_allowed} allowed by config"
    print(summary, file=out)


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        for rule_id in sorted(REGISTRY):
            rule = REGISTRY[rule_id]
            print(f"{rule_id}  {rule.name}: {rule.summary}")
        return EXIT_CLEAN

    if args.update_baseline and args.baseline is None:
        print("lint: --update-baseline requires --baseline FILE",
              file=sys.stderr)
        return EXIT_USAGE

    baseline: Optional[Baseline] = None
    if args.baseline is not None and not args.update_baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except FileNotFoundError:
            print(f"lint: baseline file not found: {args.baseline}",
                  file=sys.stderr)
            return EXIT_USAGE
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"lint: {exc}", file=sys.stderr)
            return EXIT_USAGE

    select = None
    if args.select is not None:
        select = [r.strip() for r in args.select.split(",") if r.strip()]
        if not select:
            print("lint: --select lists no rule ids", file=sys.stderr)
            return EXIT_USAGE

    config: Optional[LintConfig] = None
    if args.no_config:
        config = EMPTY_CONFIG
    elif args.config is not None:
        try:
            config = load_lint_config(args.config)
        except LintConfigError as exc:
            print(f"lint: {exc}", file=sys.stderr)
            return EXIT_USAGE
        if not config.defined:
            print(f"lint: {args.config} has no [tool.repro-lint] section",
                  file=sys.stderr)
            return EXIT_USAGE

    jobs = args.jobs
    if jobs is None:
        jobs = os.cpu_count() or 1
    elif jobs < 1:
        print("lint: --jobs must be >= 1", file=sys.stderr)
        return EXIT_USAGE

    paths = list(args.paths) or _default_paths()
    try:
        result = run_lint(paths, select=select, baseline=baseline,
                          config=config, jobs=jobs,
                          unused_pragmas=not args.no_unused_pragma)
    except FileNotFoundError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except LintConfigError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except KeyError as exc:
        print(f"lint: {exc.args[0]}", file=sys.stderr)
        return EXIT_USAGE

    if args.update_baseline:
        Baseline.of(result.findings).save(args.baseline)
        print(f"lint: baseline updated with {len(result.findings)} "
              f"finding(s) -> {args.baseline}")
        return EXIT_CLEAN

    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2))
    else:
        _render_text(result, sys.stdout)
    return EXIT_CLEAN if result.ok else EXIT_FINDINGS


def build_parser() -> argparse.ArgumentParser:
    """Standalone parser for ``python -m repro.lint``."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Domain-aware static analysis: determinism, seed "
                    "discipline, and cross-engine parity.")
    add_arguments(parser)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point; returns the exit code."""
    return run(build_parser().parse_args(argv))
