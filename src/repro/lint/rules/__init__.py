"""Rule modules; importing this package populates the registry.

Rule inventory (ids are stable, documented in docs/STATIC_ANALYSIS.md):

- ``REP001`` wall-clock        — no host clocks/timers or ambient RNG
- ``REP002`` unseeded-rng      — RNG constructors need explicit seeds
- ``REP003`` sim-time-float-eq — no ==/!= on simulated-time floats
- ``REP004`` config-parity     — config fields reach both engines
- ``REP005`` event-registry    — event names come from obs/events.py
- ``REP006`` hook-symmetry     — both engines drive the same tracer hooks
- ``REP007`` fire-and-forget-task — create_task handles must be kept alive
- ``REP008`` blocking-in-async — no loop-blocking calls in async def
- ``REP009`` await-point-hazard — no blind self-state writes across awaits
- ``REP010`` seed-flow         — seeds must trace to config, not entropy
- ``LINT000``                  — reserved: malformed allow-pragmas
- ``LINT001``                  — reserved: unused allow-pragmas/config entries
"""

from repro.lint.rules import (  # noqa: F401
    asyncio_rules,
    determinism,
    events,
    parity,
    simtime,
)
from repro.lint.rules.base import (
    REGISTRY,
    FileRule,
    ProjectRule,
    Rule,
    register,
)

__all__ = ["REGISTRY", "Rule", "FileRule", "ProjectRule", "register"]

#: Rule id reserved for pragma-syntax findings emitted by the engine.
PRAGMA_RULE_ID = "LINT000"

#: Rule id reserved for unused-exemption findings emitted by the engine.
UNUSED_PRAGMA_RULE_ID = "LINT001"
