"""Rule modules; importing this package populates the registry.

Rule inventory (ids are stable, documented in docs/STATIC_ANALYSIS.md):

- ``REP001`` wall-clock        — no host clocks/timers or ambient RNG
- ``REP002`` unseeded-rng      — RNG constructors need explicit seeds
- ``REP003`` sim-time-float-eq — no ==/!= on simulated-time floats
- ``REP004`` config-parity     — config fields reach both engines
- ``REP005`` event-registry    — event names come from obs/events.py
- ``REP006`` hook-symmetry     — both engines drive the same tracer hooks
- ``LINT000``                  — reserved: malformed allow-pragmas
"""

from repro.lint.rules import determinism, events, parity, simtime  # noqa: F401
from repro.lint.rules.base import (
    REGISTRY,
    FileRule,
    ProjectRule,
    Rule,
    register,
)

__all__ = ["REGISTRY", "Rule", "FileRule", "ProjectRule", "register"]

#: Rule id reserved for pragma-syntax findings emitted by the engine.
PRAGMA_RULE_ID = "LINT000"
