"""Rule protocol and registry for the domain lint suite.

Two rule shapes exist:

- :class:`FileRule` — examines one parsed module at a time (the
  determinism, seed-discipline, and sim-time rules);
- :class:`ProjectRule` — examines the whole scan at once (the
  cross-engine parity and event-vocabulary rules, which must compare
  ``core/fast.py`` against ``core/simulation.py``).

Rules are registered by instantiating them under :func:`register`; the
engine iterates :data:`REGISTRY` in id order.  Each rule carries a stable
``id`` (``REPnnn``), a short ``name`` used in listings, and a generic
``hint`` that findings may specialize.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from repro.lint.findings import Finding
from repro.lint.source import Project, SourceFile

__all__ = ["Rule", "FileRule", "ProjectRule", "REGISTRY", "register",
           "dotted_name", "ImportResolver"]


class Rule:
    """Common rule surface: identity and documentation."""

    id: str = ""
    name: str = ""
    #: One-line description for ``--list-rules`` and the docs.
    summary: str = ""
    #: Generic fix hint; findings may override with a specific one.
    hint: str = ""

    def finding(self, source: SourceFile, line: int, message: str,
                hint: str = "") -> Finding:
        """Build a finding anchored in ``source`` at ``line``."""
        return Finding(path=source.rel, line=line, rule=self.id,
                       message=message, hint=hint or self.hint)


class FileRule(Rule):
    """A rule evaluated independently on each parsed file."""

    def check(self, source: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule evaluated once over the whole project."""

    def check_project(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError


#: All registered rules, keyed by id (populated by the rule modules).
REGISTRY: dict[str, Rule] = {}


def register(rule_class: type) -> type:
    """Class decorator: instantiate and add to :data:`REGISTRY`."""
    rule = rule_class()
    if not rule.id or rule.id in REGISTRY:
        raise ValueError(f"duplicate or empty rule id: {rule.id!r}")
    REGISTRY[rule.id] = rule
    return rule_class


# -- shared AST helpers -------------------------------------------------------

class ImportResolver(ast.NodeVisitor):
    """Map local names to canonical dotted module paths.

    Handles ``import numpy as np`` (``np`` -> ``numpy``), ``from time
    import time as clock`` (``clock`` -> ``time.time``), and nested
    ``from numpy import random`` (``random`` -> ``numpy.random``), at any
    scope in the module.
    """

    def __init__(self) -> None:
        self.aliases: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.aliases[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:
            return  # relative imports never reach stdlib clocks / numpy
        for alias in node.names:
            local = alias.asname or alias.name
            self.aliases[local] = f"{node.module}.{alias.name}"

    @classmethod
    def of(cls, tree: ast.AST) -> "ImportResolver":
        resolver = cls()
        resolver.visit(tree)
        return resolver

    def canonical(self, node: ast.AST) -> Union[str, None]:
        """Canonical dotted path of a Name/Attribute chain, if resolvable."""
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.canonical(node.value)
            if base is not None:
                return f"{base}.{node.attr}"
        return None


def dotted_name(node: ast.AST) -> Union[str, None]:
    """Literal dotted form of a Name/Attribute chain (no import tracking)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is not None:
            return f"{base}.{node.attr}"
    return None
