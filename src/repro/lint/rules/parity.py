"""REP004 — every config field must reach both simulation engines.

DESIGN.md's cross-validation claim only holds while the reference and
fast engines consume the *same model surface*: a config knob honoured by
one engine and ignored by the other silently invalidates every
cross-engine comparison that varies it.  This rule parses the dataclass
fields of ``config.py`` (the module defining ``SystemConfig``) and
verifies each leaf field's attribute name is read by

- ``fast.py`` (the slot-driven engine), and
- ``simulation.py`` (the event-driven reference engine),

where reads through the shared construction path (``build.py``, which
wires configs into components both engines consume) count for both.
Deliberately single-engine knobs must be listed in the shared
``PARITY_EXEMPT`` set next to ``SystemConfig`` with a rationale comment;
stale or unknown exemptions are themselves findings, so the set ratchets
down rather than accreting.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.findings import Finding
from repro.lint.rules.base import ProjectRule, register
from repro.lint.source import Project, SourceFile

__all__ = ["ConfigParityRule"]

_CONFIG_BASENAME = "config.py"
_FAST_BASENAME = "fast.py"
_REFERENCE_BASENAME = "simulation.py"
_SHARED_BASENAMES = ("build.py",)


def _is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else None)
        if name == "dataclass":
            return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> list[tuple[str, str, int]]:
    """(field name, annotation spelling, line) for each dataclass field."""
    fields = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        name = stmt.target.id
        if name.startswith("_"):
            continue
        annotation = ast.unparse(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        fields.append((name, annotation, stmt.lineno))
    return fields


def _string_set(node: ast.AST) -> Optional[set[str]]:
    """Literal strings of a set/frozenset/tuple expression, else None."""
    if isinstance(node, ast.Call):
        target = node.func
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else None)
        if name in ("frozenset", "set", "tuple") and len(node.args) == 1:
            return _string_set(node.args[0])
        return None
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        values = set()
        for element in node.elts:
            if not (isinstance(element, ast.Constant)
                    and isinstance(element.value, str)):
                return None
            values.add(element.value)
        return values
    return None


def _parity_exempt(tree: ast.AST) -> tuple[set[str], int]:
    """(PARITY_EXEMPT entries, line of the assignment) — empty if absent."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, ast.Name)
                        and target.id == "PARITY_EXEMPT"
                        and node.value is not None):
                    return _string_set(node.value) or set(), node.lineno
    return set(), 0


def _attribute_names(source: Optional[SourceFile]) -> set[str]:
    """Every attribute name referenced anywhere in the module."""
    if source is None or source.tree is None:
        return set()
    return {node.attr for node in ast.walk(source.tree)
            if isinstance(node, ast.Attribute)}


@register
class ConfigParityRule(ProjectRule):
    """REP004 — config fields read by both engines (or PARITY_EXEMPT)."""

    id = "REP004"
    name = "config-parity"
    summary = ("every SystemConfig leaf field must be read by both "
               "core/fast.py and core/simulation.py (directly or via the "
               "shared build path), or be listed in PARITY_EXEMPT")
    hint = ("wire the field into the missing engine, or add it to "
            "PARITY_EXEMPT in config.py with a rationale comment")

    def check_project(self, project: Project) -> Iterator[Finding]:
        config = self._find_config(project)
        fast = project.named(_FAST_BASENAME)
        reference = project.named(_REFERENCE_BASENAME)
        if config is None or (fast is None and reference is None):
            return  # not an engine tree (e.g. a partial scan) — nothing to do
        assert config.tree is not None

        classes = {node.name: node for node in ast.walk(config.tree)
                   if isinstance(node, ast.ClassDef) and _is_dataclass(node)}
        system = classes.get("SystemConfig")
        if system is None:
            return

        shared_attrs: set[str] = set()
        for basename in _SHARED_BASENAMES:
            for shared in project.all_named(basename):
                shared_attrs |= _attribute_names(shared)
        fast_attrs = _attribute_names(fast) | shared_attrs
        ref_attrs = _attribute_names(reference) | shared_attrs

        exempt, exempt_line = _parity_exempt(config.tree)
        seen_qualified: set[str] = set()

        for field_name, annotation, line in _dataclass_fields(system):
            sub = classes.get(annotation)
            if sub is not None:
                leaves = [(f"{field_name}.{leaf}", leaf, leaf_line)
                          for leaf, _, leaf_line in _dataclass_fields(sub)]
            else:
                leaves = [(field_name, field_name, line)]
            for qualified, leaf, leaf_line in leaves:
                seen_qualified.add(qualified)
                in_fast = leaf in fast_attrs
                in_ref = leaf in ref_attrs
                if qualified in exempt:
                    if in_fast and in_ref:
                        yield self.finding(
                            config, exempt_line,
                            f"stale PARITY_EXEMPT entry '{qualified}': the "
                            f"field is now read by both engines",
                            hint="remove the entry so the exemption set "
                                 "only ratchets down")
                    continue
                if in_fast and in_ref:
                    continue
                if not in_fast and not in_ref:
                    where = "neither engine"
                elif in_fast:
                    where = "only the fast engine"
                else:
                    where = "only the reference engine"
                yield self.finding(
                    config, leaf_line,
                    f"config field '{qualified}' is read by {where}")

        for entry in sorted(exempt - seen_qualified):
            yield self.finding(
                config, exempt_line,
                f"unknown PARITY_EXEMPT entry '{entry}' (no such config "
                f"field)",
                hint="use the qualified 'section.field' spelling of an "
                     "existing SystemConfig leaf field")

    @staticmethod
    def _find_config(project: Project) -> Optional[SourceFile]:
        """The config module: basename config.py defining SystemConfig."""
        for candidate in project.all_named(_CONFIG_BASENAME):
            assert candidate.tree is not None
            for node in ast.walk(candidate.tree):
                if (isinstance(node, ast.ClassDef)
                        and node.name == "SystemConfig"):
                    return candidate
        return None
