"""REP007/REP008/REP009 — asyncio concurrency hazards.

The serving layer (``repro.net``) runs the slot clock, per-connection
senders, and the client fleet as cooperating tasks on one event loop.
Three bug classes silently corrupt that arrangement:

- **REP007 fire-and-forget tasks**: ``asyncio.create_task`` whose handle
  is never stored, awaited, or otherwise named.  CPython keeps only a
  weak reference to running tasks, so an unreferenced task can be
  garbage-collected mid-flight — the exact race PR 6 fixed by hand in
  ``client.py`` by parking handles on the client object.
- **REP008 blocking calls inside ``async def``**: ``time.sleep``, sync
  subprocess/socket/DNS calls, and blocking file I/O stall the entire
  loop, starving the slot clock and bending measured latency curves.
- **REP009 await-point hazards**: writing ``self.``-state both before
  and after an ``await`` without re-reading it in between.  The await is
  a scheduling point — another task (the slot clock vs. a sender) may
  have moved the state, and blindly completing a read-modify-write
  planned before the suspension loses that update.

All three build on the scope layer (:mod:`repro.lint.scopes`) rather
than raw syntax: shadowed builtins don't fire, and task handles bound to
locals count as *stored* only when some load actually reaches them.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Union

from repro.lint.findings import Finding
from repro.lint.rules.base import FileRule, register
from repro.lint.scopes import ASYNC_FUNCTION, Scope, ScopeTable, table_for
from repro.lint.source import SourceFile

__all__ = ["FireAndForgetRule", "BlockingInAsyncRule", "AwaitHazardRule"]

#: Canonical spawners returning a Task that must be kept alive.
_SPAWNERS = frozenset({"asyncio.create_task", "asyncio.ensure_future"})

#: Canonical calls that block the running event loop.
_BLOCKING = {
    "time.sleep": "use 'await asyncio.sleep(...)' instead",
    "subprocess.run": "use 'await asyncio.create_subprocess_exec(...)'",
    "subprocess.call": "use 'await asyncio.create_subprocess_exec(...)'",
    "subprocess.check_call":
        "use 'await asyncio.create_subprocess_exec(...)'",
    "subprocess.check_output":
        "use 'await asyncio.create_subprocess_exec(...)'",
    "os.system": "use 'await asyncio.create_subprocess_shell(...)'",
    "os.popen": "use 'await asyncio.create_subprocess_shell(...)'",
    "os.wait": "use asyncio subprocess APIs",
    "socket.create_connection": "use 'await asyncio.open_connection(...)'",
    "socket.getaddrinfo": "use 'await loop.getaddrinfo(...)'",
    "socket.gethostbyname": "use 'await loop.getaddrinfo(...)'",
    "socket.gethostbyaddr": "use 'await loop.getaddrinfo(...)'",
    "urllib.request.urlopen": "run it in a thread via asyncio.to_thread",
}

#: Builtins that block on the console / filesystem when unshadowed.
_BLOCKING_BUILTINS = {
    "input": "reading stdin blocks the loop; use a thread or protocol",
    "open": ("synchronous file I/O on the loop thread; move it off the "
             "hot path or run via asyncio.to_thread"),
}


def _spawner_canonical(table: ScopeTable,
                       call: ast.Call) -> Optional[str]:
    """Canonical name when ``call`` spawns a Task, else None.

    Resolves ``asyncio.create_task``/``ensure_future`` through imports;
    also accepts the ``loop.create_task(...)`` idiom (receiver named
    like an event loop), which the import table cannot see through.
    """
    canonical = table.canonical(call.func)
    if canonical in _SPAWNERS:
        return canonical
    if (isinstance(call.func, ast.Attribute)
            and call.func.attr in ("create_task", "ensure_future")
            and isinstance(call.func.value, ast.Name)
            and "loop" in call.func.value.id):
        return f"{call.func.value.id}.{call.func.attr}"
    return None


@register
class FireAndForgetRule(FileRule):
    """REP007 — every spawned Task handle must be stored or awaited."""

    id = "REP007"
    name = "fire-and-forget-task"
    summary = ("asyncio.create_task handles must be stored, awaited, or "
               "collected — unreferenced Tasks can be garbage-collected "
               "mid-flight")
    hint = ("keep the handle alive (self.task = ..., a task set, await, "
            "or TaskGroup); if the task is intentionally detached, add "
            "'# lint: allow[REP007] -- <why>'")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        table = table_for(source)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = _spawner_canonical(table, node)
            if canonical is None:
                continue
            verdict = self._discarded(table, node)
            if verdict is not None:
                yield self.finding(
                    source, node.lineno,
                    f"{canonical}(...) {verdict}")

    def _discarded(self, table: ScopeTable,
                   call: ast.Call) -> Optional[str]:
        """Reason string when the Task handle is provably dropped."""
        parent = table.parent_of(call)
        if isinstance(parent, ast.Expr):
            return ("result is discarded — the Task may be "
                    "garbage-collected before it finishes")
        if isinstance(parent, ast.Assign) and parent.value is call:
            # Stored somewhere persistent (attribute, subscript, tuple)?
            names = []
            for target in parent.targets:
                if isinstance(target, ast.Name):
                    names.append(target)
                else:
                    return None  # attribute/subscript/tuple: stored
            for target in names:
                scope = table.scope_of(target)
                owner = table.resolving_scope(scope, target.id) or scope
                if table.loads_resolving_to(owner, target.id):
                    return None
            only = names[0].id
            return (f"handle '{only}' is assigned but never read — the "
                    f"Task may be garbage-collected before it finishes")
        return None  # awaited, passed along, comprehension element, ...


@register
class BlockingInAsyncRule(FileRule):
    """REP008 — no loop-blocking calls inside ``async def``."""

    id = "REP008"
    name = "blocking-in-async"
    summary = ("forbid blocking calls (time.sleep, sync subprocess/"
               "socket/file I/O) inside async def bodies")
    hint = ("blocking the loop thread stalls the slot clock and every "
            "other task; use the asyncio-native equivalent or "
            "asyncio.to_thread")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        table = table_for(source)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            if not table.in_async_function(node):
                continue
            canonical = table.canonical(node.func)
            if canonical in _BLOCKING:
                yield self.finding(
                    source, node.lineno,
                    f"blocking call to {canonical} inside async def "
                    f"({_BLOCKING[canonical]})")
                continue
            if (isinstance(node.func, ast.Name)
                    and node.func.id in _BLOCKING_BUILTINS
                    and not table.lookup(table.scope_of(node.func),
                                         node.func.id)):
                yield self.finding(
                    source, node.lineno,
                    f"blocking call to builtin {node.func.id}() inside "
                    f"async def ({_BLOCKING_BUILTINS[node.func.id]})")


# -- REP009: await-point hazard ----------------------------------------------

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: One linearized event inside an async function body.
#: kind is "read", "write", or "await"; attr is the self-attribute name
#: (empty for awaits); path is the enclosing-branch trail.
_Event = tuple[str, str, int, tuple[tuple[int, int], ...]]


def _compatible(left: tuple[tuple[int, int], ...],
                right: tuple[tuple[int, int], ...]) -> bool:
    """False when the two events sit in sibling branches of one ``if``."""
    choices = dict(left)
    for node_id, branch in right:
        if choices.get(node_id, branch) != branch:
            return False
    return True


class _AsyncBodyScanner:
    """Linearize self-state reads/writes and awaits in source order."""

    def __init__(self) -> None:
        self.events: list[_Event] = []
        self._path: list[tuple[int, int]] = []

    def scan(self, node: FunctionNode) -> list[_Event]:
        for stmt in node.body:
            self._visit(stmt)
        return self.events

    def _emit(self, kind: str, attr: str, line: int) -> None:
        self.events.append((kind, attr, line, tuple(self._path)))

    def _self_attr(self, node: ast.AST) -> Optional[ast.Attribute]:
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return node
        return None

    def _visit(self, node: ast.AST) -> None:
        # Nested defs run on their own schedule; stop at their boundary.
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            return
        if isinstance(node, ast.Await):
            self._visit(node.value)
            self._emit("await", "", node.lineno)
            return
        if isinstance(node, ast.If):
            self._visit(node.test)
            self._path.append((id(node), 0))
            for stmt in node.body:
                self._visit(stmt)
            self._path[-1] = (id(node), 1)
            for stmt in node.orelse:
                self._visit(stmt)
            self._path.pop()
            return
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            # The RHS evaluates before the store: visit it first so a
            # re-read in the value lands before the write event.
            if node.value is not None:
                self._visit(node.value)
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                self._visit(target)
            return
        attr = self._self_attr(node)
        if attr is not None:
            if isinstance(attr.ctx, ast.Load):
                self._emit("read", attr.attr, attr.lineno)
            elif isinstance(attr.ctx, ast.Store):
                self._emit("write", attr.attr, attr.lineno)
            else:  # Del
                self._emit("write", attr.attr, attr.lineno)
            return
        if isinstance(node, ast.AugAssign):
            target = self._self_attr(node.target)
            if target is not None:
                self._visit(node.value)
                # x += v both re-reads and rewrites: emit both.
                self._emit("read", target.attr, node.lineno)
                self._emit("write", target.attr, node.lineno)
                return
        for child in ast.iter_child_nodes(node):
            self._visit(child)


@register
class AwaitHazardRule(FileRule):
    """REP009 — self-state mutated across an await without a re-read."""

    id = "REP009"
    name = "await-point-hazard"
    summary = ("mutating self.-state both before and after an await "
               "without re-reading it loses concurrent updates made "
               "while suspended")
    hint = ("re-read the attribute after the await (or mutate with "
            "'self.x += ...'), since another task may have advanced it "
            "during the suspension")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        table = table_for(source)
        for scope in table.module.walk():
            if scope.kind != ASYNC_FUNCTION:
                continue
            node = scope.node
            assert isinstance(node, ast.AsyncFunctionDef)
            yield from self._check_function(source, scope, node)

    def _check_function(self, source: SourceFile, scope: Scope,
                        node: ast.AsyncFunctionDef) -> Iterator[Finding]:
        events = _AsyncBodyScanner().scan(node)
        reported: set[str] = set()
        for first_index, first in enumerate(events):
            if first[0] != "write" or first[1] in reported:
                continue
            attr = first[1]
            for last_index in range(first_index + 1, len(events)):
                last = events[last_index]
                if (last[0] != "write" or last[1] != attr
                        or not _compatible(first[3], last[3])):
                    continue
                if self._hazard(events, first_index, last_index, attr):
                    reported.add(attr)
                    yield self.finding(
                        source, last[2],
                        f"'self.{attr}' written on line {first[2]} and "
                        f"again here with an await in between but no "
                        f"re-read — a concurrent task's update to it "
                        f"would be lost ({node.name})")
                    break

    def _hazard(self, events: list[_Event], first_index: int,
                last_index: int, attr: str) -> bool:
        """An await separates the writes and no read intervenes after."""
        first = events[first_index]
        last = events[last_index]
        await_index = None
        for index in range(first_index + 1, last_index):
            event = events[index]
            if (event[0] == "await" and _compatible(event[3], first[3])
                    and _compatible(event[3], last[3])):
                await_index = index
                break
        if await_index is None:
            return False
        for index in range(await_index + 1, last_index):
            event = events[index]
            if event[0] == "read" and event[1] == attr:
                return False
        return True
