"""REP001/REP002 determinism hazards and REP010 seed-flow dataflow.

The reproduction's headline invariant is bit-reproducibility from an
explicit seed.  Three rules guard it:

- **REP001** — wall-clock and host-timer reads (``time.time``,
  ``datetime.now``, ``time.perf_counter``, ...) leaking into simulation
  logic; legitimate uses (provenance timestamps, profiler timers) must
  carry an inline ``# lint: allow[REP001] -- rationale`` pragma.
- **REP002** — syntactic seed discipline: ``default_rng()`` /
  ``SeedSequence()`` / ``random.Random()`` without an explicit, non-None
  seed pull OS entropy.
- **REP010** — *seed-flow* dataflow: REP002 only checks that a seed
  argument exists; REP010 walks the project call graph to prove the seed
  *derives from configuration* (``SystemConfig.seed`` via
  ``SeedSequence.spawn``) rather than from entropy (``os.getpid``,
  ``time.time``, ``uuid.uuid4``, ``hash(...)``...).  Sources it can
  prove entropy-derived are findings; sources it cannot resolve are
  assumed rooted (the rule reports provable violations, not unknowns).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.callgraph import CallGraph, FunctionInfo, ModuleInfo
from repro.lint.findings import Finding
from repro.lint.rules.base import FileRule, ImportResolver, ProjectRule, register
from repro.lint.scopes import BIND_IMPORT, BIND_PARAM, Binding
from repro.lint.source import Project, SourceFile

__all__ = ["WallClockRule", "UnseededRngRule", "SeedFlowRule"]

#: Exact canonical callables that read host clocks / timers.
WALL_CLOCK = {
    "time.time": "wall clock",
    "time.time_ns": "wall clock",
    "time.localtime": "wall clock",
    "time.gmtime": "wall clock",
    "time.ctime": "wall clock",
    "time.asctime": "wall clock",
    "time.strftime": "wall clock",
    "time.monotonic": "host timer",
    "time.monotonic_ns": "host timer",
    "time.perf_counter": "host timer",
    "time.perf_counter_ns": "host timer",
    "time.process_time": "host timer",
    "time.process_time_ns": "host timer",
    "time.sleep": "wall-clock dependency",
    "datetime.datetime.now": "wall clock",
    "datetime.datetime.utcnow": "wall clock",
    "datetime.datetime.today": "wall clock",
    "datetime.date.today": "wall clock",
}

#: numpy.random names that are part of the Generator-era seeded API.
_NUMPY_SEEDED_API = frozenset({
    "default_rng", "SeedSequence", "Generator", "BitGenerator",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
})

#: Constructors that must receive an explicit, non-None seed.
_SEEDED_CONSTRUCTORS = frozenset({
    "numpy.random.default_rng",
    "numpy.random.SeedSequence",
    "random.Random",
})


def _is_forbidden(canonical: str) -> str | None:
    """Reason string when ``canonical`` is a determinism hazard."""
    reason = WALL_CLOCK.get(canonical)
    if reason is not None:
        return reason
    if canonical.startswith("random.") and canonical != "random.Random":
        return "global random state"
    if (canonical.startswith("numpy.random.")
            and canonical.split(".")[2] not in _NUMPY_SEEDED_API):
        return "legacy numpy global RNG"
    return None


@register
class WallClockRule(FileRule):
    """REP001 — no wall clocks, host timers, or ambient RNG state."""

    id = "REP001"
    name = "wall-clock"
    summary = ("forbid wall-clock/timer reads and global RNG state "
               "(time.time, datetime.now, random.*, legacy np.random.*)")
    hint = ("inject a clock or seeded Generator instead; if this is "
            "provenance or profiling (not simulation logic), add "
            "'# lint: allow[REP001] -- <why>'")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        resolver = ImportResolver.of(source.tree)
        flagged: set[int] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                canonical = resolver.canonical(node.func)
                if canonical is None:
                    continue
                reason = _is_forbidden(canonical)
                if reason is not None:
                    flagged.add(id(node.func))
                    yield self.finding(
                        source, node.lineno,
                        f"call to {canonical} ({reason})")
            elif isinstance(node, (ast.Attribute, ast.Name)):
                # Bare references (aliasing, defaults, callbacks): e.g.
                # `_pc = time.perf_counter` smuggles the timer past a
                # call-only check.
                if id(node) in flagged:
                    continue
                canonical = resolver.canonical(node)
                if canonical is None:
                    continue
                reason = _is_forbidden(canonical)
                if reason is not None:
                    # Skip inner parts of an already-flagged chain.
                    for inner in ast.walk(node):
                        flagged.add(id(inner))
                    yield self.finding(
                        source, node.lineno,
                        f"reference to {canonical} ({reason})")


def _seed_argument(call: ast.Call) -> Optional[ast.AST]:
    """The seed expression handed to a seeded constructor, if any."""
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg in ("seed", "entropy", "x"):
            return keyword.value
    return None


@register
class UnseededRngRule(FileRule):
    """REP002 — RNG constructors must receive an explicit seed."""

    id = "REP002"
    name = "unseeded-rng"
    summary = ("default_rng() / SeedSequence() / random.Random() must be "
               "given an explicit, non-None seed traceable to config")
    hint = ("pass a seed derived from RunConfig.seed (e.g. spawn from the "
            "run's SeedSequence as repro.core.build does)")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        resolver = ImportResolver.of(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = resolver.canonical(node.func)
            if canonical not in _SEEDED_CONSTRUCTORS:
                continue
            short = canonical.rsplit(".", 1)[-1]
            if not node.args and not node.keywords:
                yield self.finding(
                    source, node.lineno,
                    f"{short}() constructed without a seed "
                    f"(falls back to OS entropy)")
                continue
            seed = _seed_argument(node)
            if (isinstance(seed, ast.Constant) and seed.value is None):
                yield self.finding(
                    source, node.lineno,
                    f"{short}(None) is an unseeded construction "
                    f"(None selects OS entropy)")


# -- REP010: interprocedural seed-flow ----------------------------------------

#: Classification verdicts, ordered so worst-wins combining is min().
UNROOTED = 0
ASSUMED = 1
ROOTED = 2

#: Canonical calls whose value is entropy, not configuration.
_ENTROPY_CALLS = {
    "os.urandom": "OS entropy",
    "os.getrandom": "OS entropy",
    "os.getpid": "process id (varies per run)",
    "os.getppid": "process id (varies per run)",
    "uuid.uuid1": "host/time-derived UUID",
    "uuid.uuid4": "random UUID",
    "id": "CPython object address (varies per run)",
}

#: Builtins that pass their argument's rootedness through.
_PASSTHROUGH_BUILTINS = frozenset({
    "int", "abs", "tuple", "list", "sum", "min", "max", "sorted", "len",
    "str", "divmod", "pow", "round",
})

#: Attribute chains ending in one of these are config-carried seeds.
_SEEDY = ("seed", "entropy", "seed_seq", "seed_sequence")

_Verdict = tuple[int, Optional[str]]


def _attr_is_seedy(name: str) -> bool:
    lowered = name.lower()
    return any(part in lowered for part in _SEEDY)


class _SeedClassifier:
    """Classify seed expressions as ROOTED / ASSUMED / UNROOTED.

    Interprocedural: parameters are resolved through the call graph by
    classifying the argument expression at every known call site
    (worst-wins); project-function calls are resolved by classifying the
    callee's return expressions with this call's arguments bound.
    """

    MAX_DEPTH = 20

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        #: Recursion guard for param/return chasing.
        self._stack: set[tuple[str, str]] = set()

    # The env maps (id(function scope node), param name) -> the argument
    # expression (and its module) bound at the call site being explored.
    def classify(self, module: ModuleInfo, expr: ast.AST,
                 env: dict[tuple[int, str], tuple[ModuleInfo, ast.AST]],
                 depth: int = 0) -> _Verdict:
        if depth > self.MAX_DEPTH:
            return (ASSUMED, None)
        if isinstance(expr, ast.Constant):
            return (ROOTED, None)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return self._combine(
                self.classify(module, element, env, depth + 1)
                for element in expr.elts)
        if isinstance(expr, ast.BinOp):
            return self._combine([
                self.classify(module, expr.left, env, depth + 1),
                self.classify(module, expr.right, env, depth + 1)])
        if isinstance(expr, ast.UnaryOp):
            return self.classify(module, expr.operand, env, depth + 1)
        if isinstance(expr, ast.Subscript):
            return self.classify(module, expr.value, env, depth + 1)
        if isinstance(expr, ast.Starred):
            return self.classify(module, expr.value, env, depth + 1)
        if isinstance(expr, ast.IfExp):
            return self._combine([
                self.classify(module, expr.body, env, depth + 1),
                self.classify(module, expr.orelse, env, depth + 1)])
        if isinstance(expr, ast.Attribute):
            return self._classify_attribute(module, expr, env, depth)
        if isinstance(expr, ast.Name):
            return self._classify_name(module, expr, env, depth)
        if isinstance(expr, ast.Call):
            return self._classify_call(module, expr, env, depth)
        return (ASSUMED, None)

    def _combine(self, verdicts: "Iterator[_Verdict] | list[_Verdict]"
                 ) -> _Verdict:
        worst: _Verdict = (ROOTED, None)
        for verdict in verdicts:
            if verdict[0] < worst[0]:
                worst = verdict
        return worst

    def _classify_attribute(
            self, module: ModuleInfo, expr: ast.Attribute,
            env: dict[tuple[int, str], tuple[ModuleInfo, ast.AST]],
            depth: int) -> _Verdict:
        canonical = module.table.canonical(expr)
        if canonical is not None:
            reason = self._entropy_reason(canonical)
            if reason is not None:
                return (UNROOTED, f"{canonical} ({reason})")
        if _attr_is_seedy(expr.attr):
            # config.run.seed, args.seed, settings.seed, self._seed...
            return (ROOTED, None)
        return (ASSUMED, None)

    def _classify_name(
            self, module: ModuleInfo, expr: ast.Name,
            env: dict[tuple[int, str], tuple[ModuleInfo, ast.AST]],
            depth: int) -> _Verdict:
        table = module.table
        scope = table.scope_of(expr)
        owner = table.resolving_scope(scope, expr.id)
        if owner is None:
            return (ASSUMED, None)  # builtin or truly undefined
        bindings = owner.bindings.get(expr.id, [])
        verdicts: list[_Verdict] = []
        for binding in bindings:
            verdicts.append(self._classify_binding(
                module, owner_scope_node_id=id(owner.node),
                binding=binding, env=env, depth=depth))
        return self._combine(verdicts) if verdicts else (ASSUMED, None)

    def _classify_binding(
            self, module: ModuleInfo, owner_scope_node_id: int,
            binding: Binding,
            env: dict[tuple[int, str], tuple[ModuleInfo, ast.AST]],
            depth: int) -> _Verdict:
        if binding.kind == BIND_PARAM:
            bound = env.get((owner_scope_node_id, binding.name))
            if bound is not None:
                caller_module, value = bound
                return self.classify(caller_module, value, {}, depth + 1)
            return self._classify_param(module, owner_scope_node_id,
                                        binding, depth)
        if binding.kind == BIND_IMPORT:
            target = binding.import_target
            if target is not None:
                reason = self._entropy_reason(target)
                if reason is not None:
                    return (UNROOTED, f"{target} ({reason})")
            return (ASSUMED, None)
        if binding.value is None:
            return (ASSUMED, None)
        # "for"/"comp"/"with" bindings hold an *element* of the stored
        # iterable; an element of a rooted spawn is itself rooted.
        return self.classify(module, binding.value, env, depth + 1)

    def _classify_param(self, module: ModuleInfo, scope_node_id: int,
                        binding: Binding, depth: int) -> _Verdict:
        # Resolve the enclosing indexed function, then classify the
        # argument expression at every known call site.
        info = None
        for func in module.functions.values():
            if id(func.node) == scope_node_id:
                info = func
                break
        if info is None:
            return (ASSUMED, None)  # nested function / lambda
        key = (f"{module.dotted}:{info.qualname}", binding.name)
        if key in self._stack:
            return (ASSUMED, None)
        sites = self.graph.call_sites(info)
        if not sites:
            return (ASSUMED, None)
        self._stack.add(key)
        try:
            verdicts: list[_Verdict] = []
            for caller, call in sites:
                value_verdict: _Verdict = (ASSUMED, None)
                for bound in self.graph.bind_args(info, call):
                    if bound.param != binding.name:
                        continue
                    if bound.value is None:
                        value_verdict = (ASSUMED, None)
                    elif bound.from_default:
                        value_verdict = self.classify(
                            info.module, bound.value, {}, depth + 1)
                    else:
                        value_verdict = self.classify(
                            caller, bound.value, {}, depth + 1)
                    break
                verdicts.append(value_verdict)
            return self._combine(verdicts)
        finally:
            self._stack.discard(key)

    def _classify_call(
            self, module: ModuleInfo, expr: ast.Call,
            env: dict[tuple[int, str], tuple[ModuleInfo, ast.AST]],
            depth: int) -> _Verdict:
        table = module.table
        canonical = table.canonical(expr.func)
        if canonical is not None:
            reason = self._entropy_reason(canonical)
            if reason is not None:
                return (UNROOTED, f"{canonical} ({reason})")
            if canonical == "numpy.random.SeedSequence":
                seed = _seed_argument(expr)
                if seed is None or (isinstance(seed, ast.Constant)
                                    and seed.value is None):
                    return (ASSUMED, None)  # REP002's finding, not ours
                return self.classify(module, seed, env, depth + 1)
        if isinstance(expr.func, ast.Name):
            name = expr.func.id
            if not table.lookup(table.scope_of(expr.func), name):
                if name == "hash":
                    return (UNROOTED,
                            "hash() (salted by PYTHONHASHSEED)")
                if name in _PASSTHROUGH_BUILTINS:
                    return self._combine(
                        self.classify(module, arg, env, depth + 1)
                        for arg in expr.args) if expr.args else (ASSUMED,
                                                                 None)
        if (isinstance(expr.func, ast.Attribute)
                and expr.func.attr in ("spawn", "generate_state")):
            # seed_seq.spawn(n) / .generate_state(n): rootedness of the
            # receiver carries through.
            return self.classify(module, expr.func.value, env, depth + 1)
        resolved = self.graph.resolve_call(module, expr)
        if resolved is not None:
            return self._classify_returns(module, expr, resolved, depth)
        return (ASSUMED, None)

    def _classify_returns(self, caller: ModuleInfo, call: ast.Call,
                          resolved: FunctionInfo,
                          depth: int) -> _Verdict:
        key = (f"{resolved.module.dotted}:{resolved.qualname}", "<return>")
        if key in self._stack:
            return (ASSUMED, None)
        self._stack.add(key)
        try:
            env: dict[tuple[int, str], tuple[ModuleInfo, ast.AST]] = {}
            for bound in self.graph.bind_args(resolved, call):
                if bound.value is not None:
                    source_module = (resolved.module if bound.from_default
                                     else caller)
                    env[(id(resolved.node), bound.param)] = (
                        source_module, bound.value)
            returns = [node.value for node in ast.walk(resolved.node)
                       if isinstance(node, ast.Return)
                       and node.value is not None]
            if not returns:
                return (ASSUMED, None)
            return self._combine(
                self.classify(resolved.module, value, env, depth + 1)
                for value in returns)
        finally:
            self._stack.discard(key)

    @staticmethod
    def _entropy_reason(canonical: str) -> Optional[str]:
        reason = _ENTROPY_CALLS.get(canonical)
        if reason is not None:
            return reason
        if canonical in WALL_CLOCK:
            return WALL_CLOCK[canonical]
        if canonical.startswith("secrets."):
            return "cryptographic entropy"
        if (canonical.startswith("random.")
                and canonical != "random.Random"):
            return "global random state"
        if (canonical.startswith("numpy.random.")
                and canonical.split(".")[2] not in _NUMPY_SEEDED_API):
            return "legacy numpy global RNG"
        return None


@register
class SeedFlowRule(ProjectRule):
    """REP010 — every engine-bound seed must trace back to config."""

    id = "REP010"
    name = "seed-flow"
    summary = ("interprocedural proof that seeds reaching RNG "
               "constructors derive from configuration, not entropy "
               "(os.getpid, time.time, uuid4, hash, ...)")
    hint = ("derive the seed from SystemConfig.seed (spawn it from the "
            "run's SeedSequence); entropy-based seeds make runs "
            "unreproducible")

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = CallGraph.of(project)
        classifier = _SeedClassifier(graph)
        for module in graph.modules:
            tree = module.source.tree
            assert tree is not None
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                canonical = module.table.canonical(node.func)
                if canonical not in _SEEDED_CONSTRUCTORS:
                    continue
                seed = _seed_argument(node)
                if seed is None or (isinstance(seed, ast.Constant)
                                    and seed.value is None):
                    continue  # REP002 already reports these
                verdict, culprit = classifier.classify(module, seed, {})
                if verdict == UNROOTED:
                    short = canonical.rsplit(".", 1)[-1]
                    yield self.finding(
                        module.source, node.lineno,
                        f"seed reaching {short}() derives from "
                        f"{culprit or 'an entropy source'}, not from "
                        f"configuration")
