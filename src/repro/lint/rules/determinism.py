"""REP001 wall-clock sanitizer and REP002 RNG seed discipline.

The reproduction's headline invariant is bit-reproducibility from an
explicit seed.  Two classes of call break it silently:

- **wall-clock and host-timer reads** (``time.time``, ``datetime.now``,
  ``time.perf_counter``, ...) leaking into simulation logic — legitimate
  uses (provenance timestamps, profiler timers) must carry an inline
  ``# lint: allow[REP001] -- rationale`` pragma;
- **ambient randomness**: the global ``random.*`` functions and numpy's
  legacy ``np.random.*`` module-level API share hidden global state, and
  ``default_rng()`` / ``SeedSequence()`` without an explicit seed pull OS
  entropy.  Every generator must be constructed from a seed traceable to
  :class:`repro.core.config.RunConfig`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.rules.base import FileRule, ImportResolver, register
from repro.lint.source import SourceFile

__all__ = ["WallClockRule", "UnseededRngRule"]

#: Exact canonical callables that read host clocks / timers.
WALL_CLOCK = {
    "time.time": "wall clock",
    "time.time_ns": "wall clock",
    "time.localtime": "wall clock",
    "time.gmtime": "wall clock",
    "time.ctime": "wall clock",
    "time.asctime": "wall clock",
    "time.strftime": "wall clock",
    "time.monotonic": "host timer",
    "time.monotonic_ns": "host timer",
    "time.perf_counter": "host timer",
    "time.perf_counter_ns": "host timer",
    "time.process_time": "host timer",
    "time.process_time_ns": "host timer",
    "time.sleep": "wall-clock dependency",
    "datetime.datetime.now": "wall clock",
    "datetime.datetime.utcnow": "wall clock",
    "datetime.datetime.today": "wall clock",
    "datetime.date.today": "wall clock",
}

#: numpy.random names that are part of the Generator-era seeded API.
_NUMPY_SEEDED_API = frozenset({
    "default_rng", "SeedSequence", "Generator", "BitGenerator",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
})

#: Constructors that must receive an explicit, non-None seed.
_SEEDED_CONSTRUCTORS = frozenset({
    "numpy.random.default_rng",
    "numpy.random.SeedSequence",
    "random.Random",
})


def _is_forbidden(canonical: str) -> str | None:
    """Reason string when ``canonical`` is a determinism hazard."""
    reason = WALL_CLOCK.get(canonical)
    if reason is not None:
        return reason
    if canonical.startswith("random.") and canonical != "random.Random":
        return "global random state"
    if (canonical.startswith("numpy.random.")
            and canonical.split(".")[2] not in _NUMPY_SEEDED_API):
        return "legacy numpy global RNG"
    return None


@register
class WallClockRule(FileRule):
    """REP001 — no wall clocks, host timers, or ambient RNG state."""

    id = "REP001"
    name = "wall-clock"
    summary = ("forbid wall-clock/timer reads and global RNG state "
               "(time.time, datetime.now, random.*, legacy np.random.*)")
    hint = ("inject a clock or seeded Generator instead; if this is "
            "provenance or profiling (not simulation logic), add "
            "'# lint: allow[REP001] -- <why>'")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        resolver = ImportResolver.of(source.tree)
        flagged: set[int] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                canonical = resolver.canonical(node.func)
                if canonical is None:
                    continue
                reason = _is_forbidden(canonical)
                if reason is not None:
                    flagged.add(id(node.func))
                    yield self.finding(
                        source, node.lineno,
                        f"call to {canonical} ({reason})")
            elif isinstance(node, (ast.Attribute, ast.Name)):
                # Bare references (aliasing, defaults, callbacks): e.g.
                # `_pc = time.perf_counter` smuggles the timer past a
                # call-only check.
                if id(node) in flagged:
                    continue
                canonical = resolver.canonical(node)
                if canonical is None:
                    continue
                reason = _is_forbidden(canonical)
                if reason is not None:
                    # Skip inner parts of an already-flagged chain.
                    for inner in ast.walk(node):
                        flagged.add(id(inner))
                    yield self.finding(
                        source, node.lineno,
                        f"reference to {canonical} ({reason})")


@register
class UnseededRngRule(FileRule):
    """REP002 — RNG constructors must receive an explicit seed."""

    id = "REP002"
    name = "unseeded-rng"
    summary = ("default_rng() / SeedSequence() / random.Random() must be "
               "given an explicit, non-None seed traceable to config")
    hint = ("pass a seed derived from RunConfig.seed (e.g. spawn from the "
            "run's SeedSequence as repro.core.build does)")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        resolver = ImportResolver.of(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = resolver.canonical(node.func)
            if canonical not in _SEEDED_CONSTRUCTORS:
                continue
            short = canonical.rsplit(".", 1)[-1]
            if not node.args and not node.keywords:
                yield self.finding(
                    source, node.lineno,
                    f"{short}() constructed without a seed "
                    f"(falls back to OS entropy)")
                continue
            seed = node.args[0] if node.args else None
            if seed is None:
                for kw in node.keywords:
                    if kw.arg in ("seed", "entropy", "x"):
                        seed = kw.value
                        break
            if (isinstance(seed, ast.Constant) and seed.value is None):
                yield self.finding(
                    source, node.lineno,
                    f"{short}(None) is an unseeded construction "
                    f"(None selects OS entropy)")
