"""REP003 — no exact float equality on simulated-time values.

Simulated time is a float (broadcast units); both engines advance it by
fractional think times and slot boundaries.  ``==`` / ``!=`` between two
time-derived values works only until an optimization reorders a sum, so
the rule flags equality comparisons where either operand *names* a
simulated-time quantity: ``now``, ``env.now``-style attributes, or
``*_time`` / ``*_at`` / ``*_now`` identifiers.  Ordering comparisons
(``<``, ``>=``) and identity tests (``is None``) stay legal — engines
compare boundaries by order, never by exact coincidence.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.rules.base import FileRule, register
from repro.lint.source import SourceFile

__all__ = ["SimTimeEqualityRule"]

#: Identifier spellings that denote a simulated-time value.
_TIME_NAMES = frozenset({"now", "now_boundary", "completion", "deadline"})
_TIME_SUFFIXES = ("_time", "_at", "_now")


def _names_time(name: str) -> bool:
    return name in _TIME_NAMES or name.endswith(_TIME_SUFFIXES)


def _is_time_operand(node: ast.AST) -> str | None:
    """The time-ish identifier inside ``node``, if any."""
    if isinstance(node, ast.Name) and _names_time(node.id):
        return node.id
    if isinstance(node, ast.Attribute) and _names_time(node.attr):
        return node.attr
    if isinstance(node, ast.BinOp):
        return (_is_time_operand(node.left)
                or _is_time_operand(node.right))
    if isinstance(node, (ast.UnaryOp,)):
        return _is_time_operand(node.operand)
    return None


@register
class SimTimeEqualityRule(FileRule):
    """REP003 — flag ``==`` / ``!=`` over simulated-time operands."""

    id = "REP003"
    name = "sim-time-float-eq"
    summary = ("forbid ==/!= comparisons whose operands derive from "
               "simulated time (now, env.now, *_time, *_at names)")
    hint = ("compare slot boundaries by order (<, >=) or use an integer "
            "slot index; exact float coincidence is representation-"
            "dependent")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                # `x == None` is an identity bug, not a float-time bug;
                # leave it to ruff (E711).
                if any(isinstance(side, ast.Constant) and side.value is None
                       for side in (left, right)):
                    continue
                witness = _is_time_operand(left) or _is_time_operand(right)
                if witness is not None:
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        source, node.lineno,
                        f"float equality '{symbol}' on simulated-time "
                        f"operand '{witness}'")
