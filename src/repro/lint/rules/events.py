"""REP005 event-name registry discipline and REP006 tracer-hook symmetry.

Trace and metric event names cross the process boundary as strings
(JSONL traces, figure JSON, metric names), so a typo or a name invented
by one engine is invisible to the type checker and only surfaces as a
silently-empty trace diff.  Two rules close the gap:

- **REP005** — ``obs/events.py`` is the single registry of event
  vocabularies.  The rule re-derives the enum values of ``SlotKind``
  (``broadcast_server.py``) and ``Offer`` (``queue.py``) plus the plain
  ``DISCIPLINES`` tuple (``schedulers.py``) from their ASTs and requires
  them to equal the registry tuples (the server layer cannot import obs
  without a cycle, so the sync is machine-checked here instead), and
  every string literal compared or assigned to a ``kind`` /
  ``served_kind`` / ``on_air_kind`` / ``pull_outcome`` / ``discipline``
  attribute anywhere in the tree must be a registry member.
- **REP006** — the set of tracer hooks (``on_*`` observer methods)
  referenced by ``fast.py`` must equal the set referenced by
  ``simulation.py``: an engine that stops calling ``on_air`` still
  produces records, just subtly wrong ones.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.findings import Finding
from repro.lint.rules.base import ProjectRule, register
from repro.lint.source import Project, SourceFile

__all__ = ["EventRegistryRule", "HookSymmetryRule"]

_EVENTS_BASENAME = "events.py"
_FAST_BASENAME = "fast.py"
_REFERENCE_BASENAME = "simulation.py"

#: Enum class -> (defining module basename, registry tuple name).
_ENUM_REGISTRY = {
    "SlotKind": ("broadcast_server.py", "SLOT_KINDS"),
    "Offer": ("queue.py", "OFFER_OUTCOMES"),
}

#: Plain module-level tuple -> (defining module basename, registry tuple
#: name).  Same no-import sync discipline as the enums, for vocabularies
#: that live as bare string tuples rather than enum classes.
_TUPLE_REGISTRY = {
    "DISCIPLINES": ("schedulers.py", "SCHEDULER_DISCIPLINES"),
}

#: Attribute names that carry event-name strings -> registry tuples that
#: may legally supply their values.
_KIND_ATTRIBUTES = {
    "kind": ("SLOT_KINDS",),
    "served_kind": ("SERVED_KINDS",),
    "on_air_kind": ("SLOT_KINDS",),
    "pull_outcome": ("OFFER_OUTCOMES",),
    "discipline": ("SCHEDULER_DISCIPLINES",),
}


def _registry_tuples(events: SourceFile) -> dict[str, tuple[str, ...]]:
    """Module-level ``NAME = ("a", "b", ...)`` string tuples of events.py."""
    assert events.tree is not None
    registry: dict[str, tuple[str, ...]] = {}
    for node in ast.walk(events.tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        value = node.value
        if value is None or not isinstance(value, (ast.Tuple, ast.List)):
            continue
        strings = []
        for element in value.elts:
            if not (isinstance(element, ast.Constant)
                    and isinstance(element.value, str)):
                strings = None
                break
            strings.append(element.value)
        if strings is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                registry[target.id] = tuple(strings)
    return registry


def _assignment_line(source: SourceFile, name: str) -> int:
    """Line of the module-level assignment to ``name`` (0 if absent)."""
    assert source.tree is not None
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                return node.lineno
    return 0


def _enum_values(source: SourceFile, class_name: str) -> Optional[
        tuple[tuple[str, ...], int]]:
    """String member values of an enum class, with its line number."""
    assert source.tree is not None
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef) or node.name != class_name:
            continue
        values = []
        for stmt in node.body:
            if (isinstance(stmt, ast.Assign)
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)):
                values.append(stmt.value.value)
        return tuple(values), node.lineno
    return None


@register
class EventRegistryRule(ProjectRule):
    """REP005 — event-name strings come from the shared registry."""

    id = "REP005"
    name = "event-registry"
    summary = ("SlotKind/Offer enum values and the DISCIPLINES tuple must "
               "mirror obs/events.py, and kind/served_kind/pull_outcome/"
               "discipline string literals must be registry members")
    hint = ("add the name to repro/obs/events.py first, then use it; "
            "never invent an event-name string at the point of use")

    def check_project(self, project: Project) -> Iterator[Finding]:
        events = self._find_registry(project)
        enum_sources = {name: project.named(basename)
                        for name, (basename, _) in _ENUM_REGISTRY.items()}
        if events is None:
            # Only meaningful when the project actually defines the enums.
            for class_name, source in enum_sources.items():
                if source is not None and _enum_values(
                        source, class_name) is not None:
                    values = _enum_values(source, class_name)
                    assert values is not None
                    yield self.finding(
                        source, values[1],
                        f"enum {class_name} defines event names but the "
                        f"project has no events.py registry")
            return
        registry = _registry_tuples(events)

        # 1. Enum values mirror the registry tuples, in order.
        for class_name, (_, tuple_name) in _ENUM_REGISTRY.items():
            source = enum_sources[class_name]
            if source is None:
                continue
            extracted = _enum_values(source, class_name)
            if extracted is None:
                continue
            values, line = extracted
            expected = registry.get(tuple_name)
            if expected is None:
                yield self.finding(
                    events, 0,
                    f"registry tuple {tuple_name} missing from events.py "
                    f"(needed by enum {class_name})")
            elif values != expected:
                yield self.finding(
                    source, line,
                    f"enum {class_name} values {list(values)} drifted from "
                    f"registry {tuple_name} {list(expected)}")

        # 2. Plain tuple vocabularies mirror the registry, in order.
        for tuple_name, (basename, registry_name) in _TUPLE_REGISTRY.items():
            source = project.named(basename)
            if source is None or source.tree is None:
                continue
            local = _registry_tuples(source).get(tuple_name)
            if local is None:
                continue
            expected = registry.get(registry_name)
            if expected is None:
                yield self.finding(
                    events, 0,
                    f"registry tuple {registry_name} missing from events.py "
                    f"(needed by {basename}:{tuple_name})")
            elif local != expected:
                yield self.finding(
                    source, _assignment_line(source, tuple_name),
                    f"tuple {tuple_name} values {list(local)} drifted from "
                    f"registry {registry_name} {list(expected)}")

        # 3. Event-name literals used against kind-carrying attributes
        # must be registry members.
        for source in project.files:
            if source.tree is None or source is events:
                continue
            yield from self._check_literals(source, registry)

    def _check_literals(self, source: SourceFile,
                        registry: dict[str, tuple[str, ...]]
                        ) -> Iterator[Finding]:
        assert source.tree is not None
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                attrs = [self._kind_attribute(op) for op in operands]
                for attr in filter(None, attrs):
                    for op in operands:
                        yield from self._literal_findings(
                            source, attr, op, registry)
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    # Bare 'kind' is too generic a keyword to claim
                    # (numpy's argsort(kind=...), metric types, ...).
                    if kw.arg in _KIND_ATTRIBUTES and kw.arg != "kind":
                        yield from self._literal_findings(
                            source, kw.arg, kw.value, registry)

    @staticmethod
    def _find_registry(project: Project) -> Optional[SourceFile]:
        """The events.py that actually defines the registry tuples.

        Basename matching alone is ambiguous (this very rule module is
        called events.py too), so require a known tuple to be present.
        """
        for candidate in project.all_named(_EVENTS_BASENAME):
            tuples = _registry_tuples(candidate)
            if "SLOT_KINDS" in tuples or "OFFER_OUTCOMES" in tuples:
                return candidate
        return None

    @staticmethod
    def _kind_attribute(node: ast.AST) -> Optional[str]:
        name = None
        if isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Name):
            # A bare local named 'kind' is too generic to claim; the
            # specific spellings are unambiguous even as locals.
            if node.id != "kind":
                name = node.id
        return name if name in _KIND_ATTRIBUTES else None

    def _literal_findings(self, source: SourceFile, attr: str,
                          node: ast.AST,
                          registry: dict[str, tuple[str, ...]]
                          ) -> Iterator[Finding]:
        allowed: set[str] = set()
        for tuple_name in _KIND_ATTRIBUTES[attr]:
            allowed.update(registry.get(tuple_name, ()))
        for sub in ast.walk(node):
            if (isinstance(sub, ast.Constant) and isinstance(sub.value, str)
                    and sub.value not in allowed):
                yield self.finding(
                    source, sub.lineno,
                    f"event-name literal '{sub.value}' used with "
                    f"'{attr}' is not in the shared registry "
                    f"({' / '.join(_KIND_ATTRIBUTES[attr])})")


@register
class HookSymmetryRule(ProjectRule):
    """REP006 — both engines drive the identical tracer-hook set."""

    id = "REP006"
    name = "hook-symmetry"
    summary = ("the on_* tracer hooks referenced by fast.py must equal "
               "those referenced by simulation.py")
    hint = ("wire the missing hook into the engine that lacks it (the "
            "sink protocol only compares cleanly when both engines emit "
            "the same events)")

    def check_project(self, project: Project) -> Iterator[Finding]:
        fast = project.named(_FAST_BASENAME)
        reference = project.named(_REFERENCE_BASENAME)
        if fast is None or reference is None:
            return
        fast_hooks = self._hooks(fast)
        ref_hooks = self._hooks(reference)
        if fast_hooks == ref_hooks:
            return
        for source, missing in ((fast, ref_hooks - fast_hooks),
                                (reference, fast_hooks - ref_hooks)):
            if missing:
                other = ("simulation.py" if source is fast else "fast.py")
                yield self.finding(
                    source, 0,
                    f"engine never references tracer hook(s) "
                    f"{', '.join(sorted(missing))} that {other} drives")

    @staticmethod
    def _hooks(source: SourceFile) -> set[str]:
        assert source.tree is not None
        hooks = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Attribute) and node.attr.startswith("on_"):
                # State fields like on_air_at / on_air_kind are data, not
                # observer methods.
                if not node.attr.endswith(("_at", "_kind")):
                    hooks.add(node.attr)
        return hooks
