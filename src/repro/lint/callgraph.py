"""Project-level import/call graph over scanned modules.

Builds on :mod:`repro.lint.scopes`: every parsed file gets a
:class:`ModuleInfo` (scope table + top-level functions/classes keyed by
qualname), and :class:`CallGraph` links them through imports so rules can
resolve a call expression to the function it lands on — across module
boundaries, through aliases, and through ``Class(...)`` construction
(resolved to ``__init__``) or ``self.method(...)`` dispatch.

Module identity is matched by *dotted suffix*: when the scan root is
``src/repro``, the file ``core/build.py`` has dotted name ``core.build``
and an import of ``repro.core.build`` resolves to it.  Ambiguous
suffixes resolve to nothing — rules built on this layer must degrade to
"unknown", never guess.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro.lint.scopes import (
    ASYNC_FUNCTION,
    BIND_CLASS,
    BIND_DEF,
    BIND_IMPORT,
    CLASS,
    FUNCTION,
    Scope,
    ScopeTable,
    table_for,
)
from repro.lint.source import Project, SourceFile

__all__ = ["FunctionInfo", "ClassInfo", "ModuleInfo", "CallGraph",
           "BoundArg"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class FunctionInfo:
    """A module-level function or a method, addressable by qualname."""

    module: "ModuleInfo"
    qualname: str
    node: FunctionNode
    scope: Scope
    class_name: Optional[str] = None

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def key(self) -> tuple[str, str]:
        """Stable index key (module dotted name, qualname)."""
        return (self.module.dotted, self.qualname)


@dataclass
class ClassInfo:
    """A module-level class and its directly defined methods."""

    module: "ModuleInfo"
    name: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module: its scope table plus an addressable API."""

    source: SourceFile
    dotted: str
    table: ScopeTable
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: id(def node) -> FunctionInfo, for resolving local "def" bindings.
    _by_node: dict[int, FunctionInfo] = field(default_factory=dict)

    @classmethod
    def of(cls, source: SourceFile) -> "ModuleInfo":
        assert source.tree is not None
        table = table_for(source)
        rel = source.rel[:-3] if source.rel.endswith(".py") else source.rel
        if rel.endswith("/__init__"):
            rel = rel[: -len("/__init__")]
        info = cls(source=source, dotted=rel.replace("/", "."), table=table)
        for child in table.module.children:
            if child.kind in (FUNCTION, ASYNC_FUNCTION):
                info._add_function(child, class_name=None)
            elif child.kind == CLASS and isinstance(child.node,
                                                    ast.ClassDef):
                klass = ClassInfo(module=info, name=child.name,
                                  node=child.node)
                info.classes[child.name] = klass
                for member in child.children:
                    if member.kind in (FUNCTION, ASYNC_FUNCTION):
                        func = info._add_function(member,
                                                  class_name=child.name)
                        klass.methods[func.node.name] = func
        return info

    def _add_function(self, scope: Scope,
                      class_name: Optional[str]) -> FunctionInfo:
        node = scope.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        qualname = (f"{class_name}.{node.name}" if class_name
                    else node.name)
        func = FunctionInfo(module=self, qualname=qualname, node=node,
                            scope=scope, class_name=class_name)
        self.functions[qualname] = func
        self._by_node[id(node)] = func
        return func

    def function_of(self, node: ast.AST) -> Optional[FunctionInfo]:
        """The FunctionInfo for a def node, when it is one we indexed."""
        return self._by_node.get(id(node))

    def enclosing_function_info(self,
                                node: ast.AST) -> Optional[FunctionInfo]:
        """The indexed function whose body contains ``node``, if any."""
        scope = self.table.enclosing_function(node)
        while scope is not None:
            info = self._by_node.get(id(scope.node))
            if info is not None:
                return info
            parent = scope.parent
            scope = None
            while parent is not None:
                if parent.kind in (FUNCTION, ASYNC_FUNCTION):
                    scope = parent
                    break
                parent = parent.parent
        return None


@dataclass(frozen=True)
class BoundArg:
    """One parameter's value at a specific call site."""

    param: str
    #: The argument (or default) expression, None when nothing visible
    #: binds the parameter (``*args`` spreads, missing required arg...).
    value: Optional[ast.AST]
    #: True when ``value`` is the callee's default expression — it then
    #: evaluates in the *callee's* module, not the caller's.
    from_default: bool = False


class CallGraph:
    """Cross-module call resolution over every parsed file in a scan."""

    def __init__(self, modules: list[ModuleInfo]) -> None:
        self.modules = modules
        self._by_dotted: dict[str, ModuleInfo] = {
            m.dotted: m for m in modules}
        #: (module dotted, qualname) -> [(caller module, call node), ...]
        self._call_sites: dict[tuple[str, str],
                               list[tuple[ModuleInfo, ast.Call]]] = {}
        self._index_call_sites()

    @classmethod
    def of(cls, project: Project) -> "CallGraph":
        return cls([ModuleInfo.of(f) for f in project.files
                    if f.tree is not None])

    # -- module resolution ----------------------------------------------------
    def find_module(self, dotted: str) -> Optional[ModuleInfo]:
        """Module whose dotted name matches ``dotted`` by suffix.

        ``repro.core.build`` matches a scan-local ``core.build``;
        ambiguity (several modules share the suffix) resolves to None.
        """
        exact = self._by_dotted.get(dotted)
        if exact is not None:
            return exact
        matches = [m for m in self.modules
                   if dotted.endswith("." + m.dotted)
                   or m.dotted.endswith("." + dotted)]
        return matches[0] if len(matches) == 1 else None

    def resolve_dotted(self, dotted: str) -> Optional[FunctionInfo]:
        """Function/class reached by a canonical dotted path, if local.

        ``repro.core.build.build_system`` -> that function's info;
        a class path resolves to its ``__init__`` when defined.
        """
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = self.find_module(".".join(parts[:split]))
            if module is None:
                continue
            attrs = parts[split:]
            if len(attrs) == 1:
                func = module.functions.get(attrs[0])
                if func is not None:
                    return func
                klass = module.classes.get(attrs[0])
                if klass is not None:
                    return klass.methods.get("__init__")
            elif len(attrs) == 2:
                klass = module.classes.get(attrs[0])
                if klass is not None:
                    return klass.methods.get(attrs[1])
            return None
        return None

    # -- call resolution ------------------------------------------------------
    def resolve_call(self, module: ModuleInfo,
                     call: ast.Call) -> Optional[FunctionInfo]:
        """The scanned function a call lands on, when provable."""
        func = call.func
        table = module.table
        if isinstance(func, ast.Name):
            for binding in table.lookup(table.scope_of(func), func.id):
                if binding.kind == BIND_DEF:
                    resolved = module.function_of(binding.node)
                    if resolved is not None:
                        return resolved
                elif binding.kind == BIND_CLASS:
                    klass = module.classes.get(binding.name)
                    if klass is not None:
                        return klass.methods.get("__init__")
                elif (binding.kind == BIND_IMPORT
                      and binding.import_target is not None):
                    return self.resolve_dotted(binding.import_target)
            return None
        if isinstance(func, ast.Attribute):
            # self.method(...) inside a class body.
            if (isinstance(func.value, ast.Name)
                    and func.value.id in ("self", "cls")):
                owner = module.enclosing_function_info(call)
                if owner is not None and owner.class_name is not None:
                    klass = module.classes.get(owner.class_name)
                    if klass is not None:
                        return klass.methods.get(func.attr)
                return None
            canonical = table.canonical(func)
            if canonical is not None:
                return self.resolve_dotted(canonical)
        return None

    # -- call-site index ------------------------------------------------------
    def _index_call_sites(self) -> None:
        for module in self.modules:
            tree = module.source.tree
            assert tree is not None
            for node in ast.walk(tree):
                if isinstance(node, ast.Call):
                    target = self.resolve_call(module, node)
                    if target is not None:
                        self._call_sites.setdefault(target.key, []).append(
                            (module, node))

    def call_sites(self, func: FunctionInfo
                   ) -> list[tuple[ModuleInfo, ast.Call]]:
        """Every resolved call of ``func`` across the scan."""
        return self._call_sites.get(func.key, [])

    # -- argument binding -----------------------------------------------------
    def bind_args(self, func: FunctionInfo,
                  call: ast.Call) -> Iterator[BoundArg]:
        """Map a call's arguments onto the callee's parameters.

        Yields one :class:`BoundArg` per named parameter.  ``*args`` /
        ``**kwargs`` spreads at the call site make positional binding
        unreliable, so every parameter at or after a Starred argument
        binds to None (unknown).
        """
        args = func.node.args
        params = [a.arg for a in (*args.posonlyargs, *args.args)]
        if func.is_method and params and params[0] in ("self", "cls"):
            params = params[1:]
        defaults: dict[str, ast.AST] = {}
        for param, default in zip(reversed(params),
                                  reversed(args.defaults)):
            defaults[param] = default
        for arg_node, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                defaults[arg_node.arg] = default
        bound: dict[str, Optional[ast.AST]] = {}
        spread = False
        for index, value in enumerate(call.args):
            if isinstance(value, ast.Starred):
                spread = True
            if index < len(params):
                bound[params[index]] = None if spread else value
        if spread:
            for param in params[len(call.args):]:
                bound[param] = None
        double_spread = any(kw.arg is None for kw in call.keywords)
        for keyword in call.keywords:
            if keyword.arg is not None:
                bound[keyword.arg] = keyword.value
        all_params = params + [a.arg for a in args.kwonlyargs]
        for param in all_params:
            if param in bound:
                yield BoundArg(param=param, value=bound[param])
            elif param in defaults and not double_spread:
                yield BoundArg(param=param, value=defaults[param],
                               from_default=True)
            else:
                yield BoundArg(param=param, value=None)
