"""Broadcast Disks substrate.

Implements the multi-disk periodic broadcast of [Acha95a]/[Acha95b]:

- :class:`~repro.broadcast.program.DiskAssignment` — pages grouped into
  "disks" with relative spin frequencies,
- :func:`~repro.broadcast.program.build_schedule` — the LCM-chunking
  schedule-generation algorithm (Figure 1 of the paper),
- :class:`~repro.broadcast.schedule.Schedule` — the generated major cycle
  with per-page frequency and next-arrival queries,
- :func:`~repro.broadcast.offset.apply_offset` — the *Offset* transform
  (shift the CacheSize hottest pages to the slowest disk),
- :func:`~repro.broadcast.chopping.chop_assignment` — Experiment 3's
  restricted push schedules.
"""

from repro.broadcast.program import Disk, DiskAssignment, build_schedule
from repro.broadcast.schedule import Schedule
from repro.broadcast.offset import apply_offset, offset_page_order
from repro.broadcast.chopping import chop_assignment
from repro.broadcast.serialization import (
    assignment_from_dict,
    assignment_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)

__all__ = [
    "Disk",
    "DiskAssignment",
    "build_schedule",
    "Schedule",
    "apply_offset",
    "offset_page_order",
    "chop_assignment",
    "assignment_to_dict",
    "assignment_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
]
