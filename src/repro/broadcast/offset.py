"""The *Offset* broadcast-program transform (Section 3.2 of the paper).

Mapping pages to disks strictly by hotness wastes bandwidth: steady-state
clients hold the hottest pages in their caches, so broadcasting them often
helps nobody.  The server therefore "shifts its CacheSize hottest pages to
the slowest disk, moving colder pages to faster disks".  Every result in
the paper uses the offset program.
"""

from __future__ import annotations

from typing import Sequence

from repro.broadcast.program import DiskAssignment

__all__ = ["offset_page_order", "apply_offset"]


def offset_page_order(ranked_pages: Sequence[int],
                      cache_size: int) -> list[int]:
    """Reorder a hottest-first ranking for the offset program.

    The hottest ``cache_size`` pages rotate to the back of the ordering so
    that, once the ordering is sliced into disks, they land on the slowest
    disk while every colder page shifts one cache-size step faster.
    """
    if cache_size < 0:
        raise ValueError("cache_size must be non-negative")
    if cache_size >= len(ranked_pages):
        raise ValueError(
            f"cache_size {cache_size} must be smaller than the database "
            f"({len(ranked_pages)} pages)")
    ranked = list(ranked_pages)
    return ranked[cache_size:] + ranked[:cache_size]


def apply_offset(ranked_pages: Sequence[int], disk_sizes: Sequence[int],
                 rel_freqs: Sequence[int], cache_size: int) -> DiskAssignment:
    """Build the offset disk assignment straight from a hotness ranking.

    Requires ``cache_size`` to fit on the slowest disk, otherwise some
    hottest pages would spill onto a faster disk and the transform would
    not mean what the paper describes.
    """
    if cache_size > disk_sizes[-1]:
        raise ValueError(
            f"cache_size {cache_size} exceeds the slowest disk "
            f"({disk_sizes[-1]} pages); the offset pages would not fit")
    order = offset_page_order(ranked_pages, cache_size)
    return DiskAssignment.from_ranking(order, disk_sizes, rel_freqs)
