"""The generated broadcast schedule and its query interface.

A :class:`Schedule` is the immutable major cycle produced by
:func:`repro.broadcast.program.build_schedule`.  Besides the raw slot
sequence it answers the queries the rest of the system needs:

- per-page broadcast frequency (the ``x`` in the PIX metric),
- the distance (in push slots) from a cycle position to a page's next
  broadcast — the quantity the threshold filter compares against,
- a dense numpy distance table used by the vectorized fast engine,
- per-page inter-broadcast spacings for the analytical delay model.
"""

from __future__ import annotations

import math
from typing import Optional, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.broadcast.program import DiskAssignment

__all__ = ["Schedule", "NOT_BROADCAST"]

#: Distance sentinel for pages that never appear in the schedule.  Kept
#: finite so it fits the int32 distance table; any real distance is smaller
#: because a major cycle is far shorter than this.
NOT_BROADCAST = 2 ** 30


class Schedule:
    """An immutable periodic broadcast program (one major cycle)."""

    def __init__(self, slots: tuple[Optional[int], ...],
                 assignment: "DiskAssignment | None" = None,
                 minor_cycle: int | None = None):
        if not slots:
            raise ValueError("a schedule needs at least one slot")
        self._slots = tuple(slots)
        self.assignment = assignment
        self.minor_cycle = minor_cycle
        grouped: dict[int, list[int]] = {}
        for index, page in enumerate(self._slots):
            if page is not None:
                grouped.setdefault(page, []).append(index)
        self._positions: dict[int, tuple[int, ...]] = {
            page: tuple(indices) for page, indices in grouped.items()}
        self._distance_table: np.ndarray | None = None

    # -- basic shape ---------------------------------------------------------
    def __len__(self) -> int:
        """Major cycle length in slots (including padded empty slots)."""
        return len(self._slots)

    @property
    def slots(self) -> tuple[Optional[int], ...]:
        """The raw slot sequence (None marks padding)."""
        return self._slots

    @property
    def major_cycle(self) -> int:
        """Alias for ``len(schedule)`` matching the paper's terminology."""
        return len(self._slots)

    @property
    def pages(self) -> frozenset[int]:
        """Set of pages that appear at least once."""
        return frozenset(self._positions)

    @property
    def num_empty_slots(self) -> int:
        """Padded slots per major cycle (bandwidth lost to chunk padding)."""
        return sum(1 for slot in self._slots if slot is None)

    def __contains__(self, page: int) -> bool:
        return page in self._positions

    def page_at(self, slot_index: int) -> Optional[int]:
        """Page broadcast at cycle position ``slot_index`` (mod cycle)."""
        return self._slots[slot_index % len(self._slots)]

    # -- per-page queries ------------------------------------------------------
    def frequency(self, page: int) -> int:
        """Broadcasts of ``page`` per major cycle (0 if not scheduled)."""
        positions = self._positions.get(page)
        return len(positions) if positions else 0

    def frequencies(self) -> dict[int, int]:
        """Mapping page -> broadcasts per cycle for all scheduled pages."""
        return {page: len(pos) for page, pos in self._positions.items()}

    def positions(self, page: int) -> tuple[int, ...]:
        """Sorted cycle positions at which ``page`` is broadcast."""
        return self._positions.get(page, ())

    def distance(self, page: int, slot_index: int) -> int:
        """Push slots from position ``slot_index`` to ``page``'s next start.

        0 means the page occupies the slot about to be broadcast.  Pages not
        in the schedule return :data:`NOT_BROADCAST`.
        """
        positions = self._positions.get(page)
        if not positions:
            return NOT_BROADCAST
        cycle = len(self._slots)
        slot_index %= cycle
        # Binary search for the first position >= slot_index.
        lo, hi = 0, len(positions)
        while lo < hi:
            mid = (lo + hi) // 2
            if positions[mid] < slot_index:
                lo = mid + 1
            else:
                hi = mid
        if lo == len(positions):
            return positions[0] + cycle - slot_index
        return positions[lo] - slot_index

    def spacings(self, page: int) -> tuple[int, ...]:
        """Slot gaps between consecutive broadcasts of ``page`` (wraps)."""
        positions = self._positions.get(page)
        if not positions:
            return ()
        cycle = len(self._slots)
        gaps = [b - a for a, b in zip(positions, positions[1:])]
        gaps.append(positions[0] + cycle - positions[-1])
        return tuple(gaps)

    # -- vectorized support ------------------------------------------------------
    def distance_table(self, num_pages: int) -> np.ndarray:
        """Dense ``(num_pages, cycle)`` int32 table of :meth:`distance`.

        ``table[p, s]`` is the distance from cycle position ``s`` to the
        next broadcast of page ``p``; :data:`NOT_BROADCAST` where ``p`` is
        not scheduled.  Built lazily once (a few MB for paper-scale
        configurations) and cached.
        """
        if (self._distance_table is not None
                and self._distance_table.shape[0] >= num_pages):
            return self._distance_table[:num_pages]
        cycle = len(self._slots)
        table = np.full((num_pages, cycle), NOT_BROADCAST, dtype=np.int32)
        # Backward sweep over two cycles resolves the wrap-around: the first
        # pass seeds distances relative to the cycle end, the second pass
        # overwrites every column with the correct wrapped value.
        next_distance = np.full(num_pages, NOT_BROADCAST, dtype=np.int64)
        for _ in range(2):
            for slot in range(cycle - 1, -1, -1):
                page = self._slots[slot]
                next_distance += 1
                if page is not None and page < num_pages:
                    next_distance[page] = 0
                table[:, slot] = np.minimum(next_distance, NOT_BROADCAST)
        self._distance_table = table
        return table

    # -- analytics ---------------------------------------------------------------
    def expected_delay(self, page: int) -> float:
        """Expected slots until ``page`` completes, from a random slot start.

        A page broadcast during slot ``[t, t+1)`` completes at ``t+1``; a
        request issued at a uniformly random slot *boundary* inside a gap of
        ``g`` slots waits on average ``(g + 1) / 2``, weighted by the
        probability ``g / cycle`` of landing in that gap.  Slot-boundary
        alignment matches the simulators (think times are integral); a
        uniformly random real-valued arrival would wait exactly 0.5 slots
        less.  Returns ``inf`` for non-broadcast pages.
        """
        gaps = self.spacings(page)
        if not gaps:
            return math.inf
        cycle = len(self._slots)
        return sum(g / cycle * (g + 1) / 2 for g in gaps)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Schedule(cycle={len(self._slots)}, "
                f"pages={len(self._positions)}, "
                f"empty={self.num_empty_slots})")
