"""Multi-disk broadcast program generation.

This is the schedule-generation algorithm of [Acha95a] as summarized in
Section 2.1 of the paper.  Pages are grouped onto *disks*; disk *i* spins
``rel_freq[i]`` times faster than the slowest disk.  The algorithm:

1. ``max_chunks = lcm(rel_freq)``;
2. split disk *i* into ``num_chunks(i) = max_chunks / rel_freq(i)`` chunks
   (padding the last chunks with empty slots so all chunks of a disk have
   equal length);
3. for ``j`` in ``0 .. max_chunks-1``: broadcast chunk ``j mod num_chunks(i)``
   of each disk *i* in order.

One pass of step 3's inner loop is a *minor cycle*; the whole sequence is
the *major cycle*.  The paper's Figure 1 example (pages a..g on disks of
relative speeds 4:2:1) produces the 12-slot cycle ``a b d a c e a b f a c g``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.broadcast.schedule import Schedule

__all__ = ["Disk", "DiskAssignment", "build_schedule"]

#: Sentinel broadcast for padded (empty) slots.
EMPTY_SLOT: Optional[int] = None


@dataclass(frozen=True)
class Disk:
    """One level of the broadcast hierarchy.

    Attributes:
        pages: page ids on this disk, hottest first.
        rel_freq: spin speed relative to the slowest disk (positive integer).
    """

    pages: tuple[int, ...]
    rel_freq: int

    def __post_init__(self):
        if not isinstance(self.rel_freq, int) or self.rel_freq < 1:
            raise ValueError(f"rel_freq must be a positive integer, "
                             f"got {self.rel_freq!r}")
        object.__setattr__(self, "pages", tuple(self.pages))

    @property
    def size(self) -> int:
        """Number of pages on this disk."""
        return len(self.pages)


@dataclass(frozen=True)
class DiskAssignment:
    """A complete assignment of pages to disks.

    Disks must be ordered fastest-first (non-increasing ``rel_freq``), as in
    the paper ("lower numbered disks have higher broadcast frequency"), and a
    page may appear on at most one disk.
    """

    disks: tuple[Disk, ...] = field(default_factory=tuple)

    def __post_init__(self):
        disks = tuple(self.disks)
        object.__setattr__(self, "disks", disks)
        if not disks:
            raise ValueError("assignment needs at least one disk")
        if any(d.size == 0 for d in disks):
            raise ValueError("disks must be non-empty")
        freqs = [d.rel_freq for d in disks]
        if any(a < b for a, b in zip(freqs, freqs[1:])):
            raise ValueError(f"disks must be ordered fastest-first, "
                             f"got frequencies {freqs}")
        seen: set[int] = set()
        for disk in disks:
            for page in disk.pages:
                if page in seen:
                    raise ValueError(f"page {page} assigned to multiple disks")
                seen.add(page)

    @classmethod
    def from_ranking(cls, ranked_pages: Sequence[int],
                     disk_sizes: Sequence[int],
                     rel_freqs: Sequence[int]) -> "DiskAssignment":
        """Slice a hotness ranking into consecutive disks.

        ``ranked_pages`` is hottest-first; the first ``disk_sizes[0]`` pages
        land on the fastest disk, and so on.  This is the paper's "simplest
        strategy" (before the Offset transform).
        """
        if len(disk_sizes) != len(rel_freqs):
            raise ValueError("disk_sizes and rel_freqs must align")
        if sum(disk_sizes) != len(ranked_pages):
            raise ValueError(
                f"disk sizes sum to {sum(disk_sizes)} but "
                f"{len(ranked_pages)} pages were ranked")
        disks = []
        start = 0
        for size, freq in zip(disk_sizes, rel_freqs):
            disks.append(Disk(tuple(ranked_pages[start:start + size]), freq))
            start += size
        return cls(tuple(disks))

    @property
    def num_disks(self) -> int:
        """Number of disks in the hierarchy."""
        return len(self.disks)

    @property
    def num_pages(self) -> int:
        """Total pages across all disks."""
        return sum(d.size for d in self.disks)

    @property
    def pages(self) -> tuple[int, ...]:
        """All pages, fastest disk first."""
        return tuple(p for d in self.disks for p in d.pages)

    @property
    def slowest(self) -> Disk:
        """The slowest (last) disk."""
        return self.disks[-1]

    def disk_of(self, page: int) -> int:
        """Index of the disk holding ``page`` (raises KeyError if absent)."""
        for index, disk in enumerate(self.disks):
            if page in disk.pages:
                return index
        raise KeyError(page)


def _lcm_all(values: Sequence[int]) -> int:
    result = 1
    for value in values:
        result = math.lcm(result, value)
    return result


def _split_into_chunks(pages: Sequence[int], num_chunks: int
                       ) -> list[list[Optional[int]]]:
    """Split ``pages`` into ``num_chunks`` equal chunks, padding the tail.

    Padding uses :data:`EMPTY_SLOT`, which becomes an unused broadcast slot
    exactly as in [Acha95a].
    """
    chunk_size = math.ceil(len(pages) / num_chunks)
    padded: list[Optional[int]] = list(pages)
    padded.extend([EMPTY_SLOT] * (chunk_size * num_chunks - len(pages)))
    return [padded[i * chunk_size:(i + 1) * chunk_size]
            for i in range(num_chunks)]


def build_schedule(assignment: DiskAssignment) -> Schedule:
    """Generate the major-cycle broadcast schedule for ``assignment``."""
    freqs = [disk.rel_freq for disk in assignment.disks]
    max_chunks = _lcm_all(freqs)
    chunks_per_disk = [
        _split_into_chunks(disk.pages, max_chunks // disk.rel_freq)
        for disk in assignment.disks
    ]
    slots: list[Optional[int]] = []
    for minor in range(max_chunks):
        for disk_chunks in chunks_per_disk:
            slots.extend(disk_chunks[minor % len(disk_chunks)])
    minor_cycle = len(slots) // max_chunks
    return Schedule(tuple(slots), assignment=assignment,
                    minor_cycle=minor_cycle)
