"""JSON-friendly (de)serialization of broadcast programs.

A deployment generates its program once (client profiles change slowly)
and distributes it: clients need the layout both to compute PIX values
and to run the threshold filter against the schedule.  These helpers give
programs a stable wire format:

- assignments serialize as their disks (pages + relative frequency),
- schedules serialize as the assignment plus the generated slot sequence,
  so a loaded schedule is *verbatim* — no regeneration drift even if the
  generation algorithm ever changes.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.broadcast.program import Disk, DiskAssignment
from repro.broadcast.schedule import Schedule

__all__ = [
    "assignment_to_dict",
    "assignment_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
]

#: Wire-format version; bump on breaking layout changes.
FORMAT_VERSION = 1


def assignment_to_dict(assignment: DiskAssignment) -> dict[str, Any]:
    """Serialize a disk assignment."""
    return {
        "version": FORMAT_VERSION,
        "disks": [
            {"pages": list(disk.pages), "rel_freq": disk.rel_freq}
            for disk in assignment.disks
        ],
    }


def _check_version(data: Mapping[str, Any]) -> None:
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported broadcast-program format version {version!r} "
            f"(expected {FORMAT_VERSION})")


def assignment_from_dict(data: Mapping[str, Any]) -> DiskAssignment:
    """Rebuild a disk assignment (validates via the normal constructors)."""
    _check_version(data)
    disks = tuple(
        Disk(tuple(entry["pages"]), int(entry["rel_freq"]))
        for entry in data["disks"]
    )
    return DiskAssignment(disks)


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    """Serialize a schedule (slots verbatim; None marks padding)."""
    payload: dict[str, Any] = {
        "version": FORMAT_VERSION,
        "slots": list(schedule.slots),
        "minor_cycle": schedule.minor_cycle,
    }
    if schedule.assignment is not None:
        payload["assignment"] = assignment_to_dict(schedule.assignment)
    return payload


def schedule_from_dict(data: Mapping[str, Any]) -> Schedule:
    """Rebuild a schedule exactly as serialized."""
    _check_version(data)
    assignment = None
    if data.get("assignment") is not None:
        assignment = assignment_from_dict(data["assignment"])
    slots = tuple(None if slot is None else int(slot)
                  for slot in data["slots"])
    return Schedule(slots, assignment=assignment,
                    minor_cycle=data.get("minor_cycle"))
