"""Restricted ("chopped") push schedules for Experiment 3 (Section 4.3).

The push program is made smaller by removing pages from the slowest disk
until it is empty, then from the next-slowest, and so on.  Removed pages
can only be obtained by pulling them over the backchannel.  Within a disk
the coldest pages (lowest access probability) are removed first, so the
offset-shifted hottest pages are the last to leave the broadcast.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.broadcast.program import Disk, DiskAssignment

__all__ = ["chop_assignment"]


def chop_assignment(assignment: DiskAssignment, num_pages: int,
                    probabilities: Mapping[int, float] | Sequence[float]
                    ) -> DiskAssignment:
    """Remove the ``num_pages`` coldest pages, slowest disk first.

    Args:
        assignment: the full broadcast assignment (typically offset).
        num_pages: how many pages to drop from the push schedule.
        probabilities: access probability per page id (mapping or dense
            sequence indexed by page id); decides cold-first order inside
            each disk.

    Returns:
        A new assignment.  Disks emptied entirely are removed; relative
        frequencies of the surviving disks are preserved.

    Raises:
        ValueError: if ``num_pages`` would empty the whole broadcast (the
            paper always keeps at least the fastest disk).
    """
    if num_pages < 0:
        raise ValueError("num_pages must be non-negative")
    if num_pages >= assignment.num_pages:
        raise ValueError(
            f"cannot chop {num_pages} of {assignment.num_pages} pages; "
            f"at least one page must remain on the broadcast")
    if num_pages == 0:
        return assignment

    def probability(page: int) -> float:
        """Access probability of ``page`` under either input shape."""
        if isinstance(probabilities, Mapping):
            return probabilities[page]
        return probabilities[page]

    remaining = num_pages
    new_disks: list[Disk] = []
    for disk in reversed(assignment.disks):
        if remaining >= disk.size:
            remaining -= disk.size
            continue  # the whole disk is chopped
        if remaining == 0:
            new_disks.append(disk)
            continue
        # Drop the `remaining` coldest pages of this disk, keeping the
        # survivors in their original order.
        doomed = set(sorted(disk.pages, key=probability)[:remaining])
        survivors = tuple(p for p in disk.pages if p not in doomed)
        new_disks.append(Disk(survivors, disk.rel_freq))
        remaining = 0
    new_disks.reverse()
    return DiskAssignment(tuple(new_disks))
