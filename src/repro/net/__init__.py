"""repro.net — the real asyncio serving layer.

The simulation engines measure the paper's push/pull crossover in
*simulated slots*; this package measures it on *real sockets*:

- :mod:`repro.net.protocol` — the length-prefixed frame format (PAGE
  push frames, REQUEST pull frames, HELLO/STATS control frames) shared
  by server and clients,
- :mod:`repro.net.server` — an asyncio broadcast server that wraps the
  existing :class:`~repro.server.broadcast_server.BroadcastServer`
  state machine unchanged: a slot-clock task calls ``tick()`` once per
  wall-clock slot and fans the emitted frame out to every connection
  (bounded per-connection send queues, slow consumers shed frames and
  are eventually dropped), while per-connection backchannel readers
  feed ``queue.offer()``,
- :mod:`repro.net.client` — a client-fleet load generator driving N
  concurrent connections from the same Zipf access model and cache
  policies the simulator uses, recording wall-clock request-to-page
  latency,
- :mod:`repro.net.selftest` — the loopback ``serve --self-test`` mode:
  server plus fleet in one process, swept across PullBW, emitting a
  figure-schema-compatible stats JSON and checking the wall-clock
  latency ordering against the simulator's.

The serving layer *wraps* the simulated server — it never forks the
tick semantics — so every number it produces is attributable to the
same state machine the paper figures come from.  See docs/SERVING.md.
"""

from repro.net.client import ClientFleet, FleetResult
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    Frame,
    FrameDecoder,
    FrameError,
    Hello,
    Page,
    Request,
    Stats,
    StatsRequest,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.net.selftest import SelfTestSettings, run_selftest
from repro.net.server import NetServer, NetServerSettings

__all__ = [
    "Frame",
    "FrameDecoder",
    "FrameError",
    "Hello",
    "Page",
    "Request",
    "Stats",
    "StatsRequest",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "read_frame",
    "write_frame",
    "NetServer",
    "NetServerSettings",
    "ClientFleet",
    "FleetResult",
    "SelfTestSettings",
    "run_selftest",
]
