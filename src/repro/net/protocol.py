"""The wire protocol: small length-prefixed frames.

Every frame is ``u32 length (big-endian) | u8 type | payload`` where
``length`` counts the type byte plus the payload.  Five frame types
cover the serving layer:

- :class:`Hello` (client -> server) — announces a client id after
  connecting, before any requests,
- :class:`Page` (server -> client) — one frontchannel broadcast slot
  that carried a page: the page id, the slot index it went on air, and
  the slot kind (``push`` or ``pull``).  Padding and idle slots put
  nothing on air and therefore produce no frame,
- :class:`Request` (client -> server) — a backchannel pull request for
  one page; the server presents it to the bounded request queue and,
  exactly like the paper's server, sends no acknowledgement,
- :class:`StatsRequest` (client -> server) — asks for a telemetry
  snapshot,
- :class:`Stats` (server -> client) — a JSON document with the server's
  metrics-registry snapshot.

The codec is usable without asyncio (:func:`encode_frame` and the
incremental :class:`FrameDecoder`) so the format is testable in
isolation; :func:`read_frame` / :func:`write_frame` adapt it onto
``asyncio`` streams.  Slot kinds travel as their index into
:data:`repro.obs.events.SLOT_KINDS`, the shared event vocabulary.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Any, Union

from repro.obs.events import SLOT_KINDS

__all__ = [
    "FrameError",
    "Hello",
    "Page",
    "Request",
    "StatsRequest",
    "Stats",
    "Frame",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "decode_payload",
    "FrameDecoder",
    "read_frame",
    "write_frame",
]

#: Hard ceiling on one frame's length field.  PAGE/REQUEST frames are a
#: few bytes; only STATS snapshots grow, and a megabyte of JSON is
#: already a bug, not telemetry.
MAX_FRAME_BYTES = 1 << 20

_HEADER = struct.Struct("!I")
_TYPE_HELLO = 1
_TYPE_PAGE = 2
_TYPE_REQUEST = 3
_TYPE_STATS_REQUEST = 4
_TYPE_STATS = 5

_HELLO_BODY = struct.Struct("!q")
_PAGE_BODY = struct.Struct("!qqB")
_REQUEST_BODY = struct.Struct("!q")


class FrameError(ValueError):
    """Malformed frame: bad type, bad length, or truncated payload."""


@dataclass(frozen=True)
class Hello:
    """Client greeting; ``client_id`` labels the connection in telemetry."""

    client_id: int


@dataclass(frozen=True)
class Page:
    """One broadcast slot that carried a page (push or pull)."""

    page: int
    #: Slot index at which the page went on air (the server's slot clock).
    slot: int
    #: ``"push"`` or ``"pull"`` (a :data:`~repro.obs.events.SLOT_KINDS`
    #: member whose slot kind carries a page).
    kind: str


@dataclass(frozen=True)
class Request:
    """A backchannel pull request for ``page``."""

    page: int


@dataclass(frozen=True)
class StatsRequest:
    """Ask the server for a telemetry snapshot."""


@dataclass(frozen=True)
class Stats:
    """A telemetry snapshot as a JSON-ready dict."""

    payload: dict[str, Any] = field(default_factory=dict)


Frame = Union[Hello, Page, Request, StatsRequest, Stats]


def _kind_code(kind: str) -> int:
    try:
        return SLOT_KINDS.index(kind)
    except ValueError:
        raise FrameError(f"unknown slot kind {kind!r}") from None


def encode_frame(frame: Frame) -> bytes:
    """Serialize one frame, header included."""
    if isinstance(frame, Hello):
        body = bytes([_TYPE_HELLO]) + _HELLO_BODY.pack(frame.client_id)
    elif isinstance(frame, Page):
        body = bytes([_TYPE_PAGE]) + _PAGE_BODY.pack(
            frame.page, frame.slot, _kind_code(frame.kind))
    elif isinstance(frame, Request):
        body = bytes([_TYPE_REQUEST]) + _REQUEST_BODY.pack(frame.page)
    elif isinstance(frame, StatsRequest):
        body = bytes([_TYPE_STATS_REQUEST])
    elif isinstance(frame, Stats):
        encoded = json.dumps(frame.payload, separators=(",", ":")).encode()
        body = bytes([_TYPE_STATS]) + encoded
    else:
        raise FrameError(f"not a frame: {frame!r}")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(body)} bytes exceeds "
                         f"MAX_FRAME_BYTES={MAX_FRAME_BYTES}")
    return _HEADER.pack(len(body)) + body


def decode_payload(body: bytes) -> Frame:
    """Decode one frame body (the bytes after the length header)."""
    if not body:
        raise FrameError("empty frame body")
    frame_type, payload = body[0], body[1:]
    try:
        if frame_type == _TYPE_HELLO:
            (client_id,) = _HELLO_BODY.unpack(payload)
            return Hello(client_id)
        if frame_type == _TYPE_PAGE:
            page, slot, code = _PAGE_BODY.unpack(payload)
            if code >= len(SLOT_KINDS):
                raise FrameError(f"unknown slot-kind code {code}")
            return Page(page, slot, SLOT_KINDS[code])
        if frame_type == _TYPE_REQUEST:
            (page,) = _REQUEST_BODY.unpack(payload)
            return Request(page)
        if frame_type == _TYPE_STATS_REQUEST:
            if payload:
                raise FrameError("STATS_REQUEST carries no payload")
            return StatsRequest()
        if frame_type == _TYPE_STATS:
            try:
                decoded = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise FrameError(f"bad STATS payload: {exc}") from None
            if not isinstance(decoded, dict):
                raise FrameError("STATS payload must be a JSON object")
            return Stats(decoded)
    except struct.error as exc:
        raise FrameError(f"truncated frame payload: {exc}") from None
    raise FrameError(f"unknown frame type {frame_type}")


class FrameDecoder:
    """Incremental decoder: feed arbitrary byte chunks, get whole frames.

    Keeps at most one partial frame of buffered state, so a stream can
    be decoded chunk-by-chunk regardless of how the transport split it.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[Frame]:
        """Absorb ``data`` and return every frame completed by it."""
        self._buffer.extend(data)
        frames: list[Frame] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return frames
            (length,) = _HEADER.unpack_from(self._buffer)
            if length == 0 or length > MAX_FRAME_BYTES:
                raise FrameError(f"bad frame length {length}")
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return frames
            body = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            frames.append(decode_payload(body))

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward the next (incomplete) frame."""
        return len(self._buffer)


async def read_frame(reader) -> Frame:
    """Read exactly one frame from an ``asyncio.StreamReader``.

    Raises :class:`asyncio.IncompleteReadError` on EOF mid-frame and
    :class:`FrameError` on a malformed header or payload.
    """
    header = await reader.readexactly(_HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length == 0 or length > MAX_FRAME_BYTES:
        raise FrameError(f"bad frame length {length}")
    body = await reader.readexactly(length)
    return decode_payload(body)


def write_frame(writer, frame: Frame) -> None:
    """Serialize ``frame`` onto an ``asyncio.StreamWriter`` (no drain).

    The caller decides when to await ``writer.drain()`` — the server's
    fan-out path batches many small frames per drain.
    """
    writer.write(encode_frame(frame))
