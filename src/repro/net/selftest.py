"""Loopback self-test: server + fleet in one process, checked against sim.

``repro-broadcast serve --self-test`` runs, for each PullBW in a small
sweep, a :class:`~repro.net.server.NetServer` on an ephemeral loopback
port with a :class:`~repro.net.client.ClientFleet` driving it, and a
:class:`~repro.core.fast.FastEngine` simulation of the *same*
``SystemConfig`` at the equivalent load.  It then:

- emits one figure-schema JSON (two series — the fleet's wall-clock
  p90 in slot units, and the simulator's p90 — over the PullBW grid)
  that ``repro-broadcast report`` renders like any archived figure, and
- checks that the fleet's p90 *ordering* across the PullBW grid matches
  the simulator's.  Wall-clock magnitudes wobble with host load; the
  ordering is the physics the serving layer must preserve (this is the
  paper's Figure-7-style monotonicity, observed on real sockets).

Load equivalence: a fleet of N clients with mean think time T broadcast
units offers N/T requests per unit; the simulator's virtual client at
ThinkTimeRatio t with MCThinkTime m offers t/m.  The sim point therefore
runs at ``ttr = N * m / T``.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.config import SystemConfig
from repro.experiments.base import (
    QUICK,
    FigureResult,
    FigureSeries,
    PointStats,
    Profile,
    run_replicated,
)
from repro.net.client import ClientFleet, FleetResult, FleetSettings
from repro.net.server import NetServer, NetServerSettings
from repro.obs.manifest import run_manifest
from repro.obs.metrics import MetricsRegistry

__all__ = ["SelfTestSettings", "SelfTestResult", "run_selftest"]

#: Label of the wall-clock series in the emitted figure.
FLEET_LABEL = "fleet (wall clock)"
#: Label of the simulated series.
SIM_LABEL = "simulator (fast engine)"


@dataclass(frozen=True)
class SelfTestSettings:
    """Scale knobs for the loopback self-test."""

    num_clients: int = 200
    slots: int = 2000
    slot_duration: float = 0.005
    #: Mean fleet-client think time in broadcast units.
    think_time: float = 200.0
    pull_bws: tuple[float, ...] = (0.0, 0.5, 1.0)
    seed: int = 42
    #: Fraction of the slots treated as settling (latencies excluded).
    settle_fraction: float = 0.25
    #: Simulation profile for the comparison series.
    profile: Profile = QUICK
    #: Hard wall-clock ceiling per sweep point, as a multiple of the
    #: nominal duration ``slots * slot_duration``.
    timeout_factor: float = 5.0

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ValueError("num_clients must be positive")
        if self.slots < 1:
            raise ValueError("slots must be positive")
        if not self.pull_bws:
            raise ValueError("pull_bws must be non-empty")
        if not 0.0 <= self.settle_fraction < 1.0:
            raise ValueError("settle_fraction must be within [0, 1)")

    @property
    def equivalent_ttr(self) -> float:
        """The simulator load matching the fleet's offered load."""
        return self.num_clients * 20.0 / self.think_time

    @property
    def point_timeout(self) -> float:
        return self.slots * self.slot_duration * self.timeout_factor + 10.0


@dataclass
class SelfTestResult:
    """Everything one self-test produced."""

    figure: FigureResult
    fleet_p90: list[float]
    sim_p90: list[float]
    #: Per-point raw diagnostics (fleet result dicts + server stats).
    diagnostics: list[dict[str, Any]] = field(default_factory=list)

    @property
    def ordering_ok(self) -> bool:
        """Does the fleet's p90 ordering over PullBW match the sim's?"""
        if (not self.fleet_p90 or len(self.fleet_p90) != len(self.sim_p90)
                or any(math.isnan(v) for v in self.fleet_p90)
                or any(math.isnan(v) for v in self.sim_p90)):
            return False

        def order(values: list[float]) -> list[int]:
            return sorted(range(len(values)), key=values.__getitem__)

        return order(self.fleet_p90) == order(self.sim_p90)

    @property
    def ok(self) -> bool:
        return self.ordering_ok

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "ordering_ok": self.ordering_ok,
            "fleet_p90": self.fleet_p90,
            "sim_p90": self.sim_p90,
            "figure": self.figure.to_dict(),
            "diagnostics": self.diagnostics,
        }


async def _run_point(config: SystemConfig, settings: SelfTestSettings,
                     pull_bw: float) -> tuple[FleetResult, dict[str, Any]]:
    """One loopback run: server + fleet until ``slots`` slots elapsed."""
    point_config = config.with_(server__pull_bw=pull_bw,
                                run__seed=settings.seed)
    registry = MetricsRegistry()
    server = NetServer(
        point_config,
        NetServerSettings(slot_duration=settings.slot_duration,
                          max_slots=settings.slots),
        registry=registry)
    await server.start()
    fleet = ClientFleet(
        point_config, server.settings.host, server.port,
        settings.slot_duration,
        FleetSettings(
            num_clients=settings.num_clients,
            think_time=settings.think_time,
            settle_slots=int(settings.slots * settings.settle_fraction)),
        seed=settings.seed,
        registry=registry)
    try:
        await fleet.start()
        await asyncio.wait_for(server.wait_finished(),
                               timeout=settings.point_timeout)
        # Grace for the last slots' frames to cross the loopback.
        await asyncio.sleep(10 * settings.slot_duration)
        result = await fleet.stop()
        stats = server.stats_snapshot()
    finally:
        await server.stop()
    return result, stats


def _fleet_point(result: FleetResult, stats: dict[str, Any]) -> PointStats:
    quantiles = result.quantiles() or {}
    drop_rate = stats["server"]["queue"]["drop_rate"]
    return PointStats(
        mean=result.mean_latency,
        stddev=0.0,
        replicates=1,
        drop_rate=drop_rate if drop_rate is not None else math.nan,
        p50=quantiles.get("p50"),
        p90=quantiles.get("p90"),
        p99=quantiles.get("p99"),
    )


def run_selftest(config: Optional[SystemConfig] = None,
                 settings: Optional[SelfTestSettings] = None,
                 ) -> SelfTestResult:
    """Run the full loopback sweep and the matching simulations."""
    if config is None:
        config = SystemConfig()
    if settings is None:
        settings = SelfTestSettings()
    ttr = settings.equivalent_ttr
    pull_bws = list(settings.pull_bws)

    fleet_points: list[PointStats] = []
    diagnostics: list[dict[str, Any]] = []
    for pull_bw in pull_bws:
        result, stats = asyncio.run(_run_point(config, settings, pull_bw))
        fleet_points.append(_fleet_point(result, stats))
        diagnostics.append({
            "pull_bw": pull_bw,
            "fleet": result.to_dict(),
            "server_stats": stats,
        })

    sim_points: list[PointStats] = []
    for pull_bw in pull_bws:
        sim_config = config.with_(server__pull_bw=pull_bw,
                                  client__think_time_ratio=ttr)
        sim_points.append(run_replicated(sim_config, settings.profile))

    manifest = run_manifest(config.with_(run__seed=settings.seed),
                            engine="net")
    manifest["selftest"] = {
        "num_clients": settings.num_clients,
        "slots": settings.slots,
        "slot_duration": settings.slot_duration,
        "think_time": settings.think_time,
        "equivalent_ttr": ttr,
    }
    figure = FigureResult(
        figure_id="net_selftest",
        title="Serving-layer self-test: wall-clock vs simulated p90",
        x_label="PullBW",
        y_label="Response time p90 (broadcast units)",
        series=[
            FigureSeries(label=FLEET_LABEL, x=pull_bws, points=fleet_points),
            FigureSeries(label=SIM_LABEL, x=pull_bws, points=sim_points),
        ],
        notes=[
            f"fleet: {settings.num_clients} clients over loopback TCP, "
            f"{settings.slots} slots of {settings.slot_duration}s",
            f"simulator: fast engine at ThinkTimeRatio {ttr:g} "
            f"(equivalent offered load)",
        ],
        manifest=manifest,
    )

    def p90s(points: list[PointStats]) -> list[float]:
        return [p.p90 if p.p90 is not None else math.nan for p in points]

    return SelfTestResult(
        figure=figure,
        fleet_p90=p90s(fleet_points),
        sim_p90=p90s(sim_points),
        diagnostics=diagnostics,
    )
