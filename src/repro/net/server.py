"""The asyncio broadcast server.

The server *wraps* the simulated
:class:`~repro.server.broadcast_server.BroadcastServer` — the same
object, built by the same :func:`~repro.core.build.build_system`, with
the exact tick semantics the engines validate — and gives it a network
face:

- a **slot clock** task calls ``server.tick()`` once per wall-clock
  slot (``slot_duration`` seconds, scheduled against the event loop's
  monotonic clock so processing delays never accumulate as drift) and
  fans any page-carrying slot out to every connection as a PAGE frame;
- per-connection **bounded send queues** decouple the clock from slow
  sockets: a full queue sheds the frame for that client only (counted
  in telemetry), and a client that keeps shedding — it stopped reading
  — is disconnected.  The slot clock itself never blocks on a socket;
- per-connection **backchannel readers** translate REQUEST frames into
  ``server.request()`` — i.e. :meth:`BoundedRequestQueue.offer` — with
  the paper's no-feedback semantics, and answer STATS frames with a
  metrics-registry snapshot.

Telemetry flows through one :class:`~repro.obs.metrics.MetricsRegistry`
shared with the sim-side export path (see
:mod:`repro.obs.server_metrics`), so a live STATS snapshot and a
simulated run report through identical instrument names.

This module measures real time by design; lint rule REP001 is allowed
for ``repro/net`` via the ``[tool.repro-lint]`` per-path configuration
instead of per-line pragmas.
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import dataclass
from typing import Optional

from repro.core.build import build_system
from repro.core.config import SystemConfig
from repro.net.protocol import (
    FrameError,
    Hello,
    Page,
    Request,
    Stats,
    StatsRequest,
    encode_frame,
    read_frame,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.server_metrics import bind_server_metrics

__all__ = ["NetServer", "NetServerSettings"]


@dataclass(frozen=True)
class NetServerSettings:
    """Network-side knobs (everything simulated lives in SystemConfig)."""

    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (read it back via ``port``).
    port: int = 0
    #: Wall-clock seconds per broadcast slot.
    slot_duration: float = 0.005
    #: Per-connection send-queue capacity in frames.  Roughly the number
    #: of slots a client may fall behind before frames are shed.
    send_queue_frames: int = 256
    #: Consecutive shed frames after which a client is declared dead and
    #: disconnected (it has stopped reading for ``send_queue_frames +
    #: drop_after`` slots by then).
    drop_after: int = 64
    #: Stop the slot clock after this many slots (None = run forever).
    max_slots: Optional[int] = None

    def __post_init__(self) -> None:
        if self.slot_duration <= 0:
            raise ValueError("slot_duration must be positive")
        if self.send_queue_frames < 1:
            raise ValueError("send_queue_frames must be positive")
        if self.drop_after < 1:
            raise ValueError("drop_after must be positive")
        if self.max_slots is not None and self.max_slots < 1:
            raise ValueError("max_slots must be positive when set")


class _Connection:
    """One client connection's server-side state."""

    __slots__ = ("writer", "queue", "sender", "client_id",
                 "shed_total", "shed_consecutive")

    def __init__(self, writer: asyncio.StreamWriter, capacity: int):
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=capacity)
        self.sender: Optional[asyncio.Task] = None
        self.client_id: Optional[int] = None
        self.shed_total = 0
        self.shed_consecutive = 0


class NetServer:
    """Serve one configured broadcast system over TCP.

    Usage::

        server = NetServer(config, NetServerSettings(max_slots=2000))
        await server.start()
        ...
        await server.wait_finished()   # max_slots reached
        await server.stop()
    """

    def __init__(self, config: SystemConfig,
                 settings: Optional[NetServerSettings] = None,
                 registry: Optional[MetricsRegistry] = None):
        self.config = config
        self.settings = settings if settings is not None else (
            NetServerSettings())
        self.registry = registry if registry is not None else MetricsRegistry()
        #: The complete simulated system; only ``state.server`` (the
        #: per-slot state machine) is driven — the sim-side MC/VC models
        #: are replaced by real connections.
        self.state = build_system(config)
        self.server = self.state.server
        self.adapter = bind_server_metrics(self.registry, self.server)
        metrics = self.registry
        self._connected = metrics.gauge(
            "net_connected_clients", "currently connected clients")
        self._connections_total = metrics.counter(
            "net_connections_total", "connections ever accepted")
        self._frames_sent = metrics.counter(
            "net_frames_sent_total", "PAGE frames enqueued to clients")
        self._frames_shed = metrics.counter(
            "net_frames_shed_total",
            "PAGE frames dropped because a client's send queue was full")
        self._clients_dropped = metrics.counter(
            "net_clients_dropped_total",
            "clients disconnected for not reading (slow consumers)")
        self._requests_received = metrics.counter(
            "net_requests_received_total", "REQUEST frames received")
        self._stats_served = metrics.counter(
            "net_stats_requests_total", "STATS snapshots served")
        self._lagging_slots = metrics.counter(
            "net_lagging_slots_total",
            "slots whose tick started after their wall-clock deadline")
        self.slot = 0
        self._connections: dict[int, _Connection] = {}
        self._next_conn_key = 0
        self._tcp_server: Optional[asyncio.base_events.Server] = None
        self._clock_task: Optional[asyncio.Task] = None
        self._finished = asyncio.Event()

    # -- lifecycle -----------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._tcp_server is None:
            raise RuntimeError("server is not started")
        return self._tcp_server.sockets[0].getsockname()[1]

    @property
    def connected_clients(self) -> int:
        return len(self._connections)

    async def start(self) -> None:
        """Bind the socket and start the slot clock."""
        if self._tcp_server is not None:
            raise RuntimeError("server already started")
        self._tcp_server = await asyncio.start_server(
            self._handle_connection, self.settings.host, self.settings.port)
        self._clock_task = asyncio.create_task(
            self._slot_clock(), name="repro-net-slot-clock")

    async def wait_finished(self) -> None:
        """Block until the slot clock has emitted ``max_slots`` slots."""
        await self._finished.wait()

    async def stop(self) -> None:
        """Stop the clock, drop every connection, close the socket."""
        if self._clock_task is not None:
            self._clock_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._clock_task
            self._clock_task = None
        for key in list(self._connections):
            self._close_connection(key)
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        # Let cancelled sender tasks and closed transports unwind.
        await asyncio.sleep(0)

    # -- telemetry -----------------------------------------------------------
    def stats_snapshot(self) -> dict:
        """The STATS frame payload: registry + raw server accounting."""
        self.adapter.sync()
        return {
            "slot": self.slot,
            "slot_duration": self.settings.slot_duration,
            "connected_clients": len(self._connections),
            "server": self.server.stats_snapshot(),
            "metrics": self.registry.snapshot(),
        }

    # -- the slot clock ------------------------------------------------------
    async def _slot_clock(self) -> None:
        settings = self.settings
        duration = settings.slot_duration
        max_slots = settings.max_slots
        loop = asyncio.get_running_loop()
        epoch = loop.time()
        while max_slots is None or self.slot < max_slots:
            page, kind = self.server.tick()
            if kind.carries_page:
                assert page is not None
                self._broadcast(encode_frame(Page(page, self.slot,
                                                  kind.value)))
            self.slot += 1
            target = epoch + self.slot * duration
            delay = target - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            else:
                self._lagging_slots.inc()
                # Yield so readers/senders run even when the clock lags.
                await asyncio.sleep(0)
        self._finished.set()

    def _broadcast(self, frame: bytes) -> None:
        """Fan one encoded frame out to every connection, never blocking."""
        drop_after = self.settings.drop_after
        dead: list[int] = []
        for key, conn in self._connections.items():
            try:
                conn.queue.put_nowait(frame)
            except asyncio.QueueFull:
                conn.shed_total += 1
                conn.shed_consecutive += 1
                self._frames_shed.inc()
                if conn.shed_consecutive >= drop_after:
                    dead.append(key)
            else:
                conn.shed_consecutive = 0
                self._frames_sent.inc()
        for key in dead:
            self._clients_dropped.inc()
            self._close_connection(key)

    # -- connections ---------------------------------------------------------
    def _close_connection(self, key: int) -> None:
        conn = self._connections.pop(key, None)
        if conn is None:
            return
        self._connected.dec()
        if conn.sender is not None:
            conn.sender.cancel()
        with contextlib.suppress(Exception):
            conn.writer.close()

    async def _sender(self, conn: _Connection) -> None:
        """Drain one connection's send queue onto its socket.

        Frames already queued are written in one batch per drain, so a
        burst of slots costs one syscall-ish flush, not one per frame.
        """
        writer = conn.writer
        queue = conn.queue
        try:
            while True:
                writer.write(await queue.get())
                while True:
                    try:
                        writer.write(queue.get_nowait())
                    except asyncio.QueueEmpty:
                        break
                await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            return

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        key = self._next_conn_key
        self._next_conn_key += 1
        conn = _Connection(writer, self.settings.send_queue_frames)
        conn.sender = asyncio.create_task(self._sender(conn))
        self._connections[key] = conn
        self._connections_total.inc()
        self._connected.inc()
        server = self.server
        try:
            while True:
                frame = await read_frame(reader)
                if isinstance(frame, Request):
                    # The paper's no-feedback backchannel: present the
                    # request to the bounded queue and say nothing.
                    server.request(frame.page)
                    self._requests_received.inc()
                elif isinstance(frame, Hello):
                    conn.client_id = frame.client_id
                elif isinstance(frame, StatsRequest):
                    payload = encode_frame(Stats(self.stats_snapshot()))
                    with contextlib.suppress(asyncio.QueueFull):
                        conn.queue.put_nowait(payload)
                        self._stats_served.inc()
                # PAGE / STATS from a client are ignored (harmless).
        except (asyncio.IncompleteReadError, ConnectionError, OSError,
                FrameError):
            pass
        finally:
            self._close_connection(key)
