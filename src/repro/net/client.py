"""The client-fleet load generator.

Drives N concurrent TCP connections against a
:class:`~repro.net.server.NetServer` using the *same* workload model
the simulator uses: per-client Zipf access draws
(:mod:`repro.workload.zipf`), per-client caches with the paper's
replacement policies (PIX, or P for Pure-Pull), and exponential think
times (the virtual client's Poisson model — a fixed think time would
phase-lock the whole fleet on the wall clock).  Each client:

1. draws a page; on a cache hit it just thinks again;
2. on a miss it records the wall-clock instant, sends a REQUEST frame
   (when the algorithm has a backchannel), and waits;
3. its reader task snoops *every* PAGE frame on the frontchannel —
   push or pull, requested by anyone — and completes the wait when the
   awaited page goes by, exactly like the paper's snooping clients;
4. the request-to-page latency lands in the fleet's telemetry, and the
   page is inserted into the client's cache.

Latencies are measured in seconds but reported in **slot units**,
divided by the *effective* slot duration observed from PAGE-frame slot
indices and arrival times — so a loaded host that runs the slot clock
slower than nominal does not inflate the reported latencies.

Determinism note: every client's RNG is spawned from one explicit
``numpy.random.SeedSequence(seed)``; the wall-clock side (think-time
sleeps, socket scheduling) is inherently nondeterministic, which is the
point of the serving layer.  REP001 is allowed for ``repro/net`` via
the per-path lint configuration.
"""

from __future__ import annotations

import asyncio
import contextlib
import math
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cache.base import Cache
from repro.cache.values import top_valued_pages
from repro.core.build import _make_policy, build_push_program
from repro.core.config import SystemConfig
from repro.net.protocol import (
    FrameDecoder,
    FrameError,
    Hello,
    Page,
    Request,
    Stats,
    StatsRequest,
    write_frame,
)
from repro.obs.latency import log_buckets
from repro.obs.metrics import MetricsRegistry
from repro.workload.zipf import ZipfSampler, zipf_probabilities

__all__ = ["ClientFleet", "FleetSettings", "FleetResult"]

#: Bucket bounds (seconds) for the fleet's live latency histogram.
_SECONDS_BUCKETS = log_buckets(1e-4, 1e3)

#: Read-chunk size for the per-client frame decoder.
_READ_CHUNK = 1 << 16


@dataclass(frozen=True)
class FleetSettings:
    """Load-generator knobs."""

    #: Number of concurrent client connections.
    num_clients: int = 200
    #: Mean think time between a client's accesses, in broadcast units
    #: (converted to seconds via the slot duration).
    think_time: float = 200.0
    #: Per-client cache capacity (None = the config's CacheSize).
    cache_size: Optional[int] = None
    #: Pre-fill each cache with its top-valued pages, modelling the
    #: steady state the simulator reaches after its warm-up phase.
    warm_caches: bool = True
    #: Latencies for requests issued before this server slot are
    #: settling noise and excluded from the measured aggregates.
    settle_slots: int = 0

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ValueError("num_clients must be positive")
        if self.think_time <= 0:
            raise ValueError("think_time must be positive")
        if self.settle_slots < 0:
            raise ValueError("settle_slots must be non-negative")


@dataclass
class FleetResult:
    """What the fleet observed, aggregated over all clients."""

    #: Measured request-to-page latencies in slot units.
    latencies_slots: list[float]
    #: All completed miss latencies (slot units), settling included.
    all_latencies_slots: list[float]
    accesses: int
    hits: int
    misses: int
    requests_sent: int
    pages_seen: int
    #: Misses still waiting for their page when the fleet stopped.
    censored: int
    #: Wall-clock seconds one broadcast slot actually took (fitted from
    #: observed PAGE frames; NaN when fewer than two slots were seen).
    effective_slot_duration: float
    first_slot: Optional[int] = None
    last_slot: Optional[int] = None
    #: Server STATS snapshot fetched at shutdown (when requested).
    server_stats: Optional[dict] = None

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else math.nan

    def quantiles(self) -> Optional[dict[str, float]]:
        """Exact p50/p90/p99 of the measured latencies (slot units)."""
        marks = sorted(self.latencies_slots)
        if not marks:
            return None

        def rank(q: float) -> float:
            return marks[min(len(marks) - 1, int(q * len(marks)))]

        return {"p50": rank(0.50), "p90": rank(0.90), "p99": rank(0.99)}

    @property
    def mean_latency(self) -> float:
        marks = self.latencies_slots
        return sum(marks) / len(marks) if marks else math.nan

    def to_dict(self) -> dict:
        quantiles = self.quantiles()
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "requests_sent": self.requests_sent,
            "pages_seen": self.pages_seen,
            "censored": self.censored,
            "measured_latencies": len(self.latencies_slots),
            "mean_latency_slots": self.mean_latency,
            "quantiles_slots": quantiles,
            "effective_slot_duration": self.effective_slot_duration,
            "first_slot": self.first_slot,
            "last_slot": self.last_slot,
            "server_stats": self.server_stats,
        }


class _FleetClient:
    """One connection's client-side state."""

    __slots__ = ("index", "cache", "sampler", "rng", "reader", "writer",
                 "pending_page", "pending", "reader_task", "behavior_task",
                 "last_stats")

    def __init__(self, index: int, cache: Cache, sampler: ZipfSampler,
                 rng: np.random.Generator):
        self.index = index
        self.cache = cache
        self.sampler = sampler
        self.rng = rng
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.pending_page: Optional[int] = None
        self.pending: Optional[asyncio.Future] = None
        self.reader_task: Optional[asyncio.Task] = None
        self.behavior_task: Optional[asyncio.Task] = None
        self.last_stats: Optional[dict] = None


class ClientFleet:
    """N concurrent snooping clients driving one broadcast server."""

    def __init__(self, config: SystemConfig, host: str, port: int,
                 slot_duration: float,
                 settings: Optional[FleetSettings] = None,
                 seed: int = 0,
                 registry: Optional[MetricsRegistry] = None):
        if slot_duration <= 0:
            raise ValueError("slot_duration must be positive")
        self.config = config
        self.host = host
        self.port = port
        self.slot_duration = slot_duration
        settings = settings if settings is not None else FleetSettings()
        self.settings = settings
        self.registry = registry if registry is not None else MetricsRegistry()
        metrics = self.registry
        self._m_connected = metrics.gauge(
            "fleet_connected_clients", "currently connected fleet clients")
        self._m_accesses = metrics.counter(
            "fleet_accesses_total", "page accesses issued by the fleet")
        self._m_hits = metrics.counter(
            "fleet_hits_total", "accesses satisfied by a client cache")
        self._m_misses = metrics.counter(
            "fleet_misses_total", "accesses that went to the broadcast")
        self._m_requests = metrics.counter(
            "fleet_requests_sent_total", "REQUEST frames sent")
        self._m_pages = metrics.counter(
            "fleet_pages_seen_total", "PAGE frames snooped")
        self._m_latency = metrics.histogram(
            "fleet_latency_seconds", "request-to-page wall-clock latency",
            buckets=_SECONDS_BUCKETS)

        # The same workload construction the simulator's build uses.
        probabilities = zipf_probabilities(config.server.db_size,
                                           config.client.zipf_theta)
        schedule = build_push_program(config, probabilities)
        frequencies = schedule.frequencies() if schedule is not None else None
        metric = config.algorithm.cache_metric
        cache_size = (settings.cache_size if settings.cache_size is not None
                      else config.client.cache_size)
        warm_pages = (top_valued_pages(probabilities, frequencies,
                                       cache_size, metric)
                      if settings.warm_caches else frozenset())
        self._uses_backchannel = config.algorithm.uses_backchannel

        seeds = np.random.SeedSequence(seed).spawn(settings.num_clients)
        self._clients: list[_FleetClient] = []
        for index in range(settings.num_clients):
            rng = np.random.default_rng(seeds[index])
            # The same policy factory the simulator's build uses
            # (respects ClientConfig.cache_policy, incl. "auto").
            policy = _make_policy(config, probabilities, frequencies, metric)
            cache = Cache(cache_size, policy)
            for page in sorted(warm_pages):
                cache.insert(page, 0.0)
            self._clients.append(_FleetClient(
                index, cache, ZipfSampler(probabilities, rng), rng))

        # Shared observation state.
        self.last_seen_slot = -1
        self._first_seen: Optional[tuple[int, float]] = None
        self._last_seen: Optional[tuple[int, float]] = None
        self._latencies: list[tuple[float, bool]] = []  # (seconds, measured)
        self._accesses = 0
        self._hits = 0
        self._misses = 0
        self._requests_sent = 0
        self._pages_seen = 0
        self._slot_waiters: list[tuple[int, asyncio.Future]] = []
        self._started = False

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        """Connect every client and start its reader + behavior tasks."""
        if self._started:
            raise RuntimeError("fleet already started")
        self._started = True
        await asyncio.gather(*(self._connect(c) for c in self._clients))
        for client in self._clients:
            client.reader_task = asyncio.create_task(self._read_loop(client))
            client.behavior_task = asyncio.create_task(
                self._behavior_loop(client))

    async def _connect(self, client: _FleetClient) -> None:
        client.reader, client.writer = await asyncio.open_connection(
            self.host, self.port)
        write_frame(client.writer, Hello(client.index))
        await client.writer.drain()
        self._m_connected.inc()

    async def wait_for_slot(self, slot: int, timeout: float) -> bool:
        """Wait until a PAGE frame with index >= ``slot`` was snooped.

        Returns False when ``timeout`` (seconds) elapsed first.
        """
        if self.last_seen_slot >= slot:
            return True
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._slot_waiters.append((slot, future))
        try:
            await asyncio.wait_for(future, timeout)
            return True
        except asyncio.TimeoutError:
            return False

    async def stop(self, fetch_stats: bool = False) -> FleetResult:
        """Cancel everything, close connections, aggregate the results."""
        server_stats: Optional[dict] = None
        if fetch_stats and self._clients:
            server_stats = await self._fetch_stats(self._clients[0])
        # Count pending misses before cancelling: Task.cancel() cancels
        # the awaited future synchronously, which would read as "done".
        censored = sum(
            1 for client in self._clients
            if client.pending is not None and not client.pending.done())
        for client in self._clients:
            if client.behavior_task is not None:
                client.behavior_task.cancel()
        for client in self._clients:
            if client.reader_task is not None:
                client.reader_task.cancel()
        tasks = [t for c in self._clients
                 for t in (c.behavior_task, c.reader_task) if t is not None]
        await asyncio.gather(*tasks, return_exceptions=True)
        for client in self._clients:
            if client.writer is not None:
                with contextlib.suppress(Exception):
                    client.writer.close()
        self._m_connected.set(0)
        return self._aggregate(censored, server_stats)

    async def fetch_stats(self, timeout: float = 5.0) -> Optional[dict]:
        """Ask the server for a STATS snapshot mid-run.

        Uses the first client that still has a live connection; None
        when the whole fleet is disconnected or the server does not
        answer within ``timeout``.  The payload is the server's
        :meth:`~repro.net.server.NetServer.stats_snapshot` shape —
        feed it to :func:`repro.obs.dashboard.render_stats_frame` for a
        live view (``loadgen --watch`` does exactly that).
        """
        for client in self._clients:
            if client.writer is not None:
                return await self._fetch_stats(client, timeout)
        return None

    async def _fetch_stats(self, client: _FleetClient,
                           timeout: float = 5.0) -> Optional[dict]:
        """Ask the server for a STATS snapshot through one client."""
        if client.writer is None:
            return None
        client.last_stats = None
        try:
            write_frame(client.writer, StatsRequest())
            await client.writer.drain()
        except (ConnectionError, OSError):
            return None
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while client.last_stats is None and loop.time() < deadline:
            await asyncio.sleep(0.01)
        return client.last_stats

    def _aggregate(self, censored: int,
                   server_stats: Optional[dict]) -> FleetResult:
        effective = math.nan
        if (self._first_seen is not None and self._last_seen is not None
                and self._last_seen[0] > self._first_seen[0]):
            effective = ((self._last_seen[1] - self._first_seen[1])
                         / (self._last_seen[0] - self._first_seen[0]))
        scale = effective if effective and not math.isnan(effective) else (
            self.slot_duration)
        measured = [seconds / scale
                    for seconds, is_measured in self._latencies if is_measured]
        everything = [seconds / scale for seconds, _ in self._latencies]
        return FleetResult(
            latencies_slots=measured,
            all_latencies_slots=everything,
            accesses=self._accesses,
            hits=self._hits,
            misses=self._misses,
            requests_sent=self._requests_sent,
            pages_seen=self._pages_seen,
            censored=censored,
            effective_slot_duration=effective,
            first_slot=(self._first_seen[0] if self._first_seen else None),
            last_slot=(self._last_seen[0] if self._last_seen else None),
            server_stats=server_stats,
        )

    # -- per-client tasks ----------------------------------------------------
    def _note_slot(self, slot: int) -> None:
        now = time.monotonic()
        if self._first_seen is None:
            self._first_seen = (slot, now)
        self._last_seen = (slot, now)
        if slot > self.last_seen_slot:
            self.last_seen_slot = slot
            if self._slot_waiters:
                still_waiting = []
                for target, future in self._slot_waiters:
                    if slot >= target:
                        if not future.done():
                            future.set_result(slot)
                    else:
                        still_waiting.append((target, future))
                self._slot_waiters = still_waiting

    async def _read_loop(self, client: _FleetClient) -> None:
        """Snoop the frontchannel: every PAGE frame, from any request."""
        assert client.reader is not None
        decoder = FrameDecoder()
        try:
            while True:
                data = await client.reader.read(_READ_CHUNK)
                if not data:
                    return
                for frame in decoder.feed(data):
                    if isinstance(frame, Page):
                        self._pages_seen += 1
                        self._m_pages.inc()
                        self._note_slot(frame.slot)
                        if (client.pending_page == frame.page
                                and client.pending is not None
                                and not client.pending.done()):
                            client.pending.set_result(frame.slot)
                    elif isinstance(frame, Stats):
                        client.last_stats = frame.payload
        except (ConnectionError, OSError, FrameError,
                asyncio.CancelledError):
            return

    async def _behavior_loop(self, client: _FleetClient) -> None:
        """The access/think loop, mirroring the measured client's."""
        settings = self.settings
        think_seconds = settings.think_time * self.slot_duration
        rng = client.rng
        cache = client.cache
        loop = asyncio.get_running_loop()
        try:
            # Random initial phase: without it all clients fire at once.
            await asyncio.sleep(float(rng.uniform(0.0, think_seconds)))
            while True:
                page = int(client.sampler.sample_one())
                self._accesses += 1
                self._m_accesses.inc()
                if cache.access(page, float(self.last_seen_slot)):
                    self._hits += 1
                    self._m_hits.inc()
                else:
                    self._misses += 1
                    self._m_misses.inc()
                    issued_slot = self.last_seen_slot
                    started = time.monotonic()
                    future: asyncio.Future = loop.create_future()
                    client.pending_page = page
                    client.pending = future
                    if self._uses_backchannel and client.writer is not None:
                        write_frame(client.writer, Request(page))
                        await client.writer.drain()
                        self._requests_sent += 1
                        self._m_requests.inc()
                    await future
                    seconds = time.monotonic() - started
                    client.pending_page = None
                    client.pending = None
                    measured = issued_slot >= settings.settle_slots
                    self._latencies.append((seconds, measured))
                    self._m_latency.observe(seconds)
                    cache.insert(page, float(self.last_seen_slot))
                await asyncio.sleep(float(rng.exponential(think_seconds)))
        except (ConnectionError, OSError, asyncio.CancelledError):
            return
