"""repro — Balancing Push and Pull for Data Broadcast.

A from-scratch reproduction of Acharya, Franklin & Zdonik's SIGMOD 1997
simulation study of integrating a pull backchannel with the Broadcast
Disks push paradigm.

Quickstart::

    from repro import Algorithm, SystemConfig, simulate

    config = SystemConfig(algorithm=Algorithm.IPP).with_(
        client__think_time_ratio=50, server__pull_bw=0.5)
    result = simulate(config)
    print(result.response_miss.mean, "broadcast units")

See :mod:`repro.experiments` for the paper's figure sweeps and the
``repro-broadcast`` CLI for running them from a shell.
"""

from repro.core import (
    Algorithm,
    ClientConfig,
    FastEngine,
    PAPER_SETTINGS,
    ReferenceEngine,
    RunConfig,
    RunResult,
    ServerConfig,
    SystemConfig,
    build_system,
    simulate,
)
from repro.core.fast import simulate_warmup
from repro.tuning import TuningSpec, recommend

__version__ = "1.0.0"

__all__ = [
    "Algorithm",
    "ClientConfig",
    "ServerConfig",
    "RunConfig",
    "SystemConfig",
    "PAPER_SETTINGS",
    "RunResult",
    "FastEngine",
    "ReferenceEngine",
    "build_system",
    "simulate",
    "simulate_warmup",
    "TuningSpec",
    "recommend",
    "__version__",
]
