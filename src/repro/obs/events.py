"""The shared event-name registry: every cross-engine vocabulary in one place.

Trace records, metrics, and run results are stringly-typed at their
serialization boundary (JSONL traces, figure JSON, metric names), and the
reference and fast engines must speak *exactly* the same vocabulary or
`repro.obs.compare` and downstream consumers silently diverge.  This module
is the single source of truth for those vocabularies:

- :data:`SLOT_KINDS` — what a broadcast slot carried; mirrors
  :class:`repro.server.broadcast_server.SlotKind` (the enum cannot import
  this module without an obs -> core -> server cycle, so the two are kept
  in sync by the ``REP005`` lint rule instead — see
  ``docs/STATIC_ANALYSIS.md``),
- :data:`OFFER_OUTCOMES` — what the server queue did with a request;
  mirrors :class:`repro.server.queue.Offer` (same REP005 discipline),
- :data:`SERVED_KINDS` — what satisfied a measured access
  (:attr:`repro.obs.requests.RequestRecord.served_kind`),
- :data:`ENGINE_NAMES` — engine identifiers stamped into run manifests,
- :data:`TRACER_HOOKS` — the observer methods an engine may invoke on a
  slot / request tracer; the ``REP006`` rule requires both engines to
  drive the identical hook set,
- :data:`SCHEDULER_DISCIPLINES` — selectable pull-queue disciplines;
  mirrors :data:`repro.server.schedulers.DISCIPLINES` (same REP005
  no-import sync discipline as the enums) and is the vocabulary for the
  ``discipline`` field wherever it crosses a serialization boundary
  (config JSON, queue snapshots, figure labels),
- :data:`SCHEDULER_DECISIONS` — the scheduler decision counters the
  queue snapshot carries and the metrics registry mirrors as
  ``<prefix>_sched_<name>_total`` instruments.

Adding a new event name means adding it here first; the lint suite fails
any engine or sink that invents a name on the side.
"""

from __future__ import annotations

__all__ = [
    "SLOT_KINDS",
    "OFFER_OUTCOMES",
    "SERVED_KINDS",
    "ENGINE_NAMES",
    "TRACER_HOOKS",
    "SCHEDULER_DISCIPLINES",
    "SCHEDULER_DECISIONS",
]

#: What a broadcast slot carried (SlotKind enum values, in enum order).
SLOT_KINDS: tuple[str, ...] = ("push", "pull", "padding", "idle")

#: What the bounded server queue did with an offered request (Offer values).
OFFER_OUTCOMES: tuple[str, ...] = ("enqueued", "duplicate", "dropped")

#: What satisfied a measured-client access (RequestRecord.served_kind).
SERVED_KINDS: tuple[str, ...] = ("cache", "push", "pull")

#: Engine identifiers as stamped into run-provenance manifests.
ENGINE_NAMES: tuple[str, ...] = ("fast", "reference")

#: Observer methods an engine may call on the slot / request tracers.
#: Both engines must reference the same subset (lint rule REP006).
TRACER_HOOKS: tuple[str, ...] = (
    "on_access",
    "on_hit",
    "on_miss",
    "on_miss_predict",
    "on_pull",
    "on_queue_offer",
    "on_air",
    "on_served",
    "on_slot",
    "on_mc_request",
    "on_vc_request",
)

#: Pull-queue scheduling disciplines (``SchedulerConfig.discipline``
#: values; mirrors ``repro.server.schedulers.DISCIPLINES``, REP005).
SCHEDULER_DISCIPLINES: tuple[str, ...] = ("fifo", "rxw", "lwf")

#: Scheduler decision counters mirrored into the metrics registry
#: (``<prefix>_sched_<name>_total``): pull services granted, and those
#: that did not take the FIFO head.
SCHEDULER_DECISIONS: tuple[str, ...] = ("pops", "reordered")
