"""Log-bucketed streaming latency distributions.

The paper reports client response time as a mean, but means hide exactly
the per-user tail behaviour that distinguishes the algorithms (Robert &
Schabanel's fairness critique, PAPERS.md): a Pure-Pull client at high
load sees a few enormous waits, an IPP client many moderate ones, and the
two can share a mean.  :class:`LatencyHistogram` keeps a log-spaced
bucket histogram next to the Welford summary its base class already
maintains, so a run can report p50/p90/p99 response-time quantiles in
O(buckets) memory regardless of run length.

Unlike the base :class:`~repro.obs.metrics.Histogram` (whose ``quantile``
returns a bucket upper bound), quantiles here interpolate linearly inside
the owning bucket and clamp to the observed min/max, which keeps small
traces from quantizing to bucket edges.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.obs.metrics import Histogram

__all__ = ["LATENCY_BUCKETS", "LatencyHistogram", "log_buckets"]


#: Relative slack for decade-ladder bound comparisons: a rung computed a
#: few ulps off a round endpoint still belongs to the ladder.
_REL_TOL = 1e-9


def log_buckets(low: float = 1.0, high: float = 1e5) -> tuple[float, ...]:
    """1-2-5 decade ladder of bucket upper bounds covering [low, high].

    The 1-2-5 pattern keeps roughly three buckets per decade (a ~2.2x
    relative resolution) while every bound stays a round number, which
    matters for the terminal tables the ``report`` command prints.

    Each rung is recomputed from its decade exponent rather than a
    running ``decade *= 10.0`` product (whose rounding error compounds
    across decades, yielding rungs like ``4.9999999999999996e-06``);
    negative decades divide by the exactly-representable ``10.0 ** -e``
    so sub-unit rungs are the correctly-rounded doubles of their decimal
    values.  Endpoint membership uses a relative tolerance with
    off-by-ulps rungs snapped onto ``low`` / ``high``, so the ladder
    never silently loses its boundary rungs to float drift.
    """
    if low <= 0 or high <= low:
        raise ValueError("need 0 < low < high")

    def rung(mantissa: float, exponent: int) -> float:
        if exponent >= 0:
            return mantissa * 10.0 ** exponent
        return mantissa / 10.0 ** -exponent

    bounds: list[float] = []
    exponent = math.floor(math.log10(low))
    while True:
        decade = rung(1.0, exponent)
        if decade > high * (1.0 + _REL_TOL):
            break
        for mantissa in (1.0, 2.0, 5.0):
            bound = rung(mantissa, exponent)
            if high < bound <= high * (1.0 + _REL_TOL):
                bound = high
            elif low * (1.0 - _REL_TOL) <= bound < low:
                bound = low
            if low <= bound <= high and (not bounds or bound > bounds[-1]):
                bounds.append(bound)
        exponent += 1
    return tuple(bounds)


#: Default bounds for response times in broadcast units: sub-slot waits up
#: to the ~100k-slot stalls a saturated Pure-Pull queue can produce.
LATENCY_BUCKETS: tuple[float, ...] = (0.5,) + log_buckets(1.0, 1e5)


class LatencyHistogram(Histogram):
    """A :class:`Histogram` tuned for response times.

    Log-spaced default buckets, interpolated quantiles, and a
    ``quantiles()`` convenience returning the p50/p90/p99 dict the run
    results serialize.
    """

    def __init__(self, name: str = "latency", help_: str = "",
                 buckets: Sequence[float] = LATENCY_BUCKETS):
        super().__init__(name, help_, buckets)

    def quantile(self, q: float) -> float:
        """Interpolated ``q``-quantile (NaN when empty).

        Linear interpolation between the owning bucket's bounds, with the
        observed min/max standing in for the open-ended first and last
        bucket edges; exact for the 0- and 1-quantiles.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        tally = self._tally
        total = tally.count
        if total == 0:
            return math.nan
        rank = q * total
        cumulative = 0
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            if cumulative + count >= rank:
                lower = self.bounds[index - 1] if index > 0 else tally.min
                upper = (self.bounds[index] if index < len(self.bounds)
                         else tally.max)
                lower = min(max(lower, tally.min), tally.max)
                upper = max(min(upper, tally.max), lower)
                fraction = (rank - cumulative) / count
                return lower + fraction * (upper - lower)
            cumulative += count
        return tally.max

    def quantiles(self) -> Optional[dict[str, float]]:
        """``{"p50": ..., "p90": ..., "p99": ...}``; None when empty."""
        if self._tally.count == 0:
            return None
        return {"p50": self.quantile(0.50),
                "p90": self.quantile(0.90),
                "p99": self.quantile(0.99)}
