"""Columnar trace backend: structured arrays with memory-mapped ``.npy``.

JSONL traces of paper-scale sweeps run to millions of records, and the
pure-Python readback path (``json.loads`` per line, one frozen dataclass
per record) becomes the analysis bottleneck long before the simulation
does.  This module stores the same slot / request records as numpy
structured arrays instead:

- :class:`ColumnarSink` — the third first-class :class:`~repro.obs.trace.\
TraceSink`: buffers records into fixed-size structured-array chunks and
  persists them as a single ``.npy`` file (written through
  ``np.lib.format``, so plain ``np.load(..., mmap_mode="r")`` maps it
  back without materializing anything),
- :func:`load_columnar` — memory-mapped readback; million-record traces
  open in milliseconds and pages stream in on demand,
- :func:`jsonl_to_columnar` / :func:`columnar_to_jsonl` — lossless
  round-trip converters between the two on-disk formats,
- :func:`breakdown_of_array` / :func:`measured_miss_waits` /
  :func:`exact_quantiles` / :func:`slot_summary` — vectorized analytics
  that replace the per-record Python loops; quantiles are *exact* order
  statistics via ``np.partition``, not bucket approximations.

Dtype and null convention
-------------------------

Structured dtypes have no native ``None``, so every nullable column uses
a **sentinel + mask** convention:

- nullable integer columns (``page``, ``mc_waiting``) store ``-1``,
- nullable float columns (``predicted_push_wait``, ``on_air_at``,
  ``queue_wait``, ``service``) store ``NaN``,
- nullable enum columns (``pull_outcome``) store ``-1``,
- additionally, every row carries a ``null_mask`` uint8 whose bit *i* is
  set iff the *i*-th nullable column (in :data:`~repro.obs.trace.\
OPTIONAL_SLOT_FIELDS` / :data:`~repro.obs.requests.\
OPTIONAL_REQUEST_FIELDS` order) was ``None``.

The mask is authoritative on decode — sentinels are only a convenience
for vectorized math (``np.isnan`` masks, ``page >= 0`` filters) — which
makes the JSONL <-> columnar round trip bit-identical even if a real
value ever collided with a sentinel.  Enum-valued string fields
(``kind``, ``served_kind``, ``pull_outcome``) are stored as int8 codes
indexing the shared registries in :mod:`repro.obs.events`, keeping every
row fixed-width.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro.obs.events import OFFER_OUTCOMES, SERVED_KINDS, SLOT_KINDS
from repro.obs.requests import OPTIONAL_REQUEST_FIELDS, RequestRecord, WaitBreakdown
from repro.obs.trace import OPTIONAL_SLOT_FIELDS, SlotRecord, TraceSink

__all__ = [
    "SLOT_DTYPE",
    "REQUEST_DTYPE",
    "TABLES",
    "ColumnarSink",
    "load_columnar",
    "table_of",
    "records_to_array",
    "array_to_records",
    "jsonl_to_columnar",
    "columnar_to_jsonl",
    "breakdown_of_array",
    "measured_miss_waits",
    "exact_quantiles",
    "slot_summary",
]

#: Rows buffered per append chunk (64k rows ~ 4 MiB of request records).
DEFAULT_CHUNK = 65536

#: The two record tables the backend stores.
TABLES: tuple[str, ...] = ("slot", "request")

#: One row per broadcast slot (:class:`~repro.obs.trace.SlotRecord`).
#: Nullable: ``page`` / ``mc_waiting`` (-1 + null_mask bits 0 / 1).
SLOT_DTYPE = np.dtype([
    ("slot", "<i8"),
    ("kind", "<i1"),          # code into SLOT_KINDS
    ("page", "<i4"),          # -1 when None (padding / idle slots)
    ("queue_depth", "<i4"),
    ("enqueued", "<i8"),
    ("duplicates", "<i8"),
    ("dropped", "<i8"),
    ("served", "<i8"),
    ("mc_waiting", "<i4"),    # -1 when None (MC thinking)
    ("mc_arrivals", "<i4"),
    ("vc_arrivals", "<i4"),
    ("null_mask", "<u1"),
])

#: One row per measured-client access
#: (:class:`~repro.obs.requests.RequestRecord`).  Nullable:
#: ``pull_outcome`` / ``predicted_push_wait`` / ``on_air_at`` /
#: ``queue_wait`` / ``service`` (null_mask bits 0-4).
REQUEST_DTYPE = np.dtype([
    ("index", "<i8"),
    ("page", "<i4"),
    ("issued_at", "<f8"),
    ("measured", "?"),
    ("hit", "?"),
    ("pull_sent", "?"),
    ("pull_outcome", "<i1"),          # code into OFFER_OUTCOMES, -1 = None
    ("predicted_push_wait", "<f8"),   # NaN when None (page never pushed)
    ("page_offers", "<i4"),
    ("on_air_at", "<f8"),             # NaN when None (cache hits)
    ("served_at", "<f8"),
    ("served_kind", "<i1"),           # code into SERVED_KINDS
    ("wait", "<f8"),
    ("queue_wait", "<f8"),            # NaN when None (cache hits)
    ("service", "<f8"),               # NaN when None (cache hits)
    ("null_mask", "<u1"),
])

# Event-name string <-> int8 code tables (registry order == code order).
_SLOT_KIND_CODE = {name: code for code, name in enumerate(SLOT_KINDS)}
_SERVED_KIND_CODE = {name: code for code, name in enumerate(SERVED_KINDS)}
_OUTCOME_CODE = {name: code for code, name in enumerate(OFFER_OUTCOMES)}

# Registry codes the vectorized analytics test against.
_SERVED_PULL = _SERVED_KIND_CODE["pull"]
_OUTCOME_ENQUEUED = _OUTCOME_CODE["enqueued"]
_OUTCOME_DUPLICATE = _OUTCOME_CODE["duplicate"]
_OUTCOME_DROPPED = _OUTCOME_CODE["dropped"]


def _slot_row(record: SlotRecord) -> tuple:
    """Encode one SlotRecord as a SLOT_DTYPE row tuple.

    null_mask bits follow OPTIONAL_SLOT_FIELDS: 1 = page, 2 = mc_waiting.
    """
    mask = 0
    page = record.page
    if page is None:
        mask |= 1
        page = -1
    mc_waiting = record.mc_waiting
    if mc_waiting is None:
        mask |= 2
        mc_waiting = -1
    return (record.slot, _SLOT_KIND_CODE[record.kind], page,
            record.queue_depth, record.enqueued, record.duplicates,
            record.dropped, record.served, mc_waiting, record.mc_arrivals,
            record.vc_arrivals, mask)


def _slot_record(row: np.void) -> SlotRecord:
    """Decode one SLOT_DTYPE row back into a SlotRecord."""
    mask = int(row["null_mask"])
    return SlotRecord(
        slot=int(row["slot"]),
        kind=SLOT_KINDS[row["kind"]],
        page=None if mask & 1 else int(row["page"]),
        queue_depth=int(row["queue_depth"]),
        enqueued=int(row["enqueued"]),
        duplicates=int(row["duplicates"]),
        dropped=int(row["dropped"]),
        served=int(row["served"]),
        mc_waiting=None if mask & 2 else int(row["mc_waiting"]),
        mc_arrivals=int(row["mc_arrivals"]),
        vc_arrivals=int(row["vc_arrivals"]),
    )


def _request_row(record: RequestRecord) -> tuple:
    """Encode one RequestRecord as a REQUEST_DTYPE row tuple.

    null_mask bits follow OPTIONAL_REQUEST_FIELDS: 1 = pull_outcome,
    2 = predicted_push_wait, 4 = on_air_at, 8 = queue_wait, 16 = service.
    """
    mask = 0
    outcome = record.pull_outcome
    if outcome is None:
        mask |= 1
        outcome_code = -1
    else:
        outcome_code = _OUTCOME_CODE[outcome]
    predicted = record.predicted_push_wait
    if predicted is None:
        mask |= 2
        predicted = np.nan
    on_air = record.on_air_at
    if on_air is None:
        mask |= 4
        on_air = np.nan
    queue_wait = record.queue_wait
    if queue_wait is None:
        mask |= 8
        queue_wait = np.nan
    service = record.service
    if service is None:
        mask |= 16
        service = np.nan
    return (record.index, record.page, record.issued_at, record.measured,
            record.hit, record.pull_sent, outcome_code, predicted,
            record.page_offers, on_air, record.served_at,
            _SERVED_KIND_CODE[record.served_kind], record.wait, queue_wait,
            service, mask)


def _request_record(row: np.void) -> RequestRecord:
    """Decode one REQUEST_DTYPE row back into a RequestRecord."""
    mask = int(row["null_mask"])
    outcome_code = int(row["pull_outcome"])
    served_code = int(row["served_kind"])
    return RequestRecord(
        index=int(row["index"]),
        page=int(row["page"]),
        issued_at=float(row["issued_at"]),
        measured=bool(row["measured"]),
        hit=bool(row["hit"]),
        pull_sent=bool(row["pull_sent"]),
        pull_outcome=None if mask & 1 else OFFER_OUTCOMES[outcome_code],
        predicted_push_wait=(None if mask & 2
                             else float(row["predicted_push_wait"])),
        page_offers=int(row["page_offers"]),
        on_air_at=None if mask & 4 else float(row["on_air_at"]),
        served_at=float(row["served_at"]),
        served_kind=SERVED_KINDS[served_code],
        wait=float(row["wait"]),
        queue_wait=None if mask & 8 else float(row["queue_wait"]),
        service=None if mask & 16 else float(row["service"]),
    )


_TABLE_SPEC = {
    "slot": (SLOT_DTYPE, _slot_row, _slot_record),
    "request": (REQUEST_DTYPE, _request_row, _request_record),
}


class ColumnarSink(TraceSink):
    """Buffers records columnar; persists to a memory-mappable ``.npy``.

    Records append into fixed-size structured-array chunks (no
    per-record Python object survives the emit), and :meth:`close`
    writes them as one contiguous ``.npy`` through
    ``np.lib.format.open_memmap`` — so readback never parses anything.
    With ``path=None`` the sink is purely in-memory; :meth:`array`
    returns everything emitted so far either way.

    The record table ("slot" or "request") is auto-detected from the
    first emitted record; pass ``table=`` to pin it up front (required
    to persist a trace that received no records at all).
    """

    def __init__(self, path: Union[str, Path, None] = None,
                 table: Optional[str] = None,
                 chunk: int = DEFAULT_CHUNK):
        if table is not None and table not in _TABLE_SPEC:
            raise ValueError(
                f"unknown record table {table!r} (expected one of {TABLES})")
        if chunk < 1:
            raise ValueError("chunk must be positive")
        self.path = Path(path) if path is not None else None
        self.table = table
        self.emitted = 0
        self._chunk = int(chunk)
        self._chunks: list[np.ndarray] = []
        self._buf: Optional[np.ndarray] = None
        self._fill = 0
        self._closed = False
        self._encode = None
        if table is not None:
            self._bind(table)

    def _bind(self, table: str) -> None:
        dtype, encode, _ = _TABLE_SPEC[table]
        self.table = table
        self.dtype = dtype
        self._encode = encode
        self._buf = np.empty(self._chunk, dtype)

    def emit(self, record) -> None:
        if self._closed:
            raise ValueError(f"sink for {self.path or '<memory>'} is closed")
        if self._encode is None:
            if isinstance(record, SlotRecord):
                self._bind("slot")
            elif isinstance(record, RequestRecord):
                self._bind("request")
            else:
                raise TypeError(
                    f"cannot store {type(record).__name__} columnar")
        assert self._buf is not None and self._encode is not None
        self._buf[self._fill] = self._encode(record)
        self._fill += 1
        self.emitted += 1
        if self._fill == self._chunk:
            self._chunks.append(self._buf)
            self._buf = np.empty(self._chunk, self.dtype)
            self._fill = 0

    def _parts(self) -> list[np.ndarray]:
        parts = list(self._chunks)
        if self._buf is not None and self._fill:
            parts.append(self._buf[:self._fill])
        return parts

    def array(self) -> np.ndarray:
        """Everything emitted so far, as one structured array (a copy)."""
        if self._encode is None:
            raise ValueError(
                "empty columnar sink has no record table; pass table=")
        parts = self._parts()
        if not parts:
            return np.empty(0, self.dtype)
        if len(parts) == 1:
            return parts[0].copy()
        return np.concatenate(parts)

    def close(self) -> None:
        """Persist to :attr:`path` (when set) and seal the sink."""
        if self._closed:
            return
        self._closed = True
        if self.path is None:
            return
        if self._encode is None:
            raise ValueError(
                "cannot persist a columnar trace of unknown table; "
                "pass table= to ColumnarSink")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.emitted == 0:
            # Zero-length arrays cannot be memory-mapped; write the
            # header + empty payload directly (still a valid .npy).
            with self.path.open("wb") as handle:
                np.lib.format.write_array(handle, np.empty(0, self.dtype))
            return
        out = np.lib.format.open_memmap(
            self.path, mode="w+", dtype=self.dtype, shape=(self.emitted,))
        offset = 0
        for part in self._parts():
            out[offset:offset + len(part)] = part
            offset += len(part)
        out.flush()
        del out


def load_columnar(path: Union[str, Path], mmap: bool = True) -> np.ndarray:
    """Open a ``.npy`` trace written by :class:`ColumnarSink`.

    Memory-mapped read-only by default, so million-record traces cost
    no load time and no resident memory until sliced; ``mmap=False``
    reads the whole array eagerly instead.
    """
    path = Path(path)
    array = np.load(path, mmap_mode="r" if mmap else None)
    if array.dtype not in (SLOT_DTYPE, REQUEST_DTYPE):
        raise ValueError(
            f"{path}: not a columnar trace (dtype {array.dtype})")
    return array


def table_of(array: np.ndarray) -> str:
    """Which record table an array stores: "slot" or "request"."""
    if array.dtype == SLOT_DTYPE:
        return "slot"
    if array.dtype == REQUEST_DTYPE:
        return "request"
    raise ValueError(f"not a columnar trace (dtype {array.dtype})")


def records_to_array(records: Iterable, table: Optional[str] = None
                     ) -> np.ndarray:
    """Convert Slot/Request records to a structured array.

    ``table`` is only needed when ``records`` may be empty (there is
    then no first record to detect the table from).
    """
    sink = ColumnarSink(table=table)
    for record in records:
        sink.emit(record)
    return sink.array()


def array_to_records(array: np.ndarray) -> list:
    """Decode a columnar trace back into record dataclasses.

    The inverse of :func:`records_to_array`: every sentinel/mask pair
    turns back into ``None`` and every enum code back into its registry
    string, so round trips are lossless.
    """
    _, _, decode = _TABLE_SPEC[table_of(array)]
    return [decode(row) for row in array]


def _sniff_jsonl_table(first: dict) -> str:
    """Record table of a JSONL trace, from its first object's keys."""
    if "issued_at" in first:
        return "request"
    if "slot" in first:
        return "slot"
    raise ValueError(
        "unrecognized trace record "
        f"(keys: {', '.join(sorted(first))})")


def jsonl_to_columnar(src: Union[str, Path], dst: Union[str, Path],
                      chunk: int = DEFAULT_CHUNK) -> int:
    """Convert a JSONL trace to columnar ``.npy``; returns the row count.

    Streams line by line through a :class:`ColumnarSink`, so the
    conversion runs in O(chunk) memory regardless of trace size.  An
    empty JSONL file is rejected — there is no way to know which table
    it would have held.
    """
    sink: Optional[ColumnarSink] = None
    count = 0
    with Path(src).open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if sink is None:
                table = _sniff_jsonl_table(data)
                sink = ColumnarSink(dst, table=table, chunk=chunk)
            record = (SlotRecord.from_dict(data) if sink.table == "slot"
                      else RequestRecord.from_dict(data))
            sink.emit(record)
            count += 1
    if sink is None:
        raise ValueError(f"{src}: empty trace, cannot infer record table")
    sink.close()
    return count


def columnar_to_jsonl(src: Union[str, Path], dst: Union[str, Path]) -> int:
    """Convert a columnar ``.npy`` trace to JSONL; returns the row count.

    The exact inverse of :func:`jsonl_to_columnar`: decoded records
    serialize through the same ``to_dict`` path the live
    :class:`~repro.obs.trace.JsonlSink` uses, so converting back and
    forth reproduces the original file byte for byte.
    """
    from repro.obs.trace import JsonlSink

    array = load_columnar(src)
    _, _, decode = _TABLE_SPEC[table_of(array)]
    with JsonlSink(dst) as sink:
        for row in array:
            sink.emit(decode(row))
    return int(array.shape[0])


# -- vectorized analytics --------------------------------------------------

def _require_table(array: np.ndarray, table: str) -> None:
    actual = table_of(array)
    if actual != table:
        raise ValueError(f"need a {table} trace, got a {actual} trace")


def breakdown_of_array(array: np.ndarray,
                       think_time: Optional[float] = None,
                       measured_only: bool = True) -> WaitBreakdown:
    """Vectorized :func:`repro.obs.requests.breakdown_of` over a table.

    Produces the same :class:`~repro.obs.requests.WaitBreakdown` the
    per-record Python loop builds, but via column reductions — no record
    objects are materialized, so a million-row memory-mapped trace
    aggregates in tens of milliseconds.
    """
    _require_table(array, "request")
    rows = array[array["measured"]] if measured_only else array[...]
    breakdown = WaitBreakdown()
    breakdown.accesses = int(rows.shape[0])
    hit = rows["hit"]
    breakdown.hits = int(np.count_nonzero(hit))
    miss = rows[~hit]
    breakdown.misses = int(miss.shape[0])
    breakdown.pulls_sent = int(np.count_nonzero(miss["pull_sent"]))
    outcome = miss["pull_outcome"]
    breakdown.pulls_enqueued = int(
        np.count_nonzero(outcome == _OUTCOME_ENQUEUED))
    breakdown.pulls_duplicate = int(
        np.count_nonzero(outcome == _OUTCOME_DUPLICATE))
    breakdown.pulls_dropped = int(
        np.count_nonzero(outcome == _OUTCOME_DROPPED))
    served_pull = miss["served_kind"] == _SERVED_PULL
    breakdown.served_pull = int(np.count_nonzero(served_pull))
    breakdown.served_push = breakdown.misses - breakdown.served_pull
    queue_wait = np.nan_to_num(miss["queue_wait"], nan=0.0)
    breakdown.pull_wait = float(queue_wait[served_pull].sum())
    breakdown.push_wait = float(queue_wait[~served_pull].sum())
    breakdown.service = float(
        np.nan_to_num(miss["service"], nan=0.0).sum())
    if think_time is not None:
        breakdown.think = think_time * breakdown.accesses
    return breakdown


def measured_miss_waits(array: np.ndarray) -> np.ndarray:
    """The measured-phase miss waits of a request table (float64 copy)."""
    _require_table(array, "request")
    selected = array[array["measured"] & ~array["hit"]]
    return np.ascontiguousarray(selected["wait"], dtype=np.float64)


def exact_quantiles(values: np.ndarray,
                    qs: Sequence[float] = (0.50, 0.90, 0.99)
                    ) -> Optional[dict[str, float]]:
    """Exact empirical quantiles via ``np.partition`` (None when empty).

    Uses the same rank convention as the report command's sorted-list
    path — ``sorted(values)[min(n - 1, int(q * n))]`` — but selects all
    ranks in one O(n) introselect pass instead of a full sort, and never
    builds Python floats for the non-selected elements.
    """
    values = np.asarray(values, dtype=np.float64)
    n = int(values.size)
    if n == 0:
        return None
    ranks = [min(n - 1, int(q * n)) for q in qs]
    partitioned = np.partition(values, sorted(set(ranks)))
    return {f"p{int(round(q * 100))}": float(partitioned[rank])
            for q, rank in zip(qs, ranks)}


def slot_summary(array: np.ndarray) -> dict:
    """Aggregate view of a slot table (the ``report`` command's lines).

    Returns ``{"slots": n, "kinds": {name: count}, "mean_queue_depth":
    float, "dropped": int}`` with only the slot kinds actually present,
    matching the Counter the JSONL report path builds.
    """
    _require_table(array, "slot")
    total = int(array.shape[0])
    counts = np.bincount(array["kind"], minlength=len(SLOT_KINDS))
    kinds = {name: int(count)
             for name, count in zip(SLOT_KINDS, counts) if count}
    mean_depth = (float(array["queue_depth"].mean(dtype=np.float64))
                  if total else 0.0)
    dropped = int(array["dropped"][-1]) if total else 0
    return {"slots": total, "kinds": kinds,
            "mean_queue_depth": mean_depth, "dropped": dropped}
