"""Publish the broadcast server's own counters through the registry.

:class:`~repro.server.broadcast_server.BroadcastServer` and its
:class:`~repro.server.queue.BoundedRequestQueue` keep plain integer
counters (slot counts by kind, enqueued/duplicate/dropped/served) that
historically bypassed :class:`~repro.obs.metrics.MetricsRegistry`
entirely — simulated runs exported them through ``RunResult`` while any
other consumer had to know the snapshot dict shapes.  The adapter here
mirrors those counters into registry instruments so simulated and
real-network runs share one metrics-export path: the net server syncs
every telemetry snapshot, a simulation syncs once after ``run()``, and
both end up with identical instrument names.

The server's counters are cumulative but *resettable*
(``reset_stats()`` zeroes them at the warm-up/measure boundary), while
registry counters only go up; the adapter therefore tracks the last
value it exported per counter and publishes deltas, treating a backward
jump as a reset (the post-reset value is the delta).
"""

from __future__ import annotations

from repro.obs.events import SCHEDULER_DECISIONS
from repro.obs.metrics import MetricsRegistry

__all__ = ["ServerMetricsAdapter", "bind_server_metrics"]


class ServerMetricsAdapter:
    """Mirror one server's accounting into a metrics registry.

    Instruments created (under ``<prefix>_``):

    - ``<prefix>_slots_<kind>_total`` — counter per slot kind,
    - ``<prefix>_requests_<outcome>_total`` — counter per queue outcome
      (enqueued / duplicates / dropped) plus ``served``,
    - ``<prefix>_queue_depth`` / ``<prefix>_queue_capacity`` — gauges,
    - ``<prefix>_queue_drop_rate`` — gauge (fraction of *distinct*
      offers dropped; see ``BoundedRequestQueue.drop_rate``),
    - ``<prefix>_schedule_pos`` — gauge (push-program cursor),
    - ``<prefix>_sched_<decision>_total`` — counter per scheduler
      decision kind (``repro.obs.events.SCHEDULER_DECISIONS``: pull
      services granted / services taken out of FIFO order).

    Call :meth:`sync` whenever an up-to-date registry view is needed;
    each call is O(number of instruments) and touches nothing else.
    """

    def __init__(self, registry: MetricsRegistry, server,
                 prefix: str = "server"):
        self.registry = registry
        self.server = server
        self.prefix = prefix
        self._last: dict[str, int] = {}
        # Create instruments eagerly so a snapshot taken before the
        # first sync still lists the full instrument set (at zero).
        for kind in server.slot_counts:
            registry.counter(f"{prefix}_slots_{kind.value}_total",
                             f"slots that carried a {kind.value}")
        for outcome in ("enqueued", "duplicates", "dropped", "served"):
            registry.counter(f"{prefix}_requests_{outcome}_total",
                             f"backchannel requests {outcome}")
        for decision in SCHEDULER_DECISIONS:
            registry.counter(f"{prefix}_sched_{decision}_total",
                             f"pull-scheduler decisions: {decision}")
        registry.gauge(f"{prefix}_queue_depth", "requests queued now")
        registry.gauge(f"{prefix}_queue_capacity", "queue capacity")
        registry.gauge(f"{prefix}_queue_drop_rate",
                       "fraction of offered requests dropped")
        registry.gauge(f"{prefix}_schedule_pos", "push-program cursor")

    def _bump(self, name: str, value: int) -> None:
        """Advance counter ``name`` to cumulative ``value`` via a delta."""
        last = self._last.get(name, 0)
        delta = value - last
        if delta < 0:
            # The server's counters were reset (measurement boundary);
            # the post-reset value is what accumulated since.
            delta = value
        if delta:
            self.registry.counter(name).inc(delta)
        self._last[name] = value

    def sync(self) -> None:
        """Publish the server's current accounting into the registry."""
        prefix = self.prefix
        snapshot = self.server.stats_snapshot()
        for kind, count in snapshot["slots"].items():
            self._bump(f"{prefix}_slots_{kind}_total", count)
        queue = snapshot["queue"]
        for outcome in ("enqueued", "duplicates", "dropped", "served"):
            self._bump(f"{prefix}_requests_{outcome}_total", queue[outcome])
        for decision in SCHEDULER_DECISIONS:
            self._bump(f"{prefix}_sched_{decision}_total",
                       queue["scheduler"][decision])
        self.registry.gauge(f"{prefix}_queue_depth").set(queue["depth"])
        self.registry.gauge(f"{prefix}_queue_capacity").set(
            queue["capacity"])
        self.registry.gauge(f"{prefix}_queue_drop_rate").set(
            queue["drop_rate"])
        self.registry.gauge(f"{prefix}_schedule_pos").set(
            snapshot["schedule_pos"])


def bind_server_metrics(registry: MetricsRegistry, server,
                        prefix: str = "server") -> ServerMetricsAdapter:
    """Create an adapter and perform the initial sync.

    Works identically for a just-finished simulation's
    ``state.server`` and for the live server inside
    :class:`repro.net.server.NetServer`.
    """
    adapter = ServerMetricsAdapter(registry, server, prefix=prefix)
    adapter.sync()
    return adapter
