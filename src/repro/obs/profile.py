"""Phase timers for the fast engine's hot loop.

:class:`HotLoopProfile` is a passive accumulator the fast engine updates
when one is attached: per-phase wall time (controller decisions, slot
deliveries, measured-client accesses, server tick, virtual-client
arrivals) plus the slot count, from which it reports slots/sec and a
percentage breakdown.  :func:`profile_run` is the one-call convenience
used by ``repro-broadcast profile``.

Timing every phase of every slot costs real wall time (two clock reads
per phase), so the numbers are for *relative* attribution — which phase
dominates, how the split shifts with load — not absolute throughput;
:mod:`benchmarks.test_bench_substrates` measures absolute throughput
without instrumentation.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["PhaseTimer", "HotLoopProfile", "profile_run"]

#: Hot-loop phases in their within-slot execution order (DESIGN.md §6).
ENGINE_PHASES: tuple[str, ...] = (
    "control", "deliver", "mc_access", "server_tick", "vc_arrivals")


class PhaseTimer:
    """Accumulates wall time under named phases.

    Use :meth:`time` as a context manager for coarse scopes, or
    :meth:`add` with externally measured durations for hot loops that
    cannot afford the context-manager overhead.
    """

    # lint: allow[REP001] -- the profiler IS the timer; clock is injectable
    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    def add(self, phase: str, seconds: float, calls: int = 1) -> None:
        """Credit ``seconds`` of wall time to ``phase``."""
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        self.calls[phase] = self.calls.get(phase, 0) + calls

    def time(self, phase: str):
        """Context manager crediting its scope's duration to ``phase``."""
        return _PhaseScope(self, phase)

    @property
    def total(self) -> float:
        """Wall time across all phases."""
        return sum(self.seconds.values())


class _PhaseScope:
    __slots__ = ("_timer", "_phase", "_started")

    def __init__(self, timer: PhaseTimer, phase: str):
        self._timer = timer
        self._phase = phase
        self._started = 0.0

    def __enter__(self):
        self._started = self._timer._clock()
        return self

    def __exit__(self, *exc):
        self._timer.add(self._phase, self._timer._clock() - self._started)


class HotLoopProfile:
    """Per-phase wall-time breakdown of one fast-engine run.

    The engine adds raw durations via plain attribute arithmetic (the
    profile exposes one float per phase), so the per-slot cost is two
    ``perf_counter`` reads per phase and nothing else.
    """

    __slots__ = ("control", "deliver", "mc_access", "server_tick",
                 "vc_arrivals", "slots", "wall_seconds")

    def __init__(self):
        self.control = 0.0
        self.deliver = 0.0
        self.mc_access = 0.0
        self.server_tick = 0.0
        self.vc_arrivals = 0.0
        self.slots = 0
        #: End-to-end wall time of the run (set by the engine).
        self.wall_seconds = 0.0

    @property
    def phase_seconds(self) -> dict[str, float]:
        """Per-phase accumulated wall time, in execution order."""
        return {phase: getattr(self, phase) for phase in ENGINE_PHASES}

    @property
    def timed_seconds(self) -> float:
        """Wall time attributed to the instrumented phases."""
        return sum(self.phase_seconds.values())

    @property
    def slots_per_second(self) -> float:
        """Loop throughput over the whole run (0 when nothing ran)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.slots / self.wall_seconds

    def render(self) -> str:
        """The per-phase timing table ``repro-broadcast profile`` prints."""
        timed = self.timed_seconds
        lines = [
            f"slots simulated : {self.slots}",
            f"wall time       : {self.wall_seconds:.3f} s",
            f"throughput      : {self.slots_per_second:,.0f} slots/sec",
            "",
            f"{'phase':<12} {'seconds':>10} {'share':>8} {'ns/slot':>10}",
            "-" * 44,
        ]
        for phase, seconds in self.phase_seconds.items():
            share = seconds / timed if timed else 0.0
            per_slot = (seconds / self.slots * 1e9) if self.slots else 0.0
            lines.append(f"{phase:<12} {seconds:>10.4f} {share:>7.1%} "
                         f"{per_slot:>10,.0f}")
        overhead = self.wall_seconds - timed
        if overhead > 0:
            lines.append(f"{'(untimed)':<12} {overhead:>10.4f} "
                         f"{overhead / self.wall_seconds:>7.1%}")
        return "\n".join(lines)


def profile_run(config, warmup: bool = False):
    """Run ``config`` on the fast engine with phase timing attached.

    Returns ``(result, profile)``.  Pure-Push configs are forced down the
    general slot loop — the analytic shortcut has no hot loop to time.
    """
    from repro.core.fast import FastEngine

    profile = HotLoopProfile()
    engine = FastEngine(config, force_general=True, profiler=profile)
    result = engine.run_warmup() if warmup else engine.run()
    return result, profile
