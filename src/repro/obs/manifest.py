"""Run provenance: enough metadata to reproduce any saved number.

A saved ``RunResult`` or ``results/figure_*.json`` used to be an orphan —
no record of the seed, the config, or the code version that produced it.
Every engine run now stamps a *manifest*: a plain JSON-ready dict with
the full configuration, the seed, the engine, the package / python /
numpy versions, a UTC timestamp, and the elapsed wall time.  Figure
sweeps attach the analogous sweep-level manifest (the
:class:`~repro.experiments.base.Profile` plus versions).

Manifests are deliberately plain dicts, not dataclasses: they ride along
inside pickled results through process pools, serialize with ``json``
as-is, and tolerate fields added by future versions.
"""

from __future__ import annotations

import enum
import platform
from dataclasses import asdict, is_dataclass
from datetime import datetime, timezone
from typing import Any, Optional

__all__ = [
    "MANIFEST_VERSION",
    "config_from_dict",
    "config_to_dict",
    "diff_manifests",
    "package_version",
    "run_manifest",
    "sweep_manifest",
]

#: Bumped when the manifest layout changes incompatibly.
MANIFEST_VERSION = 1

_VERSION_CACHE: Optional[str] = None


def package_version() -> str:
    """The installed ``repro`` version (source-tree fallback), cached."""
    global _VERSION_CACHE
    if _VERSION_CACHE is None:
        try:
            from importlib.metadata import version

            _VERSION_CACHE = version("repro")
        except Exception:
            # Running from a source tree: import lazily to dodge the
            # repro -> core -> obs import cycle at module-load time.
            from repro import __version__

            _VERSION_CACHE = __version__
    return _VERSION_CACHE


def config_to_dict(config: Any) -> dict:
    """A :class:`~repro.core.config.SystemConfig` as a JSON-ready dict.

    Accepts any dataclass; enum values are flattened to their ``.value``.
    """
    if not is_dataclass(config):
        raise TypeError(f"expected a dataclass, got {type(config).__name__}")

    def convert(value):
        if isinstance(value, enum.Enum):
            return value.value
        if isinstance(value, dict):
            return {key: convert(v) for key, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [convert(v) for v in value]
        return value

    return convert(asdict(config))


def _known_fields(cls, data: dict) -> dict:
    """``data`` restricted to ``cls``'s dataclass fields.

    Manifests tolerate fields added by future versions; the inverse
    direction must too, so unknown keys are dropped rather than raised.
    """
    from dataclasses import fields

    names = {f.name for f in fields(cls)}
    return {key: value for key, value in data.items() if key in names}


def config_from_dict(data: dict):
    """Rebuild a :class:`~repro.core.config.SystemConfig` from its dict.

    The inverse of :func:`config_to_dict` for system configs — accepts
    the ``config`` section of a run manifest (or anything that round-
    tripped through JSON): the algorithm enum is revived from its value,
    JSON lists turn back into the tuples the dataclasses expect, and
    keys unknown to this version are ignored.
    """
    from repro.core.algorithms import Algorithm
    from repro.core.config import (
        ClientConfig,
        FleetConfig,
        RunConfig,
        ServerConfig,
        SystemConfig,
    )

    server = _known_fields(ServerConfig, data.get("server", {}))
    for name in ("disk_sizes", "rel_freqs"):
        if name in server:
            server[name] = tuple(server[name])
    return SystemConfig(
        algorithm=Algorithm(data["algorithm"]),
        client=ClientConfig(**_known_fields(ClientConfig,
                                            data.get("client", {}))),
        server=ServerConfig(**server),
        run=RunConfig(**_known_fields(RunConfig, data.get("run", {}))),
        # Pre-fleet manifests carry no "fleet" section; defaults apply.
        fleet=FleetConfig(**_known_fields(FleetConfig,
                                          data.get("fleet", {}))),
    )


def _environment() -> dict:
    """The version stamps shared by run- and sweep-level manifests."""
    import numpy

    return {
        "manifest_version": MANIFEST_VERSION,
        "package": "repro",
        "package_version": package_version(),
        "python_version": platform.python_version(),
        "numpy_version": numpy.__version__,
        # lint: allow[REP001] -- provenance timestamp, never enters sim state
        "created_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
    }


#: Manifest keys that differ on every run by construction and therefore
#: carry no drift signal (matched against the last dotted-path component).
EPHEMERAL_MANIFEST_KEYS: tuple[str, ...] = ("created_utc", "elapsed_seconds")


def _flatten(mapping: dict, prefix: str = "") -> dict[str, Any]:
    """Nested dicts as a flat ``dotted.key -> leaf value`` map."""
    flat: dict[str, Any] = {}
    for key in sorted(mapping):
        value = mapping[key]
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, f"{path}."))
        else:
            flat[path] = value
    return flat


def diff_manifests(left: Optional[dict], right: Optional[dict],
                   ignore: tuple[str, ...] = EPHEMERAL_MANIFEST_KEYS,
                   ) -> dict[str, tuple[Any, Any]]:
    """Dotted-key deltas between two manifests.

    Nested sections (the embedded config) are flattened, so a drifting
    knob reports as e.g. ``config.server.pull_bw: (0.5, 0.3)``.  Keys
    present on one side only pair with ``None``; a manifest that is
    itself ``None`` (v1 archives) is treated as empty.  Keys whose final
    path component is in ``ignore`` are skipped — by default the
    per-run timestamp and wall time, which differ on every run.
    """
    flat_left = _flatten(left or {})
    flat_right = _flatten(right or {})
    deltas: dict[str, tuple[Any, Any]] = {}
    for key in sorted(set(flat_left) | set(flat_right)):
        if key.rsplit(".", 1)[-1] in ignore:
            continue
        if flat_left.get(key) != flat_right.get(key):
            deltas[key] = (flat_left.get(key), flat_right.get(key))
    return deltas


def run_manifest(config: Any, engine: str,
                 elapsed_seconds: Optional[float] = None) -> dict:
    """Provenance for one engine run of ``config``.

    Args:
        config: the :class:`~repro.core.config.SystemConfig` simulated.
        engine: ``"fast"`` or ``"reference"``.
        elapsed_seconds: wall time of the run, when the caller timed it.
    """
    manifest = _environment()
    manifest["engine"] = engine
    manifest["seed"] = config.run.seed
    manifest["config"] = config_to_dict(config)
    if elapsed_seconds is not None:
        manifest["elapsed_seconds"] = elapsed_seconds
    return manifest


def sweep_manifest(profile: Any, engine: str = "fast",
                   elapsed_seconds: Optional[float] = None) -> dict:
    """Provenance for a figure sweep run under ``profile``.

    The profile *is* the sweep-level configuration (run-scale knobs plus
    the base seed); per-run configs live in the figure functions.
    """
    manifest = _environment()
    manifest["engine"] = engine
    manifest["seed"] = profile.base_seed
    manifest["config"] = config_to_dict(profile)
    if elapsed_seconds is not None:
        manifest["elapsed_seconds"] = elapsed_seconds
    return manifest
