"""Sampling policies for request tracing.

Tracing every MC access is exact but costs real time at paper scale and
is out of the question for the million-client fleets the ROADMAP
targets.  A :class:`SamplingPolicy` lets a
:class:`~repro.obs.requests.RequestTracer` trace only a subset of
accesses while still estimating the full-population wait decomposition:
every kept record carries an **inverse-probability weight** (the
Horvitz-Thompson correction — a record sampled with probability ``1/w``
stands for ``w`` accesses), which :class:`~repro.obs.requests.\
WaitBreakdown` and the wait histograms fold in via their ``weight``
parameters.  Because both policies here select on the access *index*
(never on the observed wait), the kept records are an unbiased sample of
the stream and weighted quantiles are consistent estimators of the
full-trace quantiles.

Two policies:

- :class:`EveryNSampling` — deterministic 1-in-N by index.  Zero RNG
  cost, reproducible by construction, streams records to the sink the
  moment they complete, constant weight ``N``.  The workhorse for
  sweeps and benches.
- :class:`ReservoirSampling` — Vitter's Algorithm R with a fixed-size
  reservoir and a seeded generator (REP002: the seed is explicit,
  derived through :class:`numpy.random.SeedSequence`).  Holds exactly
  ``capacity`` records regardless of run length, so memory is bounded
  a priori; records are only final when the run ends, so they reach the
  sink at :meth:`~repro.obs.requests.RequestTracer.finalize` time with
  weight ``seen / len(reservoir)``.

Both exploit the MC's closed loop (at most one access outstanding): the
keep/skip decision is made at ``on_access`` time, so a skipped access
costs one counter bump and one comparison — none of the per-hook
bookkeeping, record construction, or sink serialization.  Algorithm R
permits this because the admission decision for element ``t`` depends
only on ``t``, not on the element's value; which reservoir slot it
evicts is likewise drawn up front.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

if TYPE_CHECKING:  # circular only for type checkers
    from repro.obs.requests import RequestRecord

__all__ = [
    "EveryNSampling",
    "ReservoirSampling",
    "SamplingPolicy",
    "sample_stream",
]


class SamplingPolicy(ABC):
    """Decides, per access, whether to trace its lifecycle.

    Protocol (driven by :class:`~repro.obs.requests.RequestTracer`):

    1. :meth:`accept` is called once per access, in index order, before
       any lifecycle bookkeeping.  False means the access is skipped
       entirely.
    2. :meth:`commit` is called with the completed record of every
       accepted access.  It returns the record's inverse-probability
       weight — or None when the policy must defer (reservoir
       membership is only final at the end of the stream).
    3. :meth:`drain` is called once, at finalize time, and yields the
       deferred ``(record, weight)`` pairs.
    """

    def __init__(self) -> None:
        #: Accesses offered to the policy (the full-population size).
        self.seen = 0
        #: Accesses accepted for tracing.
        self.sampled = 0

    def accept(self, index: int) -> bool:
        """Should the access with this stream index be traced?"""
        self.seen += 1
        if self._accept(index):
            self.sampled += 1
            return True
        return False

    @abstractmethod
    def _accept(self, index: int) -> bool:
        """Policy-specific keep/skip decision (``seen`` already bumped)."""

    @abstractmethod
    def commit(self, record: "RequestRecord") -> Optional[float]:
        """Take ownership of an accepted access's completed record.

        Returns the record's weight when it can be emitted immediately,
        None when emission is deferred to :meth:`drain`.
        """

    def drain(self) -> list[tuple["RequestRecord", float]]:
        """Deferred ``(record, weight)`` pairs; idempotent (once-only)."""
        return []

    @abstractmethod
    def describe(self) -> dict:
        """Provenance dict (policy kind + parameters + counts)."""


class EveryNSampling(SamplingPolicy):
    """Deterministic 1-in-N sampling by access index.

    Keeps the accesses whose index is a multiple of ``n`` (index 0
    always traced), each standing for ``n`` accesses.  Deterministic
    given the access stream — two runs of the same seeded simulation
    sample identical index sets — and needs no RNG at all.
    """

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("sampling interval n must be >= 1")
        super().__init__()
        self.n = n
        self._weight = float(n)

    def _accept(self, index: int) -> bool:
        return index % self.n == 0

    def commit(self, record: "RequestRecord") -> Optional[float]:
        return self._weight

    def describe(self) -> dict:
        return {"policy": "every_n", "n": self.n,
                "seen": self.seen, "sampled": self.sampled}


class ReservoirSampling(SamplingPolicy):
    """Seeded fixed-size uniform reservoir (Vitter's Algorithm R).

    After ``seen`` accesses every access has had probability
    ``len(reservoir) / seen`` of being in the reservoir, so each kept
    record weighs ``seen / len(reservoir)``.  The admission test for
    access ``t`` (``t`` 1-based) is ``U * t < capacity`` with ``U``
    uniform on [0, 1); the same draw, scaled, picks the evicted slot —
    both are decided at accept time, which is what lets the tracer skip
    all bookkeeping for rejected accesses.

    The MC is a closed loop, so at most one accepted access is pending
    between :meth:`accept` and :meth:`commit`; an access that never
    completes (engine stall) simply leaves its chosen slot unreplaced.

    Uniform draws are generated in chunks (one :meth:`numpy.random.\
Generator.random` call per 4096 accesses past the fill phase) so the
    per-access cost stays a couple of array reads.

    Args:
        capacity: reservoir size (max records kept).
        seed: explicit RNG seed, fed through ``SeedSequence`` so nearby
            integer seeds still give independent streams.
    """

    _CHUNK = 4096

    def __init__(self, capacity: int, seed: int):
        if capacity < 1:
            raise ValueError("reservoir capacity must be >= 1")
        super().__init__()
        self.capacity = capacity
        self.seed = seed
        self._rng = np.random.default_rng(np.random.SeedSequence(seed))
        self._records: list["RequestRecord"] = []
        self._uniforms = np.empty(0)
        self._cursor = 0
        #: Reservoir slot the pending accepted access will occupy.
        self._slot: Optional[int] = None
        self._drained = False

    def _next_uniform(self) -> float:
        if self._cursor >= len(self._uniforms):
            self._uniforms = self._rng.random(self._CHUNK)
            self._cursor = 0
        value = self._uniforms[self._cursor]
        self._cursor += 1
        return value

    def _accept(self, index: int) -> bool:
        if self._drained:
            raise RuntimeError("reservoir already drained")
        if len(self._records) < self.capacity and self._slot is None:
            self._slot = len(self._records)
            return True
        target = int(self._next_uniform() * self.seen)
        if target < self.capacity:
            self._slot = target
            return True
        return False

    def commit(self, record: "RequestRecord") -> Optional[float]:
        slot = self._slot
        if slot is None:
            raise RuntimeError("commit without a pending accepted access")
        self._slot = None
        if slot == len(self._records):
            self._records.append(record)
        else:
            self._records[slot] = record
        return None  # membership only final at drain time

    def drain(self) -> list[tuple["RequestRecord", float]]:
        if self._drained:
            return []
        self._drained = True
        if not self._records:
            return []
        weight = self.seen / len(self._records)
        return [(record, weight)
                for record in sorted(self._records, key=lambda r: r.index)]

    def describe(self) -> dict:
        return {"policy": "reservoir", "capacity": self.capacity,
                "seed": self.seed, "seen": self.seen,
                "sampled": self.sampled}


def sample_stream(records: Iterable["RequestRecord"],
                  policy: SamplingPolicy
                  ) -> list[tuple["RequestRecord", float]]:
    """Replay an already-captured record stream through a policy.

    Offline counterpart of the tracer integration — used to validate a
    policy against a full trace (the record set a live sampled tracer
    would have kept is exactly the one this returns, since both key off
    the access index).  Returns ``(record, weight)`` pairs in stream
    order for streaming policies, with deferred (reservoir) pairs
    appended index-sorted at the end.
    """
    out: list[tuple["RequestRecord", float]] = []
    for record in records:
        if policy.accept(record.index):
            weight = policy.commit(record)
            if weight is not None:
                out.append((record, weight))
    out.extend(policy.drain())
    return out
