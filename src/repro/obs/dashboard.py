"""Live terminal telemetry: sweep progress and net STATS frames.

One rendering vocabulary for both halves of the system:

- :class:`SweepMonitor` implements the
  :class:`~repro.experiments.base.SweepProgress` protocol, so
  ``figures --watch`` streams per-replicate completions (completed /
  total, running means, p50/p90 of replicate means, ETA) into a
  :class:`~repro.obs.metrics.MetricsRegistry` and onto the terminal
  while a sweep runs;
- :func:`render_stats_frame` renders the STATS payload shape the
  ``repro.net`` server and client fleet already exchange
  (:meth:`~repro.net.server.NetServer.stats_snapshot`), so ``serve
  --watch`` and ``loadgen --watch`` reuse the same frame writer.

The :class:`Dashboard` frame writer redraws in place on a tty (cursor-up
+ clear-line ANSI, no external deps) and degrades to throttled plain
frames when the stream is a pipe or file.

This module measures wall-clock time by design (frame throttling, ETA);
lint rule REP001 is allowed for it via ``[tool.repro-lint]`` in
pyproject.toml, like the ``repro.net`` serving layer.
"""

from __future__ import annotations

import math
import sys
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, TextIO

from repro.obs.latency import LatencyHistogram
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "Dashboard",
    "SweepMonitor",
    "quantiles_from_bucket_snapshot",
    "render_stats_frame",
]


class Dashboard:
    """In-place multi-line terminal frame writer.

    On a tty, each :meth:`show` repaints the previous frame's lines
    (cursor-up + erase-line); elsewhere it appends whole frames,
    throttled by ``interval`` seconds so a pipe does not fill with
    thousands of near-identical frames.
    """

    def __init__(self, stream: Optional[TextIO] = None,
                 interval: float = 0.5):
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        isatty = getattr(self.stream, "isatty", None)
        self._tty = bool(isatty()) if callable(isatty) else False
        self._lines = 0
        self._last = -math.inf

    def show(self, frame: str, force: bool = False) -> bool:
        """Render ``frame`` (multi-line text); returns False if throttled."""
        now = time.monotonic()
        if not force and now - self._last < self.interval:
            return False
        self._last = now
        lines = frame.splitlines() or [""]
        if not self._tty:
            self.stream.write(frame + "\n")
            self.stream.flush()
            return True
        parts = []
        if self._lines:
            parts.append(f"\x1b[{self._lines}F")  # up to the frame's top
        parts.extend(f"\x1b[2K{line}\n" for line in lines)
        stale = self._lines - len(lines)
        if stale > 0:  # the old frame was taller: blank the leftovers
            parts.append("\x1b[2K\n" * stale)
            parts.append(f"\x1b[{stale}F")
        self.stream.write("".join(parts))
        self.stream.flush()
        self._lines = len(lines)
        return True

    def close(self, frame: Optional[str] = None) -> None:
        """Paint a final frame (unthrottled) and stop tracking lines.

        The final frame is left on screen; subsequent output continues
        below it.
        """
        if frame is not None:
            self.show(frame, force=True)
        self._lines = 0


@dataclass
class _SweepState:
    """Progress of one run_sweep call."""

    label: Optional[str]
    total: int
    completed: int = 0
    last_mean: float = math.nan
    #: Replicate mean waits, for running p50/p90 (merged across sweeps
    #: through Histogram.merge for the figure-level view).
    hist: LatencyHistogram = field(default_factory=lambda: LatencyHistogram(
        "sweep_replicate_mean_wait", "per-replicate mean response times"))


def _hms(seconds: float) -> str:
    if not math.isfinite(seconds):
        return "--:--"
    seconds = max(0, int(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}:{seconds % 3600 // 60:02d}:{seconds % 60:02d}"
    return f"{seconds // 60}:{seconds % 60:02d}"


def _bar(fraction: float, width: int = 24) -> str:
    filled = int(round(min(1.0, max(0.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


class SweepMonitor:
    """Aggregates per-replicate sweep completions for live display.

    Satisfies :class:`~repro.experiments.base.SweepProgress`: install it
    with :func:`~repro.experiments.base.sweep_progress` (or pass it to
    ``run_sweep(progress=...)``) and every replicate completion updates

    - the metrics registry: ``sweep_replicates_completed_total`` /
      ``sweep_replicates_total`` / ``sweep_eta_seconds`` /
      ``sweep_running_mean_wait``, plus a latency histogram of replicate
      mean waits — the same instrument vocabulary a STATS snapshot
      carries, so sim sweeps and the net server export alike;
    - the optional :class:`Dashboard`, with a progress bar, running
      mean / p50 / p90 of the completed replicates' mean waits, and a
      rate-based ETA over the replicates announced so far.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 dashboard: Optional[Dashboard] = None,
                 title: str = "sweep"):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.dashboard = dashboard
        self.title = title
        self.sweeps: list[_SweepState] = []
        self._m_completed = self.registry.counter(
            "sweep_replicates_completed_total", "replicate runs finished")
        self._m_total = self.registry.gauge(
            "sweep_replicates_total", "replicate runs announced so far")
        self._m_eta = self.registry.gauge(
            "sweep_eta_seconds", "estimated seconds until the announced "
            "replicates finish")
        self._m_mean = self.registry.gauge(
            "sweep_running_mean_wait", "mean of completed replicates' mean "
            "response times (broadcast units)")
        self._started_at = time.monotonic()

    # -- SweepProgress protocol --------------------------------------------
    def sweep_started(self, total: int, label: Optional[str]) -> None:
        self.sweeps.append(_SweepState(label=label, total=total))
        self._m_total.set(self.total)
        if self.dashboard is not None:
            self.dashboard.show(self.render())

    def replicate_done(self, index: int, result) -> None:
        state = self.sweeps[-1] if self.sweeps else None
        if state is None:  # replicate without sweep_started: tolerate
            state = _SweepState(label=None, total=0)
            self.sweeps.append(state)
        state.completed += 1
        self._m_completed.inc()
        mean = getattr(getattr(result, "response_miss", None), "mean",
                       math.nan)
        if mean is not None and not math.isnan(mean):
            state.last_mean = mean
            state.hist.observe(mean)
        merged = self.overall_histogram()
        if merged.count:
            self._m_mean.set(merged.mean)
        eta = self.eta_seconds()
        self._m_eta.set(eta if eta is not None else 0.0)
        if self.dashboard is not None:
            self.dashboard.show(self.render())

    # -- derived views -----------------------------------------------------
    @property
    def total(self) -> int:
        """Replicates announced so far (grows as sweeps are announced)."""
        return sum(s.total for s in self.sweeps)

    @property
    def completed(self) -> int:
        return sum(s.completed for s in self.sweeps)

    def overall_histogram(self) -> LatencyHistogram:
        """All sweeps' replicate mean waits pooled (Histogram.merge)."""
        merged = LatencyHistogram(
            "sweep_replicate_mean_wait", "per-replicate mean response times")
        for state in self.sweeps:
            merged.merge(state.hist)
        return merged

    def eta_seconds(self) -> Optional[float]:
        """Rate-based remaining time over the *announced* replicates.

        Figures announce their sweeps one at a time, so this is a lower
        bound early in a figure and converges as the last series starts.
        None before the first completion.
        """
        completed = self.completed
        if completed == 0:
            return None
        elapsed = time.monotonic() - self._started_at
        remaining = max(0, self.total - completed)
        return remaining * elapsed / completed

    def render(self) -> str:
        """The dashboard frame (also the final summary on finish)."""
        total = self.total
        completed = self.completed
        fraction = completed / total if total else 0.0
        elapsed = time.monotonic() - self._started_at
        eta = self.eta_seconds()
        lines = [
            f"{self.title}  [{_bar(fraction)}] {completed}/{total} "
            f"replicates  elapsed {_hms(elapsed)}  eta "
            f"{_hms(eta) if eta is not None else '--:--'}"
        ]
        merged = self.overall_histogram()
        if merged.count:
            lines.append(
                f"  mean wait {merged.mean:.1f}  "
                f"p50 {merged.quantile(0.5):.1f}  "
                f"p90 {merged.quantile(0.9):.1f}  (broadcast units, over "
                f"replicate means)")
        state = self.sweeps[-1] if self.sweeps else None
        if state is not None:
            label = state.label or "series"
            detail = (f"  last mean {state.last_mean:.1f}"
                      if not math.isnan(state.last_mean) else "")
            lines.append(f"  current: {label}  {state.completed}/"
                         f"{state.total}{detail}")
        return "\n".join(lines)

    def finish(self) -> None:
        """Paint the final frame and release the dashboard."""
        if self.dashboard is not None:
            self.dashboard.close(self.render())


# -- net STATS frames --------------------------------------------------------

def quantiles_from_bucket_snapshot(snapshot: dict,
                                   qs: Sequence[float] = (0.5, 0.9, 0.99),
                                   ) -> Optional[dict[str, float]]:
    """Approximate quantiles from a histogram *snapshot* dict.

    STATS frames carry instrument snapshots (plain dicts), not live
    :class:`~repro.obs.metrics.Histogram` objects; this reads the
    ``buckets`` mapping (``{bound: count, ..., "+inf": n}``) and
    interpolates inside the owning bucket, clamping to the snapshot's
    observed min/max — the same convention
    :meth:`~repro.obs.latency.LatencyHistogram.quantile` uses.  Returns
    ``{"p50": ..., ...}`` keyed like the run results, or None when the
    snapshot is empty or not a histogram.
    """
    buckets = snapshot.get("buckets")
    total = snapshot.get("count", 0)
    if not buckets or not total:
        return None
    bounds = sorted((float(k), v) for k, v in buckets.items()
                    if k != "+inf")
    bounds.append((math.inf, buckets.get("+inf", 0)))
    lo = snapshot.get("min", 0.0)
    hi = snapshot.get("max", math.inf)
    out = {}
    for q in qs:
        rank = q * total
        cumulative = 0.0
        value = hi
        for index, (bound, count) in enumerate(bounds):
            if not count:
                continue
            if cumulative + count >= rank:
                lower = bounds[index - 1][0] if index > 0 else lo
                upper = bound if math.isfinite(bound) else hi
                lower = min(max(lower, lo), hi)
                upper = max(min(upper, hi), lower)
                fraction = (rank - cumulative) / count
                value = lower + fraction * (upper - lower)
                break
            cumulative += count
        out[f"p{int(q * 100)}"] = value
    return out


def _metric_value(metrics: dict, name: str) -> Optional[float]:
    state = metrics.get(name)
    if isinstance(state, dict) and "value" in state:
        return state["value"]
    return None


def render_stats_frame(stats: dict, title: str = "server") -> str:
    """Render one STATS payload as a dashboard frame.

    ``stats`` is the :meth:`~repro.net.server.NetServer.stats_snapshot`
    shape — ``{"slot", "slot_duration", "connected_clients", "server",
    "metrics"}`` — but every key is optional, so the fleet side can
    render partial payloads (its own registry snapshot plus whatever the
    server reported) through the same function.
    """
    lines = [f"{title}  slot {stats.get('slot', '-')}"
             + (f"  clients {stats['connected_clients']}"
                if "connected_clients" in stats else "")]
    server = stats.get("server") or {}
    queue = server.get("queue") or {}
    if queue:
        depth = queue.get("depth", "-")
        capacity = queue.get("capacity", "-")
        drop_rate = queue.get("drop_rate", 0.0)
        lines.append(f"  queue {depth}/{capacity}  served "
                     f"{queue.get('served', '-')}  drop rate "
                     f"{drop_rate:.1%}")
    slots = server.get("slots") or {}
    if slots:
        mix = "  ".join(f"{kind} {count}" for kind, count in
                        sorted(slots.items()))
        lines.append(f"  slots {mix}")
    metrics = stats.get("metrics") or {}
    counters = [(name.removeprefix("net_").removesuffix("_total"), value)
                for name in ("net_frames_sent_total", "net_frames_shed_total",
                             "net_requests_received_total",
                             "net_clients_dropped_total",
                             "net_lagging_slots_total")
                if (value := _metric_value(metrics, name)) is not None]
    if counters:
        lines.append("  net " + "  ".join(f"{name} {value:g}"
                                          for name, value in counters))
    for name, label in (("fleet_latency_seconds", "fleet latency (s)"),
                        ("request_wait", "request wait")):
        quantiles = quantiles_from_bucket_snapshot(metrics.get(name) or {})
        if quantiles:
            rendered = "  ".join(f"{k} {v:.4g}"
                                 for k, v in quantiles.items())
            lines.append(f"  {label}  {rendered}")
    return "\n".join(lines)
