"""repro.obs — observability: tracing, metrics, profiling, trace diffing.

The simulators' only output used to be end-of-run aggregates; this package
opens the black box:

- :mod:`repro.obs.trace` — per-slot structured records through pluggable
  sinks (null / in-memory ring / JSONL file),
- :mod:`repro.obs.columnar` — the columnar trace backend: numpy
  structured-array sink with memory-mapped ``.npy`` persistence,
  lossless JSONL converters, and vectorized breakdown / exact-quantile
  analytics for million-record traces,
- :mod:`repro.obs.metrics` — a counters/gauges/histograms registry with a
  shared no-op mode for zero-cost disabled instrumentation,
- :mod:`repro.obs.profile` — phase timers for the fast engine's hot loop
  (slots/sec, per-phase wall-time breakdown),
- :mod:`repro.obs.compare` — trace diffing that pinpoints the first slot
  where two engine runs diverge,
- :mod:`repro.obs.requests` — request-lifecycle tracing: one record per
  measured-client access with a wait decomposition,
- :mod:`repro.obs.latency` — log-bucketed latency histograms with
  interpolated p50/p90/p99 quantiles,
- :mod:`repro.obs.sampling` — 1-in-N and seeded-reservoir sampling
  policies for the request tracer, with inverse-probability correction
  weights so sampled aggregates estimate the full population,
- :mod:`repro.obs.dashboard` — live terminal telemetry: sweep-progress
  monitor (``figures --watch``) and net STATS frame rendering (``serve
  --watch`` / ``loadgen --watch``) over one metrics vocabulary,
- :mod:`repro.obs.manifest` — run/sweep provenance manifests (seed,
  config, versions, timestamp),
- :mod:`repro.obs.server_metrics` — adapter mirroring the broadcast
  server's own slot/queue counters into a metrics registry, so
  simulated runs and the :mod:`repro.net` server share one
  metrics-export path.

Everything is opt-in: engines built without a tracer/profiler run the
exact pre-observability hot path.
"""

from repro.obs.columnar import (
    REQUEST_DTYPE,
    SLOT_DTYPE,
    ColumnarSink,
    array_to_records,
    breakdown_of_array,
    columnar_to_jsonl,
    exact_quantiles,
    jsonl_to_columnar,
    load_columnar,
    measured_miss_waits,
    records_to_array,
    slot_summary,
    table_of,
)
from repro.obs.compare import TraceDiff, capture_trace, compare_engines, diff_traces
from repro.obs.dashboard import (
    Dashboard,
    SweepMonitor,
    quantiles_from_bucket_snapshot,
    render_stats_frame,
)
from repro.obs.latency import LATENCY_BUCKETS, LatencyHistogram, log_buckets
from repro.obs.manifest import (
    MANIFEST_VERSION,
    config_to_dict,
    package_version,
    run_manifest,
    sweep_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
)
from repro.obs.profile import HotLoopProfile, PhaseTimer, profile_run
from repro.obs.sampling import (
    EveryNSampling,
    ReservoirSampling,
    SamplingPolicy,
    sample_stream,
)
from repro.obs.server_metrics import ServerMetricsAdapter, bind_server_metrics
from repro.obs.requests import (
    RequestRecord,
    RequestTracer,
    WaitBreakdown,
    breakdown_of,
    read_requests_jsonl,
)
from repro.obs.trace import (
    JsonlSink,
    MemorySink,
    NullSink,
    SlotRecord,
    SlotTracer,
    TraceSink,
    read_jsonl,
)

__all__ = [
    "SlotRecord",
    "SlotTracer",
    "TraceSink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "read_jsonl",
    "ColumnarSink",
    "SLOT_DTYPE",
    "REQUEST_DTYPE",
    "load_columnar",
    "table_of",
    "records_to_array",
    "array_to_records",
    "jsonl_to_columnar",
    "columnar_to_jsonl",
    "breakdown_of_array",
    "measured_miss_waits",
    "exact_quantiles",
    "slot_summary",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "PhaseTimer",
    "HotLoopProfile",
    "profile_run",
    "TraceDiff",
    "diff_traces",
    "capture_trace",
    "compare_engines",
    "RequestRecord",
    "RequestTracer",
    "WaitBreakdown",
    "breakdown_of",
    "read_requests_jsonl",
    "LatencyHistogram",
    "LATENCY_BUCKETS",
    "log_buckets",
    "MANIFEST_VERSION",
    "config_to_dict",
    "package_version",
    "run_manifest",
    "sweep_manifest",
    "SamplingPolicy",
    "EveryNSampling",
    "ReservoirSampling",
    "sample_stream",
    "Dashboard",
    "SweepMonitor",
    "render_stats_frame",
    "quantiles_from_bucket_snapshot",
    "ServerMetricsAdapter",
    "bind_server_metrics",
]
