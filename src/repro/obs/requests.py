"""Request-lifecycle tracing: one structured record per MC access.

PR 1's slot tracer shows what the *server* did each broadcast unit; this
module follows the paper's headline quantity from the other side — where
each measured-client access's wait actually went:

    issued -> cache hit            (wait 0)
    issued -> miss -> [pull sent -> enqueued | duplicate | dropped]
           -> ... queue / push wait ... -> page on air -> served

A :class:`RequestTracer` attaches to either engine (they share the
:class:`~repro.client.measured.MeasuredClient`, so the hook points are
identical by construction) and emits one :class:`RequestRecord` per
completed access through the same sink protocol the slot tracer uses
(:class:`~repro.obs.trace.NullSink` / ``MemorySink`` / ``JsonlSink``).
Alongside the per-request stream it accumulates a
:class:`WaitBreakdown` — the think / push-wait / pull-queue-wait /
service decomposition over the measured phase — and a
:class:`~repro.obs.latency.LatencyHistogram` of measured waits for
quantile reporting.

Tracing is opt-in; engines built without a request tracer keep the PR 1
hot-loop budget (one hoisted boolean test per slot).
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Optional

from repro.obs.latency import LatencyHistogram
from repro.obs.trace import TraceSink

__all__ = [
    "OPTIONAL_REQUEST_FIELDS",
    "RequestRecord",
    "RequestTracer",
    "WaitBreakdown",
    "breakdown_of",
    "read_requests_jsonl",
]


@dataclass(frozen=True, slots=True)
class RequestRecord:
    """The full lifecycle of one measured-client access."""

    #: MC access sequence number (0-based, all phases).
    index: int
    #: Page the MC wanted.
    page: int
    #: Time the access was issued (broadcast units).
    issued_at: float
    #: True when the access fell inside the measured phase.
    measured: bool
    #: True when the cache answered (wait is then 0).
    hit: bool
    #: True when the MC sent a backchannel request for the page.
    pull_sent: bool
    #: What the server queue did with the MC's request:
    #: "enqueued" / "duplicate" / "dropped", None when no pull was sent.
    pull_outcome: Optional[str]
    #: Push wait the MC would face if it never pulled: slots until the
    #: page's next scheduled appearance (+1 for its transmission), None
    #: for pages not on the push program ("no safety net").
    predicted_push_wait: Optional[float]
    #: Backchannel requests for this page (any client, the MC included)
    #: observed at the server queue while the access was outstanding.
    page_offers: int
    #: Slot boundary at which the page started transmitting (None for
    #: cache hits).
    on_air_at: Optional[float]
    #: Time the page was in the client's hands.
    served_at: float
    #: What satisfied the access: "cache", "push", or "pull".
    served_kind: str
    #: Total response time: served_at - issued_at.
    wait: float
    #: Wait before the page went on air (push wait or pull queue wait,
    #: depending on served_kind); None for cache hits.
    queue_wait: Optional[float]
    #: Time on the air until delivery (<= 1 slot); None for cache hits.
    service: Optional[float]

    def to_dict(self) -> dict:
        """JSON-ready plain-dict form."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RequestRecord":
        """Inverse of :meth:`to_dict`, tolerant across trace versions.

        Unknown keys are ignored (a newer writer may add fields) and
        missing Optional fields default to ``None`` (an older writer may
        lack them); a missing *required* field raises a ValueError that
        names it, instead of a bare KeyError.
        """
        fields = {}
        for name in cls.__slots__:
            if name in data:
                fields[name] = data[name]
            elif name in OPTIONAL_REQUEST_FIELDS:
                fields[name] = None
            else:
                raise ValueError(
                    f"request trace record missing required field {name!r}")
        return cls(**fields)


#: RequestRecord fields typed Optional: absent keys in a serialized
#: record default to None instead of failing the load (these are also
#: the columnar backend's null-mask columns, in this order).
OPTIONAL_REQUEST_FIELDS: tuple[str, ...] = (
    "pull_outcome", "predicted_push_wait", "on_air_at", "queue_wait",
    "service")


def read_requests_jsonl(path: str | Path) -> list[RequestRecord]:
    """Load a request trace previously written through a ``JsonlSink``."""
    records = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(RequestRecord.from_dict(json.loads(line)))
    return records


@dataclass
class WaitBreakdown:
    """Where the measured phase's client time went, by lifecycle stage.

    Counts cover measured accesses only (matching ``RunResult``).  The
    wait totals decompose exactly: for every miss,
    ``queue_wait + service == wait``, with ``queue_wait`` attributed to
    ``push_wait`` or ``pull_wait`` by the kind of slot that served it.
    """

    #: Event counts.  Exact ints for full traces; weighted (possibly
    #: fractional) population estimates when the records came through a
    #: sampling policy (see :mod:`repro.obs.sampling`).
    accesses: float = 0
    hits: float = 0
    misses: float = 0
    pulls_sent: float = 0
    pulls_enqueued: float = 0
    pulls_duplicate: float = 0
    pulls_dropped: float = 0
    served_push: float = 0
    served_pull: float = 0
    #: Total think time (accesses x ThinkTime; the engine fills it in).
    think: float = 0.0
    #: Total wait before the page aired, split by the serving slot kind.
    push_wait: float = 0.0
    pull_wait: float = 0.0
    #: Total on-air transmission time.
    service: float = 0.0

    def add(self, record: RequestRecord, weight: float = 1) -> None:
        """Fold one completed record in (caller filters to measured).

        ``weight`` is the record's inverse-probability correction when it
        came through a sampling policy: the record counts as ``weight``
        identical accesses, turning the breakdown into an unbiased
        estimate of the full population's.  The default of integer ``1``
        keeps full traces on the exact integer/float arithmetic they had
        before sampling existed (``1 * x`` is exactly ``x``).
        """
        self.accesses += weight
        if record.hit:
            self.hits += weight
            return
        self.misses += weight
        if record.pull_sent:
            self.pulls_sent += weight
            if record.pull_outcome == "enqueued":
                self.pulls_enqueued += weight
            elif record.pull_outcome == "duplicate":
                self.pulls_duplicate += weight
            elif record.pull_outcome == "dropped":
                self.pulls_dropped += weight
        queue_wait = record.queue_wait or 0.0
        if record.served_kind == "pull":
            self.served_pull += weight
            self.pull_wait += weight * queue_wait
        else:
            self.served_push += weight
            self.push_wait += weight * queue_wait
        self.service += weight * (record.service or 0.0)

    # -- derived views -----------------------------------------------------
    @property
    def total_wait(self) -> float:
        """Total blocked time (push + pull queue waits + service)."""
        return self.push_wait + self.pull_wait + self.service

    @property
    def mean_wait(self) -> float:
        """Mean response time over measured misses (the paper's metric)."""
        return self.total_wait / self.misses if self.misses else math.nan

    def to_dict(self) -> dict:
        """JSON-ready plain-dict form (adds the derived totals)."""
        data = asdict(self)
        data["total_wait"] = self.total_wait
        data["mean_wait"] = self.mean_wait
        return data

    def render(self) -> str:
        """Terminal table: stage, blocked time, share, events."""
        from repro.experiments.reporting import format_table

        blocked = self.total_wait
        busy = blocked + self.think

        def share(part: float) -> str:
            return f"{part / busy:.1%}" if busy else "-"

        def events(count: float):
            # Weighted (sampled) breakdowns estimate fractional counts;
            # full traces print the exact ints they always did.
            return int(count) if float(count).is_integer() else (
                f"{count:.1f}")

        rows = [
            ("think", self.think, share(self.think), events(self.accesses)),
            ("push wait", self.push_wait, share(self.push_wait),
             events(self.served_push)),
            ("pull queue wait", self.pull_wait, share(self.pull_wait),
             events(self.served_pull)),
            ("service (on air)", self.service, share(self.service),
             events(self.misses)),
        ]
        table = format_table(
            ("stage", "broadcast units", "share", "events"), rows)
        summary = (f"accesses {events(self.accesses)} (hits "
                   f"{events(self.hits)} / misses {events(self.misses)}), "
                   f"pulls sent {events(self.pulls_sent)} "
                   f"(enqueued {events(self.pulls_enqueued)}, duplicate "
                   f"{events(self.pulls_duplicate)}, dropped "
                   f"{events(self.pulls_dropped)})")
        return f"{table}\n{summary}"


def breakdown_of(records: Iterable[RequestRecord],
                 think_time: Optional[float] = None,
                 measured_only: bool = True) -> WaitBreakdown:
    """Aggregate saved records into a :class:`WaitBreakdown`.

    Used by ``repro-broadcast report --trace`` to reconstruct the
    decomposition from a JSONL file; ``think_time`` (broadcast units per
    access) fills the think row when known.
    """
    breakdown = WaitBreakdown()
    for record in records:
        if measured_only and not record.measured:
            continue
        breakdown.add(record)
    if think_time is not None:
        breakdown.think = think_time * breakdown.accesses
    return breakdown


@dataclass
class _OpenRequest:
    """Mutable in-flight state between ``on_access`` and completion."""

    index: int
    page: int
    issued_at: float
    measured: bool
    pull_sent: bool = False
    pull_outcome: Optional[str] = None
    predicted_push_wait: Optional[float] = None
    page_offers: int = 0
    on_air_at: Optional[float] = None
    on_air_kind: Optional[str] = None


class RequestTracer:
    """Collects engine hook calls into per-request records.

    The MC is a closed loop — at most one access is outstanding — so the
    tracer is a small state machine over one :class:`_OpenRequest`.  Hook
    call order per access::

        on_access -> on_hit
        on_access -> on_miss [-> on_miss_predict] [-> on_pull]
                  -> (on_queue_offer ...) -> on_air -> on_served

    ``on_queue_offer`` is wired through
    :meth:`~repro.server.queue.BoundedRequestQueue.attach_observer`, so
    it sees *every* backchannel request (the VC's included) and counts
    the ones for the page the MC is blocked on.

    Args:
        sink: destination for completed records.
        think_time: broadcast units the MC thinks between accesses (the
            engines fill this in when left None) — used for the think row
            of :meth:`breakdown`.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`
            accumulating aggregate request counters and a wait histogram.
        sampling: optional :class:`~repro.obs.sampling.SamplingPolicy`.
            When set, only accepted accesses are traced (skipped ones
            cost a single policy call) and every kept record carries an
            inverse-probability weight through the breakdown, histogram,
            and metrics, so the aggregates estimate the full population.
            Reservoir policies hold their records back until
            :meth:`finalize`.
    """

    def __init__(self, sink: TraceSink, think_time: Optional[float] = None,
                 metrics=None, sampling=None):
        self.sink = sink
        self.think_time = think_time
        self.sampling = sampling
        self.records_emitted = 0
        #: Accesses offered to the tracer (sampled or not).
        self.accesses_seen = 0
        self.breakdown_stats = WaitBreakdown()
        #: Measured miss waits, for p50/p90/p99 reporting.
        self.wait_histogram = LatencyHistogram(
            "request_wait", "measured MC response times")
        self._open: Optional[_OpenRequest] = None
        self._next_index = 0
        self._finalized = False
        self._metrics = metrics
        if metrics is not None:
            self._m_hits = metrics.counter(
                "request_hits_total", "measured MC cache hits")
            self._m_misses = metrics.counter(
                "request_misses_total", "measured MC cache misses")
            self._m_pulls = metrics.counter(
                "request_pulls_total", "measured MC backchannel requests")
            self._m_wait = metrics.histogram(
                "request_wait", "measured MC response times",
                buckets=self.wait_histogram.bounds)

    # -- engine hooks ------------------------------------------------------
    def on_access(self, page: int, now: float, measured: bool) -> None:
        """The MC issued an access for ``page`` at ``now``.

        With a sampling policy attached, a rejected access leaves no
        open request — every later hook is a no-op for it (they all
        guard on ``self._open``), which is where sampling's speedup
        comes from.
        """
        index = self._next_index
        self._next_index += 1
        self.accesses_seen += 1
        if self.sampling is not None and not self.sampling.accept(index):
            self._open = None
            return
        self._open = _OpenRequest(index=index, page=page,
                                  issued_at=now, measured=measured)

    def on_hit(self, page: int, now: float) -> None:
        """The cache answered the open access."""
        open_ = self._open
        if open_ is None:
            return
        self._emit(RequestRecord(
            index=open_.index, page=page, issued_at=open_.issued_at,
            measured=open_.measured, hit=True, pull_sent=False,
            pull_outcome=None, predicted_push_wait=None, page_offers=0,
            on_air_at=None, served_at=now, served_kind="cache", wait=0.0,
            queue_wait=None, service=None))

    def on_miss(self, page: int, now: float) -> None:
        """The open access missed the cache; the MC now blocks."""
        # Nothing to record yet — the open request simply stays open
        # until the broadcast (or a pull response) serves it.

    def on_miss_predict(self, push_wait: float) -> None:
        """Predicted push wait for the open miss (engine-supplied).

        ``inf`` (page not on the push program) is stored as None so the
        records stay strict-JSON serializable.
        """
        if self._open is not None:
            self._open.predicted_push_wait = (
                None if math.isinf(push_wait) else push_wait)

    def on_pull(self, page: int, now: float, outcome) -> None:
        """The MC sent a backchannel request; ``outcome`` is its
        :class:`~repro.server.queue.Offer`."""
        open_ = self._open
        if open_ is not None and open_.page == page:
            open_.pull_sent = True
            open_.pull_outcome = getattr(outcome, "value", str(outcome))

    def on_queue_offer(self, page: int, outcome) -> None:
        """A backchannel request reached the server queue (any client)."""
        open_ = self._open
        if open_ is not None and open_.page == page:
            open_.page_offers += 1

    def on_air(self, now: float, kind) -> None:
        """The awaited page started transmitting at slot boundary ``now``.

        ``kind`` is the serving :class:`~repro.server.broadcast_server.\
SlotKind` (push or pull).
        """
        open_ = self._open
        if open_ is not None and open_.on_air_at is None:
            open_.on_air_at = now
            open_.on_air_kind = getattr(kind, "value", str(kind))

    def on_served(self, page: int, now: float) -> None:
        """The awaited page arrived; close and emit the record."""
        open_ = self._open
        if open_ is None:
            return
        wait = now - open_.issued_at
        on_air = open_.on_air_at
        if on_air is not None:
            queue_wait = max(0.0, on_air - open_.issued_at)
            service = now - max(on_air, open_.issued_at)
        else:
            # The serving slot was never observed (shouldn't happen when
            # both hook sides are wired); count the whole wait as queueing.
            queue_wait = wait
            service = 0.0
        self._emit(RequestRecord(
            index=open_.index, page=page, issued_at=open_.issued_at,
            measured=open_.measured, hit=False,
            pull_sent=open_.pull_sent, pull_outcome=open_.pull_outcome,
            predicted_push_wait=open_.predicted_push_wait,
            page_offers=open_.page_offers, on_air_at=on_air,
            served_at=now, served_kind=open_.on_air_kind or "push",
            wait=wait, queue_wait=queue_wait, service=service))

    # -- results -----------------------------------------------------------
    def _emit(self, record: RequestRecord) -> None:
        self._open = None
        if self.sampling is None:
            self._deliver(record, 1)
            return
        weight = self.sampling.commit(record)
        if weight is not None:
            self._deliver(record, weight)
        # weight None: the policy holds the record (reservoir); it is
        # delivered — or evicted — at finalize() time.

    def _deliver(self, record: RequestRecord, weight: float) -> None:
        self.sink.emit(record)
        self.records_emitted += 1
        if record.measured:
            self.breakdown_stats.add(record, weight)
            if not record.hit:
                self.wait_histogram.observe(record.wait, weight)
            if self._metrics is not None:
                if record.hit:
                    self._m_hits.inc(weight)
                else:
                    self._m_misses.inc(weight)
                    self._m_wait.observe(record.wait, weight)
                if record.pull_sent:
                    self._m_pulls.inc(weight)

    def finalize(self) -> None:
        """Flush records a deferring sampling policy held back.

        Idempotent; called automatically by :meth:`breakdown`,
        :meth:`wait_quantiles`, and :meth:`close`.  A no-op for full
        traces and streaming policies.
        """
        if self._finalized or self.sampling is None:
            return
        self._finalized = True
        for record, weight in self.sampling.drain():
            self._deliver(record, weight)

    def breakdown(self) -> WaitBreakdown:
        """The measured-phase wait decomposition (think row filled when
        ``think_time`` is known)."""
        self.finalize()
        stats = self.breakdown_stats
        if self.think_time is not None:
            stats.think = self.think_time * stats.accesses
        return stats

    def wait_quantiles(self) -> Optional[dict[str, float]]:
        """p50/p90/p99 of measured miss waits (None before any miss).

        Sampled tracers report weighted quantiles — unbiased estimates
        of the full-trace quantiles, since the policies sample by index,
        never by value.
        """
        self.finalize()
        return self.wait_histogram.quantiles()

    def close(self) -> None:
        """Flush any deferred sampled records and close the sink."""
        self.finalize()
        self.sink.close()
