"""Slot-level tracing: structured per-slot records through pluggable sinks.

Both simulation engines can attach a :class:`SlotTracer`; the engine then
emits one :class:`SlotRecord` per broadcast slot it completes, snapshotted
at the instant the server ticks (after the measured client's boundary
activity, before the slot's virtual-client arrivals).  Because the two
engines pin the same within-slot event order (DESIGN.md §6), the records
are directly comparable: on a deterministic Pure-Push run the reference
and fast engines produce *identical* traces, which is what
:mod:`repro.obs.compare` exploits to pinpoint divergences.

Sinks decide what happens to the records:

- :class:`NullSink` discards them (measures pure hook overhead),
- :class:`MemorySink` keeps them in an optional-capacity ring buffer,
- :class:`JsonlSink` streams them to a JSON-lines file.

Tracing is strictly opt-in — engines built without a tracer skip every
hook, so the default hot path is untouched.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import IO, Optional

from repro.obs.events import SLOT_KINDS

__all__ = [
    "OPTIONAL_SLOT_FIELDS",
    "SlotRecord",
    "TraceSink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "SlotTracer",
    "read_jsonl",
]

#: SlotRecord fields typed Optional: absent keys in a serialized record
#: default to None instead of failing the load (these are also the
#: columnar backend's null-mask columns, in this order).
OPTIONAL_SLOT_FIELDS: tuple[str, ...] = ("page", "mc_waiting")


@dataclass(frozen=True, slots=True)
class SlotRecord:
    """Everything observable about one broadcast slot.

    The snapshot instant is right after the server emitted the slot: queue
    depth and cumulative queue counters reflect every request that arrived
    up to (and including) the slot boundary, but none of the Poisson
    arrivals strictly inside the slot — those land in the next record's
    ``vc_arrivals``.
    """

    #: Slot index (0-based broadcast unit).
    slot: int
    #: What the slot carried: "push", "pull", "padding", or "idle".
    kind: str
    #: Page transmitted (None for padding / idle slots).
    page: Optional[int]
    #: Backchannel queue depth after the slot was emitted.
    queue_depth: int
    #: Cumulative queue counters at the same instant (reset with the
    #: engine's measurement phases, like every other statistic).
    enqueued: int
    duplicates: int
    dropped: int
    served: int
    #: Page the measured client is blocked on (None while thinking).
    mc_waiting: Optional[int]
    #: MC backchannel requests since the previous record.
    mc_arrivals: int
    #: VC requests reaching the queue since the previous record.
    vc_arrivals: int

    def to_dict(self) -> dict:
        """JSON-ready plain-dict form."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SlotRecord":
        """Inverse of :meth:`to_dict`, tolerant across trace versions.

        Unknown keys are ignored (a newer writer may add fields) and
        missing Optional fields default to ``None`` (an older writer may
        lack them); a missing *required* field raises a ValueError that
        names it, instead of a bare KeyError.
        """
        fields = {}
        for name in cls.__slots__:
            if name in data:
                fields[name] = data[name]
            elif name in OPTIONAL_SLOT_FIELDS:
                fields[name] = None
            else:
                raise ValueError(
                    f"slot trace record missing required field {name!r}")
        return cls(**fields)


class TraceSink:
    """Destination for trace records.  Subclasses override :meth:`emit`."""

    def emit(self, record: SlotRecord) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (idempotent)."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullSink(TraceSink):
    """Counts records and drops them (for overhead measurements)."""

    def __init__(self):
        self.emitted = 0

    def emit(self, record: SlotRecord) -> None:
        self.emitted += 1


class MemorySink(TraceSink):
    """Keeps records in memory; a ring buffer when ``capacity`` is set."""

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive")
        self._ring: deque[SlotRecord] = deque(maxlen=capacity)
        self.emitted = 0

    @property
    def records(self) -> list[SlotRecord]:
        """The retained records, oldest first."""
        return list(self._ring)

    def emit(self, record: SlotRecord) -> None:
        self._ring.append(record)
        self.emitted += 1

    def clear(self) -> None:
        """Drop the retained records (keeps the emitted count)."""
        self._ring.clear()


class JsonlSink(TraceSink):
    """Streams records to a JSON-lines file, one object per slot."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._file: Optional[IO[str]] = self.path.open("w")
        self.emitted = 0

    def emit(self, record: SlotRecord) -> None:
        if self._file is None:
            raise ValueError(f"sink for {self.path} is closed")
        json.dump(record.to_dict(), self._file, separators=(",", ":"))
        self._file.write("\n")
        self.emitted += 1

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


def read_jsonl(path: str | Path, cls=SlotRecord) -> list:
    """Load a trace previously written by :class:`JsonlSink`.

    ``cls`` is the record type to rebuild — any class with a
    ``from_dict`` classmethod (e.g.
    :class:`~repro.obs.requests.RequestRecord` for request traces).
    """
    records = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(cls.from_dict(json.loads(line)))
    return records


class SlotTracer:
    """Collects engine hook calls into per-slot records.

    The engines call :meth:`on_mc_request` / :meth:`on_vc_request` as
    backchannel requests reach the server queue and :meth:`on_slot` right
    after each server tick; the tracer folds the arrival counts since the
    previous tick into the record and hands it to the sink.  An optional
    :class:`~repro.obs.metrics.MetricsRegistry` additionally accumulates
    aggregate counters and a queue-depth histogram.
    """

    def __init__(self, sink: TraceSink, metrics=None):
        self.sink = sink
        self.records_emitted = 0
        self._mc_arrivals = 0
        self._vc_arrivals = 0
        self._last_dropped = 0
        self._metrics = metrics
        if metrics is not None:
            self._slot_counters = {
                kind: metrics.counter(f"trace_slots_{kind}_total",
                                      f"slots that carried {kind}")
                for kind in SLOT_KINDS}
            self._dropped = metrics.counter(
                "trace_requests_dropped_total",
                "requests dropped at the snapshot instants")
            self._depth_hist = metrics.histogram(
                "trace_queue_depth", "queue depth sampled per slot",
                buckets=(0, 1, 2, 5, 10, 25, 50, 100, 250))

    def on_mc_request(self, page: int) -> None:
        """The measured client sent a backchannel request for ``page``."""
        self._mc_arrivals += 1

    def on_vc_request(self, page: int) -> None:
        """A virtual-client request for ``page`` reached the queue."""
        self._vc_arrivals += 1

    def on_slot(self, slot: int, kind, page: Optional[int], queue,
                mc_waiting: Optional[int]) -> None:
        """The server emitted slot ``slot``; snapshot and ship a record.

        ``kind`` is a :class:`~repro.server.broadcast_server.SlotKind`;
        ``queue`` the server's
        :class:`~repro.server.queue.BoundedRequestQueue`.
        """
        record = SlotRecord(
            slot=slot,
            kind=kind.value,
            page=page,
            queue_depth=len(queue),
            enqueued=queue.enqueued,
            duplicates=queue.duplicates,
            dropped=queue.dropped,
            served=queue.served,
            mc_waiting=mc_waiting,
            mc_arrivals=self._mc_arrivals,
            vc_arrivals=self._vc_arrivals,
        )
        self._mc_arrivals = 0
        self._vc_arrivals = 0
        self.sink.emit(record)
        self.records_emitted += 1
        if self._metrics is not None:
            self._slot_counters[record.kind].inc()
            # The queue counter is cumulative (and resets with measurement
            # phases); difference it into a monotonic trace-level counter.
            delta = record.dropped - self._last_dropped
            self._dropped.inc(delta if delta > 0 else 0)
            self._last_dropped = record.dropped
            self._depth_hist.observe(record.queue_depth)

    def close(self) -> None:
        """Close the underlying sink."""
        self.sink.close()
