"""Trace diffing: pinpoint where two engine runs diverge.

The cross-engine tests (``tests/integration/test_cross_engine.py``) can
say *that* the reference and fast engines disagree; this module says
*where*.  Both engines are run with a :class:`~repro.obs.trace.MemorySink`
tracer over the same configuration and the per-slot records are compared
field by field: the report names the first divergent slot, the fields
that differ, and a window of context records before it.

On deterministic configurations (Pure-Push, any seed) the traces must be
identical — an empty diff.  Stochastic algorithms consume randomness in
different orders across the engines, so their traces legitimately differ;
the diff is still useful there for eyeballing *when* behaviour separates
(e.g. the first dropped request).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional, Sequence

from repro.obs.trace import MemorySink, SlotRecord, SlotTracer

__all__ = ["TraceDiff", "diff_traces", "capture_trace", "compare_engines"]

#: Record fields compared, in reporting order.
_COMPARED_FIELDS: tuple[str, ...] = tuple(
    f.name for f in fields(SlotRecord))


@dataclass(frozen=True)
class TraceDiff:
    """Outcome of comparing two slot traces."""

    #: First slot index whose records differ (None when the common prefix
    #: is identical).
    divergent_slot: Optional[int]
    #: Names of the fields that differ at the divergent slot.
    fields: tuple[str, ...]
    #: The two records at the divergence (None when no divergence).
    left: Optional[SlotRecord]
    right: Optional[SlotRecord]
    #: Matching records immediately before the divergence (context window).
    context: tuple[SlotRecord, ...]
    #: Full trace lengths (they may differ by the engines' stop slack).
    length_left: int
    length_right: int

    @property
    def identical(self) -> bool:
        """True when both traces match record for record, full length."""
        return (self.divergent_slot is None
                and self.length_left == self.length_right)

    @property
    def empty(self) -> bool:
        """True when the compared common prefix shows no divergence."""
        return self.divergent_slot is None

    def format(self) -> str:
        """Human-readable divergence report."""
        if self.empty:
            lines = [f"no divergence in {min(self.length_left, self.length_right)} "
                     f"compared slots"]
            if self.length_left != self.length_right:
                lines.append(
                    f"note: trace lengths differ "
                    f"({self.length_left} vs {self.length_right} records)")
            return "\n".join(lines)
        lines = [
            f"first divergence at slot {self.divergent_slot} "
            f"(fields: {', '.join(self.fields)})",
        ]
        for record in self.context:
            lines.append(f"  = {_format_record(record)}")
        assert self.left is not None and self.right is not None
        lines.append(f"  < {_format_record(self.left)}")
        lines.append(f"  > {_format_record(self.right)}")
        for name in self.fields:
            lines.append(f"    {name}: {getattr(self.left, name)!r} != "
                         f"{getattr(self.right, name)!r}")
        return "\n".join(lines)


def _format_record(record: SlotRecord) -> str:
    waiting = ("-" if record.mc_waiting is None
               else str(record.mc_waiting))
    page = "-" if record.page is None else str(record.page)
    return (f"slot {record.slot:>6} {record.kind:<7} page={page:<5} "
            f"qdepth={record.queue_depth:<3} "
            f"enq={record.enqueued} dup={record.duplicates} "
            f"drop={record.dropped} served={record.served} "
            f"mc_wait={waiting} arr=mc:{record.mc_arrivals}/"
            f"vc:{record.vc_arrivals}")


def diff_traces(left: Sequence[SlotRecord], right: Sequence[SlotRecord],
                context: int = 3) -> TraceDiff:
    """Compare two traces; report the first divergent slot with context.

    Only the common prefix is compared record by record — the engines'
    stop conditions can legitimately differ by a trailing slot — but the
    full lengths are reported so callers can insist on strict equality
    via :attr:`TraceDiff.identical`.
    """
    if context < 0:
        raise ValueError("context must be non-negative")
    common = min(len(left), len(right))
    for index in range(common):
        record_l, record_r = left[index], right[index]
        if record_l == record_r:
            continue
        differing = tuple(
            name for name in _COMPARED_FIELDS
            if getattr(record_l, name) != getattr(record_r, name))
        return TraceDiff(
            divergent_slot=record_l.slot,
            fields=differing,
            left=record_l,
            right=record_r,
            context=tuple(left[max(0, index - context):index]),
            length_left=len(left),
            length_right=len(right),
        )
    return TraceDiff(divergent_slot=None, fields=(), left=None, right=None,
                     context=(), length_left=len(left),
                     length_right=len(right))


def capture_trace(config, engine: str = "fast",
                  warmup: bool = False) -> list[SlotRecord]:
    """Run ``config`` on one engine with an in-memory tracer attached.

    ``engine`` is ``"fast"`` or ``"reference"``.  The fast engine is
    forced down the general slot loop so Pure-Push runs produce a real
    per-slot trace (the analytic shortcut never ticks slots).
    """
    from repro.core.fast import FastEngine
    from repro.core.simulation import ReferenceEngine

    sink = MemorySink()
    tracer = SlotTracer(sink)
    if engine == "fast":
        eng = FastEngine(config, force_general=True, tracer=tracer)
    elif engine == "reference":
        eng = ReferenceEngine(config, tracer=tracer)
    else:
        raise ValueError(f"unknown engine {engine!r}")
    if warmup:
        eng.run_warmup()
    else:
        eng.run()
    return sink.records


def compare_engines(config, context: int = 3,
                    warmup: bool = False) -> TraceDiff:
    """Trace ``config`` on both engines and diff the records.

    The reference engine is the left side, the fast engine the right, so
    a report reads "reference expected X, fast produced Y".
    """
    reference = capture_trace(config, engine="reference", warmup=warmup)
    fast = capture_trace(config, engine="fast", warmup=warmup)
    return diff_traces(reference, fast, context=context)
