"""A lightweight counters / gauges / histograms registry.

The registry is the aggregate side of the observability layer: tracers,
engines, and tools register named instruments and bump them; a snapshot is
a plain nested dict, render() a human-readable table.  Design constraints:

- **near-zero overhead when disabled** — a disabled registry hands out
  shared no-op instruments whose methods do nothing, so instrumented code
  never needs ``if metrics:`` guards;
- **no dependencies** — histogram summary statistics reuse the streaming
  :class:`~repro.sim.monitor.Tally` the simulation kernel already ships,
  so a histogram's mean/stddev stay numerically stable over millions of
  observations.

Names are free-form but conventionally ``snake_case`` with a ``_total``
suffix for counters (the prometheus idiom).
"""

from __future__ import annotations

import bisect
import math
from typing import Sequence

from repro.sim.monitor import Tally

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
]

#: Default histogram bucket upper bounds (broadcast-unit scale).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help_: str = ""):
        self.name = name
        self.help = help_
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self._value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self._value}


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help_: str = ""):
        self.name = name
        self.help = help_
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        self._value = value

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self._value}


class Histogram:
    """Bucketed distribution plus streaming summary statistics.

    ``buckets`` are inclusive upper bounds; one overflow bucket (+inf) is
    appended automatically.  Summary statistics (count/mean/stddev/min/max)
    come from a Welford :class:`~repro.sim.monitor.Tally`.
    """

    __slots__ = ("name", "help", "bounds", "counts", "_tally")

    def __init__(self, name: str, help_: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        bounds = tuple(sorted(float(b) for b in buckets))
        if len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be distinct")
        self.name = name
        self.help = help_
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for the +inf overflow
        self._tally = Tally()

    def observe(self, value: float, weight: float = 1) -> None:
        """Record one observation, optionally carrying a frequency weight.

        ``weight`` is the inverse-probability correction factor a sampled
        stream attaches to each kept observation (see
        :mod:`repro.obs.sampling`); the default of integer ``1`` keeps
        unweighted histograms on the exact integer-count / plain-Welford
        path, so unsampled runs stay bit-identical.
        """
        self.counts[bisect.bisect_left(self.bounds, value)] += weight
        if weight == 1:
            self._tally.add(value)
        else:
            self._tally.add_weighted(value, weight)

    def observe_many(self, values) -> None:
        """Record a batch of unweighted observations, vectorized.

        Equivalent to calling :meth:`observe` once per value but O(batch)
        in numpy: bucket indices via ``searchsorted`` (same left-bisect
        convention as the scalar path) and the summary statistics folded
        in as one batch-moment :meth:`~repro.sim.monitor.Tally.merge`
        (exact Chan et al., so the mean/variance match the streamed
        equivalent).  The per-user fleet statistics feed thousands to
        millions of values per snapshot through this path.
        """
        import numpy as np

        arr = np.asarray(values, dtype=np.float64).ravel()
        if arr.size == 0:
            return
        if not np.isfinite(arr).all():
            raise ValueError("non-finite observation in batch")
        indices = np.searchsorted(self.bounds, arr, side="left")
        counts = self.counts
        for index, count in zip(*np.unique(indices, return_counts=True)):
            counts[int(index)] += int(count)
        mean = float(arr.mean())
        self._tally.merge(Tally.from_moments(
            int(arr.size), mean, float(np.square(arr - mean).sum()),
            float(arr.min()), float(arr.max())))

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        Bucket-wise, so it only makes sense — and is only allowed — when
        both histograms share the same bucket bounds; merging histograms
        with different bounds raises ValueError.  Summary statistics
        merge through :meth:`~repro.sim.monitor.Tally.merge` (Chan et
        al.), so the result matches observing the pooled stream
        directly, up to bucket resolution in the quantiles.
        """
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histogram {other.name!r} into {self.name!r}: "
                f"bucket bounds differ ({len(other.bounds)} vs "
                f"{len(self.bounds)} bounds)")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self._tally.merge(other._tally)

    @property
    def count(self) -> float:
        """Total observation weight (an exact int when unweighted)."""
        return self._tally.count

    @property
    def mean(self) -> float:
        return self._tally.mean

    @property
    def stddev(self) -> float:
        return self._tally.stddev

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile from the bucket histogram.

        Returns the upper bound of the non-empty bucket the quantile
        falls in (+inf maps to the observed max), NaN when empty.  The
        0- and 1-quantiles are exact: they return the observed min and
        max rather than a bucket bound — ``q=0`` would otherwise be
        satisfied by the very first bucket even when its count is 0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        tally = self._tally
        if tally.count == 0:
            return math.nan
        if q == 0.0:
            return tally.min
        if q == 1.0:
            return tally.max
        rank = q * tally.count
        cumulative = 0
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            cumulative += count
            if cumulative >= rank:
                if index == len(self.bounds):
                    return tally.max
                return self.bounds[index]
        return tally.max

    def snapshot(self) -> dict:
        tally = self._tally
        return {
            "type": "histogram",
            "count": tally.count,
            "mean": tally.mean,
            "stddev": tally.stddev,
            "min": tally.min if tally.count else math.nan,
            "max": tally.max if tally.count else math.nan,
            "buckets": {
                **{str(bound): count
                   for bound, count in zip(self.bounds, self.counts)},
                "+inf": self.counts[-1],
            },
        }


class _NullInstrument:
    """Shared do-nothing stand-in handed out by disabled registries."""

    __slots__ = ()
    name = "<disabled>"
    help = ""
    value = 0
    count = 0
    mean = math.nan
    stddev = math.nan

    def inc(self, amount=1) -> None:
        pass

    def dec(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value, weight=1) -> None:
        pass

    def observe_many(self, values) -> None:
        pass

    def merge(self, other) -> None:
        pass

    def quantile(self, q) -> float:
        return math.nan

    def snapshot(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Get-or-create home for named instruments.

    A *disabled* registry (``MetricsRegistry(enabled=False)``, or the
    module-level :data:`NULL_REGISTRY`) returns a shared no-op instrument
    from every factory and registers nothing, so instrumented code pays
    one attribute call per update and no memory.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: dict[str, object] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> list[str]:
        """Registered instrument names, sorted."""
        return sorted(self._instruments)

    def _get_or_create(self, cls, name: str, *args, **kwargs):
        if not self.enabled:
            return _NULL_INSTRUMENT
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}")
            return existing
        instrument = cls(name, *args, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help_: str = "") -> Counter:
        """Get or create the named counter."""
        return self._get_or_create(Counter, name, help_)

    def gauge(self, name: str, help_: str = "") -> Gauge:
        """Get or create the named gauge."""
        return self._get_or_create(Gauge, name, help_)

    def histogram(self, name: str, help_: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """Get or create the named histogram."""
        return self._get_or_create(Histogram, name, help_, buckets)

    def register_tally(self, name: str, tally: Tally,
                       help_: str = "") -> None:
        """Expose an externally owned :class:`Tally` in snapshots.

        The simulation's own statistics collectors (MC response-time
        tallies etc.) can be published without copying; the snapshot
        reads their state lazily.
        """
        if not self.enabled:
            return
        existing = self._instruments.get(name)
        if existing is not None and existing is not tally:
            raise TypeError(f"metric {name!r} already registered")
        self._instruments[name] = tally

    def snapshot(self) -> dict:
        """Nested plain-dict state of every instrument."""
        out = {}
        for name, instrument in sorted(self._instruments.items()):
            if isinstance(instrument, Tally):
                out[name] = {
                    "type": "summary",
                    "count": instrument.count,
                    "mean": instrument.mean,
                    "stddev": instrument.stddev,
                    "min": instrument.min if instrument.count else math.nan,
                    "max": instrument.max if instrument.count else math.nan,
                }
            else:
                out[name] = instrument.snapshot()
        return out

    def render(self) -> str:
        """Human-readable table of the current snapshot."""
        lines = []
        width = max((len(n) for n in self._instruments), default=4)
        for name, state in self.snapshot().items():
            kind = state.get("type", "?")
            if kind in ("counter", "gauge"):
                detail = f"{state['value']:g}"
            else:
                detail = (f"count={state['count']} mean={state['mean']:.4g} "
                          f"min={state['min']:.4g} max={state['max']:.4g}")
            lines.append(f"{name:<{width}}  {kind:<9}  {detail}")
        return "\n".join(lines) if lines else "(no metrics registered)"


#: A process-wide disabled registry: the no-op default for instrumentation.
NULL_REGISTRY = MetricsRegistry(enabled=False)
