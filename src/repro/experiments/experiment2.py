"""Experiment 2 — reducing backchannel usage with thresholds (Section 4.2).

Figures 6(a)/6(b): IPP response time across server loads for ThresPerc in
{0%, 10%, 25%, 35%}, at PullBW 50% and 30%.  The headline result is the
scalability gain: each threshold step moves the crossover with Pure-Push
to a larger client population.
"""

from __future__ import annotations

from repro.core.algorithms import Algorithm
from repro.experiments.base import (
    FigureResult,
    Profile,
    sweep_series,
)
from repro.obs.manifest import sweep_manifest
from repro.experiments.experiment1 import _base, _flat_push_series

__all__ = ["figure_6", "FIGURE6_TTRS"]

#: Figure 6 samples the load axis more densely than Figure 3.
FIGURE6_TTRS: tuple[int, ...] = (10, 25, 35, 50, 75, 100, 250)


def figure_6(profile: Profile, pull_bw: float,
             ttrs=FIGURE6_TTRS) -> FigureResult:
    """Figure 6(a) for ``pull_bw=0.50``, Figure 6(b) for ``pull_bw=0.30``."""
    series = [_flat_push_series("Push", _base(Algorithm.PURE_PUSH),
                                ttrs, profile)]
    pull_configs = [_base(Algorithm.PURE_PULL, client__think_time_ratio=ttr)
                    for ttr in ttrs]
    series.append(sweep_series("Pull", pull_configs, ttrs, profile))
    for thresh in (0.35, 0.25, 0.10, 0.0):
        configs = [
            _base(Algorithm.IPP,
                  client__think_time_ratio=ttr,
                  server__pull_bw=pull_bw,
                  server__thresh_perc=thresh)
            for ttr in ttrs
        ]
        series.append(sweep_series(f"IPP ThresPerc {thresh:.0%}",
                                   configs, ttrs, profile))
    figure_id = "6a" if pull_bw >= 0.5 else "6b"
    return FigureResult(
        figure_id=figure_id,
        title=f"Influence of threshold on response time "
              f"(PullBW={pull_bw:.0%})",
        x_label="Think Time Ratio",
        y_label="Response Time (Broadcast Units)",
        series=series,
        manifest=sweep_manifest(profile),
    )
