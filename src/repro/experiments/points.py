"""Representative sweep points — one interesting config per figure.

The figure functions build their sweep configs internally; tracing or
profiling "a figure" therefore needs a stand-in: one configuration from
the figure's sweep that exercises its characteristic behaviour (the
mid-load IPP point for the steady-state figures, a chopped program for
Experiment 3, ...).  ``repro-broadcast trace --figure`` and the figures
command's ``--trace`` flag resolve ids through this table.
"""

from __future__ import annotations

from repro.core.algorithms import Algorithm
from repro.core.config import SystemConfig

__all__ = ["REPRESENTATIVE_POINTS", "representative_config"]


def _point(algorithm: Algorithm, **overrides) -> SystemConfig:
    return SystemConfig(algorithm=algorithm).with_(**overrides)


#: Figure id -> one configuration from that figure's sweep.
REPRESENTATIVE_POINTS: dict[str, SystemConfig] = {
    # Experiment 1: steady state (3a/3b), warm-up loads (4a/4b), noise (5).
    "3a": _point(Algorithm.IPP, client__think_time_ratio=10,
                 client__steady_state_perc=0.95, server__pull_bw=0.50),
    "3b": _point(Algorithm.IPP, client__think_time_ratio=10,
                 server__pull_bw=0.30),
    "4a": _point(Algorithm.IPP, client__think_time_ratio=25,
                 server__pull_bw=0.50),
    "4b": _point(Algorithm.IPP, client__think_time_ratio=250,
                 server__pull_bw=0.50),
    "5a": _point(Algorithm.PURE_PULL, client__think_time_ratio=25,
                 client__noise=0.15),
    "5b": _point(Algorithm.IPP, client__think_time_ratio=25,
                 client__noise=0.15, server__pull_bw=0.50),
    # Experiment 2: thresholds.
    "6a": _point(Algorithm.IPP, client__think_time_ratio=25,
                 server__pull_bw=0.50, server__thresh_perc=0.25),
    "6b": _point(Algorithm.IPP, client__think_time_ratio=25,
                 server__pull_bw=0.30, server__thresh_perc=0.25),
    # Experiment 3: restricted push programs.
    "7a": _point(Algorithm.IPP, client__think_time_ratio=25,
                 server__pull_bw=0.30, server__chop=300),
    "7b": _point(Algorithm.IPP, client__think_time_ratio=25,
                 server__pull_bw=0.30, server__thresh_perc=0.35,
                 server__chop=300),
    "8": _point(Algorithm.IPP, client__think_time_ratio=50,
                server__pull_bw=0.30, server__thresh_perc=0.35,
                server__chop=300),
}


def representative_config(fig_id: str) -> SystemConfig:
    """The representative point for ``fig_id`` (KeyError when unknown)."""
    return REPRESENTATIVE_POINTS[fig_id]
