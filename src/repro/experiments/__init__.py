"""The paper's experiments (Section 4), one function per figure.

- Experiment 1 (:mod:`~repro.experiments.experiment1`): basic push/pull
  tradeoffs — Figures 3(a), 3(b), 4(a), 4(b), 5(a), 5(b),
- Experiment 2 (:mod:`~repro.experiments.experiment2`): reducing
  backchannel usage with thresholds — Figures 6(a), 6(b),
- Experiment 3 (:mod:`~repro.experiments.experiment3`): restricting the
  push schedule — Figures 7(a), 7(b), 8.

Each figure function takes a :class:`~repro.experiments.base.Profile`
(``QUICK`` for fast shape-checks, ``FULL`` for paper-scale runs) and
returns a :class:`~repro.experiments.base.FigureResult` that renders as the
same series the paper plots.
"""

from repro.experiments.base import (
    FIGURE_SCHEMA_VERSION,
    FigureResult,
    FigureSeries,
    Profile,
    QUICK,
    FULL,
    figure_from_dict,
    load_figure,
    run_replicated,
    run_sweep,
    sweep_series,
    sweep_series_multi,
)
from repro.experiments.compare import (
    FigureComparison,
    compare_figures,
    compare_files,
)
from repro.experiments.experiment1 import (
    figure_3a,
    figure_3b,
    figure_4,
    figure_5,
)
from repro.experiments.experiment2 import figure_6
from repro.experiments.experiment3 import figure_7, figure_8
from repro.experiments.points import REPRESENTATIVE_POINTS, representative_config
from repro.experiments.reporting import render_figure
from repro.experiments.schedulers import (
    discipline_summary,
    sched_sweep_figure,
)
from repro.experiments.tracing import (
    TRACE_FORMATS,
    open_trace_sink,
    trace_representative,
    write_request_trace,
    write_slot_trace,
)

ALL_FIGURES = {
    "3a": figure_3a,
    "3b": figure_3b,
    "4a": lambda profile, **kw: figure_4(profile, think_time_ratio=25, **kw),
    "4b": lambda profile, **kw: figure_4(profile, think_time_ratio=250, **kw),
    "5a": lambda profile, **kw: figure_5(profile, variant="pull", **kw),
    "5b": lambda profile, **kw: figure_5(profile, variant="ipp", **kw),
    "6a": lambda profile, **kw: figure_6(profile, pull_bw=0.50, **kw),
    "6b": lambda profile, **kw: figure_6(profile, pull_bw=0.30, **kw),
    "7a": lambda profile, **kw: figure_7(profile, thresh_perc=0.0, **kw),
    "7b": lambda profile, **kw: figure_7(profile, thresh_perc=0.35, **kw),
    "8": figure_8,
}

__all__ = [
    "FIGURE_SCHEMA_VERSION",
    "FigureResult",
    "FigureSeries",
    "Profile",
    "QUICK",
    "FULL",
    "figure_from_dict",
    "load_figure",
    "run_replicated",
    "run_sweep",
    "sweep_series",
    "sweep_series_multi",
    "FigureComparison",
    "compare_figures",
    "compare_files",
    "figure_3a",
    "figure_3b",
    "figure_4",
    "figure_5",
    "figure_6",
    "figure_7",
    "figure_8",
    "render_figure",
    "sched_sweep_figure",
    "discipline_summary",
    "ALL_FIGURES",
    "REPRESENTATIVE_POINTS",
    "representative_config",
    "TRACE_FORMATS",
    "open_trace_sink",
    "trace_representative",
    "write_request_trace",
    "write_slot_trace",
]
