"""Pull-scheduler discipline sweeps: FIFO vs RxW vs LWF across PullBW.

The paper's server answers backchannel requests strictly first-come
first-served; :mod:`repro.server.schedulers` generalizes that into a
discipline zoo (FIFO / RxW / longest-wait-first).  This module measures
what the choice buys: the same PullBW sweep the paper's Figure 3a runs,
once per discipline, with a per-user client fleet attached so the tail
of the *user* wait distribution — where request reordering actually
matters — is visible next to the aggregate mean.

Under saturation (low PullBW, long pull queue) FIFO serves pages in
arrival order regardless of how many distinct users wait behind each
page; RxW prioritizes pages with many waiters and long first-arrival
waits, which trades a little mean response for a flatter per-user tail.
Where the queue never builds depth, all disciplines collapse onto the
same curve — the interesting comparisons are the leftmost grid points.

Every discipline's series comes from its own runs (the discipline
changes the simulation), but within a discipline the mean / p99 / max
series share runs via
:func:`~repro.experiments.base.sweep_series_multi`.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional, Sequence

from repro.core.algorithms import Algorithm
from repro.core.config import SystemConfig
from repro.core.metrics import RunResult
from repro.experiments.base import (
    FigureResult,
    Profile,
    sweep_series_multi,
)
from repro.fleet.sweep import PAPER_PULL_BWS, _fleet_stat
from repro.obs.events import SCHEDULER_DISCIPLINES
from repro.obs.manifest import sweep_manifest

__all__ = [
    "SCHED_METRICS",
    "sched_sweep_figure",
    "discipline_summary",
    "render_summary",
]


def _mean_response(result: RunResult) -> float:
    return float(result.response_miss.mean)


#: The per-discipline series plotted per sweep point, from the same runs.
SCHED_METRICS: Mapping[str, Callable[[RunResult], float]] = {
    "mean response": _mean_response,
    "fleet p99 wait": _fleet_stat("user_wait_p99"),
    "fleet max wait": _fleet_stat("user_wait_max"),
}


def sched_sweep_figure(profile: Profile, *,
                       disciplines: Sequence[str] = SCHEDULER_DISCIPLINES,
                       aging: float = 1.0,
                       num_clients: int = 2000,
                       pull_bws: Sequence[float] = PAPER_PULL_BWS,
                       think_time: Optional[float] = None) -> FigureResult:
    """Sweep PullBW once per pull-queue discipline, fleet attached.

    Args:
        profile: run-scale knobs (``QUICK`` / ``FULL``).
        disciplines: which disciplines to sweep (default: all of
            :data:`repro.obs.events.SCHEDULER_DISCIPLINES`).
        aging: RxW aging exponent (ignored by FIFO / LWF).
        num_clients: fleet population per run.
        pull_bws: the swept PullBW grid.
        think_time: mean fleet think time; defaults to scaling with the
            population so the fleet presents a ThinkTimeRatio-25
            aggregate load regardless of ``num_clients``.

    Returns a figure with ``len(disciplines) * len(SCHED_METRICS)``
    series labelled ``"<discipline> <metric>"`` over the shared PullBW
    x axis — compare-ready against any other run of this sweep.
    """
    base = SystemConfig(algorithm=Algorithm.IPP)
    if think_time is None:
        think_time = base.client.think_time * num_clients / 25.0
    base = base.with_(
        fleet__num_clients=num_clients,
        fleet__think_time=think_time,
        fleet__think_time_spread=0.5,
        fleet__zipf_offset_spread=50,
        fleet__cache_size_spread=0.5,
    )
    xs = [float(bw) for bw in pull_bws]
    series = []
    for disc in disciplines:
        configs = [base.with_(scheduler__discipline=disc,
                              scheduler__aging=aging,
                              server__pull_bw=bw) for bw in xs]
        metrics = {f"{disc} {name}": metric
                   for name, metric in SCHED_METRICS.items()}
        series.extend(sweep_series_multi(metrics, configs, xs, profile,
                                         label=f"sched-{disc}"))
    return FigureResult(
        figure_id="sched-pullbw",
        title=(f"Pull-discipline comparison vs PullBW, fleet of "
               f"{num_clients} clients (IPP)"),
        x_label="PullBW",
        y_label="Response time / user wait (broadcast units)",
        series=series,
        notes=[
            f"disciplines: {', '.join(disciplines)} (RxW aging {aging:g})",
            f"fleet think time {think_time:g} broadcast units "
            f"(aggregate load = ThinkTimeRatio "
            f"{num_clients * base.client.think_time / think_time:g})",
            "disciplines only diverge where the pull queue builds depth "
            "(the saturated low-PullBW points)",
        ],
        manifest=sweep_manifest(profile),
    )


def discipline_summary(figure: FigureResult,
                       point: int = 0) -> dict[str, dict[str, float]]:
    """Per-discipline metric values at one grid point of the sweep.

    ``point`` indexes the PullBW grid (0 = leftmost = most saturated).
    Returns ``{discipline: {metric: value}}`` — the shape CI gates on
    when asserting that RxW beats FIFO on the fleet tail under
    saturation.
    """
    summary: dict[str, dict[str, float]] = {}
    for series in figure.series:
        disc, _, metric = series.label.partition(" ")
        summary.setdefault(disc, {})[metric] = float(series.y[point])
    return summary


def render_summary(summary: Mapping[str, Mapping[str, Any]]) -> str:
    """A small aligned table of :func:`discipline_summary` output."""
    metrics = list(next(iter(summary.values()), {}))
    width = max((len(m) for m in metrics), default=0)
    lines = []
    for disc, values in summary.items():
        row = "  ".join(f"{m:>{width}}={values[m]:8.2f}" for m in metrics)
        lines.append(f"  {disc:>6}  {row}")
    return "\n".join(lines)
