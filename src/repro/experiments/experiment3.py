"""Experiment 3 — restricting the push schedule (Section 4.3).

Figures 7(a)/7(b) chop pages off the slow end of the broadcast (the whole
third disk, then part of the second) and show that removed pages are only
safe when enough pull bandwidth exists to fetch them on demand.  Figure 8
sweeps server load for several chop depths at PullBW=30%, ThresPerc=35%,
showing the ordering of the chopped programs inverting as the system
saturates.
"""

from __future__ import annotations

from repro.core.algorithms import Algorithm
from repro.experiments.base import (
    FigureResult,
    PAPER_TTRS,
    Profile,
    sweep_series,
)
from repro.experiments.experiment1 import _base, _flat_push_series
from repro.obs.manifest import sweep_manifest

__all__ = ["figure_7", "figure_8", "CHOP_STEPS"]

#: Figure 7's x axis: number of non-broadcast pages.
CHOP_STEPS: tuple[int, ...] = (0, 100, 200, 300, 400, 500, 600, 700)


def figure_7(profile: Profile, thresh_perc: float,
             chops=CHOP_STEPS, think_time_ratio: int = 25) -> FigureResult:
    """Figure 7(a) for ``thresh_perc=0.0``, 7(b) for ``thresh_perc=0.35``.

    Pure-Push keeps the full database on its program (a client could never
    recover a missing page without a backchannel) and Pure-Pull has no
    program at all, so both are flat reference lines exactly as in the
    paper.
    """
    series = [
        _flat_push_series(
            "Push",
            _base(Algorithm.PURE_PUSH,
                  client__think_time_ratio=think_time_ratio),
            chops, profile),
        # Pure-Pull ignores the push program entirely; one point suffices.
        _flat_push_series(
            "Pull",
            _base(Algorithm.PURE_PULL,
                  client__think_time_ratio=think_time_ratio),
            chops, profile),
    ]
    for pull_bw in (0.10, 0.30, 0.50):
        configs = [
            _base(Algorithm.IPP,
                  client__think_time_ratio=think_time_ratio,
                  server__pull_bw=pull_bw,
                  server__thresh_perc=thresh_perc,
                  server__chop=chop)
            for chop in chops
        ]
        series.append(sweep_series(f"IPP PullBW {pull_bw:.0%}",
                                   configs, chops, profile))
    figure_id = "7a" if thresh_perc == 0.0 else "7b"
    return FigureResult(
        figure_id=figure_id,
        title=f"Restricting push contents (ThresPerc={thresh_perc:.0%}, "
              f"ThinkTimeRatio={think_time_ratio})",
        x_label="Number of Non-Broadcast Pages",
        y_label="Response Time (Broadcast Units)",
        series=series,
        manifest=sweep_manifest(profile),
    )


def figure_8(profile: Profile, ttrs=PAPER_TTRS,
             chops=(0, 200, 300, 500, 700)) -> FigureResult:
    """Figure 8: load sensitivity of restricted push programs.

    PullBW = 30%, ThresPerc = 35%; one IPP curve per chop depth.
    """
    series = [
        _flat_push_series("Push", _base(Algorithm.PURE_PUSH), ttrs, profile),
    ]
    pull_configs = [_base(Algorithm.PURE_PULL, client__think_time_ratio=ttr)
                    for ttr in ttrs]
    series.append(sweep_series("Pull", pull_configs, ttrs, profile))
    for chop in chops:
        label = "IPP Full DB" if chop == 0 else f"IPP -{chop}"
        configs = [
            _base(Algorithm.IPP,
                  client__think_time_ratio=ttr,
                  server__pull_bw=0.30,
                  server__thresh_perc=0.35,
                  server__chop=chop)
            for ttr in ttrs
        ]
        series.append(sweep_series(label, configs, ttrs, profile))
    return FigureResult(
        figure_id="8",
        title="Server load sensitivity for restricted push "
              "(PullBW=30%, ThresPerc=35%)",
        x_label="Think Time Ratio",
        y_label="Response Time (Broadcast Units)",
        series=series,
        manifest=sweep_manifest(profile),
    )
