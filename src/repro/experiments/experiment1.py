"""Experiment 1 — basic push/pull tradeoffs (Section 4.1).

Covers steady-state performance (Figures 3a/3b), cache warm-up time
(Figures 4a/4b), and sensitivity to access-pattern disagreement
(Figures 5a/5b).
"""

from __future__ import annotations

import statistics

from repro.client.measured import WARMUP_LEVELS
from repro.core.algorithms import Algorithm
from repro.obs.manifest import sweep_manifest
from repro.core.config import SystemConfig
from repro.experiments.base import (
    FigureResult,
    FigureSeries,
    PAPER_TTRS,
    PointStats,
    Profile,
    run_replicated,
    run_sweep,
    sweep_series,
)

__all__ = ["figure_3a", "figure_3b", "figure_4", "figure_5"]


def _flat_push_series(label: str, config: SystemConfig, xs, profile: Profile,
                      ) -> FigureSeries:
    """Pure-Push is independent of the client population: run the point
    once and extend it across the x axis, exactly like the paper's flat
    line."""
    point = run_replicated(config, profile, label=label)
    return FigureSeries(label=label, x=list(xs),
                        points=[point] * len(xs))


def _base(algorithm: Algorithm, **overrides) -> SystemConfig:
    return SystemConfig(algorithm=algorithm).with_(**overrides)


def figure_3a(profile: Profile, ttrs=PAPER_TTRS) -> FigureResult:
    """Figure 3(a): steady-state response time vs ThinkTimeRatio.

    IPP at PullBW = 50%; Pull and IPP each at SteadyStatePerc 0% and 95%.
    """
    series = [_flat_push_series("Push", _base(Algorithm.PURE_PUSH),
                                ttrs, profile)]
    for steady in (0.0, 0.95):
        tag = f"{steady:.0%}"
        for algorithm, label in ((Algorithm.PURE_PULL, f"Pull {tag}"),
                                 (Algorithm.IPP, f"IPP {tag}")):
            configs = [
                _base(algorithm,
                      client__think_time_ratio=ttr,
                      client__steady_state_perc=steady,
                      server__pull_bw=0.50)
                for ttr in ttrs
            ]
            series.append(sweep_series(label, configs, ttrs, profile))
    return FigureResult(
        figure_id="3a",
        title="Steady-state client performance (IPP PullBW=50%, "
              "SteadyStatePerc varied)",
        x_label="Think Time Ratio",
        y_label="Response Time (Broadcast Units)",
        series=series,
        manifest=sweep_manifest(profile),
    )


def figure_3b(profile: Profile, ttrs=PAPER_TTRS) -> FigureResult:
    """Figure 3(b): impact of PullBW on IPP (SteadyStatePerc = 95%)."""
    series = [_flat_push_series("Push", _base(Algorithm.PURE_PUSH),
                                ttrs, profile)]
    pull_configs = [_base(Algorithm.PURE_PULL, client__think_time_ratio=ttr)
                    for ttr in ttrs]
    series.append(sweep_series("Pull", pull_configs, ttrs, profile))
    for pull_bw in (0.50, 0.30, 0.10):
        configs = [
            _base(Algorithm.IPP,
                  client__think_time_ratio=ttr,
                  server__pull_bw=pull_bw)
            for ttr in ttrs
        ]
        series.append(sweep_series(f"IPP PullBW {pull_bw:.0%}",
                                   configs, ttrs, profile))
    return FigureResult(
        figure_id="3b",
        title="Steady-state client performance (IPP PullBW varied, "
              "SteadyStatePerc=95%)",
        x_label="Think Time Ratio",
        y_label="Response Time (Broadcast Units)",
        series=series,
        manifest=sweep_manifest(profile),
    )


def _warmup_series(label: str, config: SystemConfig,
                   profile: Profile) -> FigureSeries:
    """One warm-up curve: replicated runs, per-level crossing-time means."""
    configs = [profile.apply(config, profile.base_seed + r)
               for r in range(profile.replicates)]
    results = run_sweep(configs, warmup=True, workers=profile.workers,
                        label=label)
    xs: list[float] = []
    points: list[PointStats] = []
    for level in WARMUP_LEVELS:
        times = [r.warmup_times[level] for r in results
                 if r.warmup_times is not None and level in r.warmup_times]
        if not times:
            continue
        xs.append(level * 100.0)
        points.append(PointStats(
            mean=statistics.fmean(times),
            stddev=(statistics.stdev(times) if len(times) > 1 else 0.0),
            replicates=len(times),
            drop_rate=statistics.fmean(r.drop_rate for r in results),
        ))
    return FigureSeries(label=label, x=xs, points=points)


def figure_4(profile: Profile, think_time_ratio: int) -> FigureResult:
    """Figures 4(a)/4(b): client cache warm-up time, IPP PullBW = 50%.

    ``think_time_ratio = 25`` is the lightly loaded case (4a), ``250`` the
    heavily loaded one (4b).
    """
    series = [
        _warmup_series(
            "Push",
            _base(Algorithm.PURE_PUSH,
                  client__think_time_ratio=think_time_ratio),
            profile),
    ]
    for steady in (0.0, 0.95):
        tag = f"{steady:.0%}"
        for algorithm, label in ((Algorithm.PURE_PULL, f"Pull {tag}"),
                                 (Algorithm.IPP, f"IPP {tag}")):
            config = _base(algorithm,
                           client__think_time_ratio=think_time_ratio,
                           client__steady_state_perc=steady,
                           server__pull_bw=0.50)
            series.append(_warmup_series(label, config, profile))
    paper_panel = {25: "4a", 250: "4b"}
    return FigureResult(
        figure_id=paper_panel.get(think_time_ratio,
                                  f"4 (TTR={think_time_ratio})"),
        title=f"Client cache warm-up time, IPP PullBW=50%, "
              f"ThinkTimeRatio={think_time_ratio}",
        x_label="Cache Warm Up %",
        y_label="Time (Broadcast Units)",
        series=series,
        manifest=sweep_manifest(profile),
    )


def figure_5(profile: Profile, variant: str,
             ttrs=PAPER_TTRS) -> FigureResult:
    """Figures 5(a)/5(b): Noise sensitivity, IPP PullBW = 50%.

    ``variant='pull'`` compares Pure-Pull against Pure-Push (5a);
    ``variant='ipp'`` compares IPP against Pure-Push (5b).
    """
    if variant not in ("pull", "ipp"):
        raise ValueError("variant must be 'pull' or 'ipp'")
    algorithm = Algorithm.PURE_PULL if variant == "pull" else Algorithm.IPP
    label_stem = "Pull" if variant == "pull" else "IPP"
    series = []
    for noise in (0.0, 0.15, 0.35):
        series.append(_flat_push_series(
            f"Push Noise {noise:.0%}",
            _base(Algorithm.PURE_PUSH, client__noise=noise),
            ttrs, profile))
    for noise in (0.0, 0.15, 0.35):
        configs = [
            _base(algorithm,
                  client__think_time_ratio=ttr,
                  client__noise=noise,
                  server__pull_bw=0.50)
            for ttr in ttrs
        ]
        series.append(sweep_series(f"{label_stem} Noise {noise:.0%}",
                                   configs, ttrs, profile))
    return FigureResult(
        figure_id="5a" if variant == "pull" else "5b",
        title=f"Noise sensitivity: {label_stem} vs Pure-Push "
              f"(IPP PullBW=50%)",
        x_label="Think Time Ratio",
        y_label="Response Time (Broadcast Units)",
        series=series,
        manifest=sweep_manifest(profile),
    )
