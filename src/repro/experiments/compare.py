"""Noise-aware cross-run regression differ for saved figure JSONs.

Two runs of the same figure under different code versions should produce
statistically indistinguishable series; the paper's conclusions are
curve *shapes*, so silent series drift is the reproduction's real
regression risk.  This module diffs two ``results/figure_*.json`` files
(any schema version) in three layers:

1. **Structure** — series are aligned by label and points by x value.
   Missing/extra series, x values present on one side only, and a
   mismatched figure id are *structural* findings: the comparison is
   not meaningful point-for-point and the harness exits 2.
2. **Statistics** — per aligned point, a two-sided Welch's t-test over
   the recorded (mean, stddev, replicates) flags mean drift beyond
   replicate noise at significance ``alpha``.  Points without usable
   noise estimates (v1 archives with no stddev, single replicates,
   zero variance on both sides) fall back to a combined
   absolute/relative tolerance:  ``|a - b| <= tolerance * max(1, |a|,
   |b|)``.  Drop rates and quantile marks (p50/p90/p99) carry no
   recorded spread, so they always use the tolerance rule; quantiles
   absent on either side are skipped, not flagged.
3. **Provenance** — the two manifests are diffed key-by-key
   (:func:`repro.obs.manifest.diff_manifests`); run timestamps and
   wall times are ignored.  Manifest deltas are reported, never fatal:
   comparing two *code versions* is the whole point.

Exit-code contract (shared with ``repro-broadcast compare``):
0 = no drift, 1 = statistical drift, 2 = structural mismatch or a file
that fails to load.

The t-distribution survival function is evaluated with the regularized
incomplete beta function (Lentz's continued fraction), so the harness
needs nothing beyond the standard library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.experiments.base import (
    FigureResult,
    FigureSeries,
    PointStats,
    load_figure,
)
from repro.obs.manifest import diff_manifests

__all__ = [
    "DEFAULT_ALPHA",
    "DEFAULT_TOLERANCE",
    "OK",
    "DRIFT",
    "STRUCTURAL",
    "PointDrift",
    "SeriesComparison",
    "FigureComparison",
    "welch_t",
    "student_t_sf",
    "compare_figures",
    "compare_files",
]

#: Default two-sided significance for the per-point Welch's t-test.
DEFAULT_ALPHA = 0.01
#: Default combined absolute/relative tolerance for the fallback rule.
DEFAULT_TOLERANCE = 1e-6

#: Verdict labels, in increasing severity (also the exit-code order).
OK = "OK"
DRIFT = "DRIFT"
STRUCTURAL = "STRUCTURAL"


# --------------------------------------------------------------------------
# Student's t survival function (no scipy: regularized incomplete beta).

def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta function (Lentz)."""
    tiny = 1e-30
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 200):
        m2 = 2 * m
        numerator = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        numerator = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-12:
            break
    return h


def _betainc(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
                + a * math.log(x) + b * math.log1p(-x))
    front = math.exp(ln_front)
    # Use the continued fraction on the side where it converges fast.
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def student_t_sf(t: float, df: float) -> float:
    """One-sided survival ``P(T >= t)`` of Student's t with ``df`` dof."""
    if df <= 0:
        raise ValueError(f"degrees of freedom must be positive, got {df}")
    if math.isnan(t):
        return math.nan
    if math.isinf(t):
        return 0.0 if t > 0 else 1.0
    x = df / (df + t * t)
    tail = 0.5 * _betainc(df / 2.0, 0.5, x)
    return tail if t >= 0 else 1.0 - tail


def welch_t(mean_a: float, std_a: float, n_a: int,
            mean_b: float, std_b: float, n_b: int,
            ) -> Optional[tuple[float, float]]:
    """Welch's unequal-variance t statistic and Satterthwaite dof.

    Returns ``None`` when the test is not applicable: fewer than two
    replicates on either side, or zero variance on both (the archives
    then carry no noise estimate and the tolerance rule applies).
    """
    if n_a < 2 or n_b < 2:
        return None
    var_a = (std_a * std_a) / n_a
    var_b = (std_b * std_b) / n_b
    se2 = var_a + var_b
    if se2 <= 0.0:
        return None
    t = (mean_a - mean_b) / math.sqrt(se2)
    denominator = 0.0
    if var_a > 0.0:
        denominator += var_a * var_a / (n_a - 1)
    if var_b > 0.0:
        denominator += var_b * var_b / (n_b - 1)
    if denominator <= 0.0:
        # var**2 underflowed to zero (subnormal stddevs): no usable dof.
        return None
    df = se2 * se2 / denominator
    return t, df


# --------------------------------------------------------------------------
# Comparison results.

@dataclass(frozen=True)
class PointDrift:
    """One flagged (series, x, metric) deviation."""

    series: str
    x: float
    metric: str
    left: float
    right: float
    #: Two-sided Welch p-value (None on the tolerance path).
    p_value: Optional[float]
    #: ``"welch"`` or ``"tolerance"``.
    method: str

    @property
    def delta(self) -> float:
        return self.right - self.left

    def to_dict(self) -> dict[str, Any]:
        return {
            "series": self.series, "x": self.x, "metric": self.metric,
            "left": self.left, "right": self.right, "delta": self.delta,
            "p_value": self.p_value, "method": self.method,
        }


@dataclass
class SeriesComparison:
    """Outcome for one label-aligned series pair."""

    label: str
    #: Structural findings (x-grid mismatches); non-empty => STRUCTURAL.
    issues: list[str]
    drifts: list[PointDrift]
    #: Aligned points actually compared.
    points_compared: int
    #: Informational skips (e.g. quantiles absent on one side).
    skipped: list[str]

    @property
    def verdict(self) -> str:
        if self.issues:
            return STRUCTURAL
        return DRIFT if self.drifts else OK

    def to_dict(self) -> dict[str, Any]:
        return {
            "label": self.label, "verdict": self.verdict,
            "points_compared": self.points_compared,
            "issues": list(self.issues),
            "skipped": list(self.skipped),
            "drifts": [d.to_dict() for d in self.drifts],
        }


@dataclass
class FigureComparison:
    """Full outcome of comparing two figure files."""

    left: str
    right: str
    alpha: float
    tolerance: float
    #: Figure-level structural findings (missing series, id mismatch).
    issues: list[str]
    #: Provenance deltas (dotted key -> (left value, right value)).
    manifest_diff: dict[str, tuple[Any, Any]]
    series: list[SeriesComparison]

    @property
    def verdict(self) -> str:
        verdicts = {s.verdict for s in self.series}
        if self.issues or STRUCTURAL in verdicts:
            return STRUCTURAL
        return DRIFT if DRIFT in verdicts else OK

    @property
    def exit_code(self) -> int:
        """The CLI contract: 0 = match, 1 = drift, 2 = structural."""
        return {OK: 0, DRIFT: 1, STRUCTURAL: 2}[self.verdict]

    @property
    def drifts(self) -> list[PointDrift]:
        return [d for s in self.series for d in s.drifts]

    def to_dict(self) -> dict[str, Any]:
        return {
            "left": self.left, "right": self.right,
            "verdict": self.verdict, "exit_code": self.exit_code,
            "alpha": self.alpha, "tolerance": self.tolerance,
            "issues": list(self.issues),
            "manifest_diff": {key: list(values) for key, values
                              in self.manifest_diff.items()},
            "series": [s.to_dict() for s in self.series],
        }


# --------------------------------------------------------------------------
# The differ.

def _within_tolerance(a: float, b: float, tolerance: float) -> bool:
    """Combined absolute/relative closeness (NaN == NaN for archives)."""
    if math.isnan(a) or math.isnan(b):
        return math.isnan(a) and math.isnan(b)
    return abs(a - b) <= tolerance * max(1.0, abs(a), abs(b))


def _compare_mean(label: str, x: float, a: PointStats, b: PointStats,
                  alpha: float, tolerance: float) -> Optional[PointDrift]:
    """Welch's t-test on the point means, tolerance fallback."""
    test = welch_t(a.mean, a.stddev, a.replicates,
                   b.mean, b.stddev, b.replicates)
    if test is not None:
        t, df = test
        p_value = 2.0 * student_t_sf(abs(t), df)
        if p_value < alpha:
            return PointDrift(series=label, x=x, metric="mean",
                              left=a.mean, right=b.mean,
                              p_value=p_value, method="welch")
        return None
    if not _within_tolerance(a.mean, b.mean, tolerance):
        return PointDrift(series=label, x=x, metric="mean",
                          left=a.mean, right=b.mean,
                          p_value=None, method="tolerance")
    return None


def _compare_series(sa: FigureSeries, sb: FigureSeries, alpha: float,
                    tolerance: float) -> SeriesComparison:
    """Align one series pair by x value and compare every shared point."""
    issues: list[str] = []
    skipped: list[str] = []
    right_by_x = dict(zip(sb.x, sb.points))
    left_xs = set(sa.x)
    only_left = [x for x in sa.x if x not in right_by_x]
    only_right = [x for x in sb.x if x not in left_xs]
    if only_left:
        issues.append("x values only in left: "
                      + ", ".join(f"{x:g}" for x in only_left))
    if only_right:
        issues.append("x values only in right: "
                      + ", ".join(f"{x:g}" for x in only_right))

    drifts: list[PointDrift] = []
    compared = 0
    quantiles_skipped = False
    for x, pa in zip(sa.x, sa.points):
        pb = right_by_x.get(x)
        if pb is None:
            continue
        compared += 1
        drift = _compare_mean(sa.label, x, pa, pb, alpha, tolerance)
        if drift is not None:
            drifts.append(drift)
        if not _within_tolerance(pa.drop_rate, pb.drop_rate, tolerance):
            drifts.append(PointDrift(series=sa.label, x=x,
                                     metric="drop_rate",
                                     left=pa.drop_rate, right=pb.drop_rate,
                                     p_value=None, method="tolerance"))
        for name in ("p50", "p90", "p99"):
            qa, qb = getattr(pa, name), getattr(pb, name)
            if qa is None or qb is None:
                quantiles_skipped = quantiles_skipped or (qa is not qb)
                continue
            if not _within_tolerance(qa, qb, tolerance):
                drifts.append(PointDrift(series=sa.label, x=x, metric=name,
                                         left=qa, right=qb,
                                         p_value=None, method="tolerance"))
    if quantiles_skipped:
        skipped.append("quantiles present on one side only (pre-v2 "
                       "archive?) — not compared")
    return SeriesComparison(label=sa.label, issues=issues, drifts=drifts,
                            points_compared=compared, skipped=skipped)


def compare_figures(a: FigureResult, b: FigureResult, *,
                    alpha: float = DEFAULT_ALPHA,
                    tolerance: float = DEFAULT_TOLERANCE,
                    series: Optional[Sequence[str]] = None,
                    left: str = "left", right: str = "right",
                    ) -> FigureComparison:
    """Diff two loaded figures; see the module docstring for the model.

    Args:
        a, b: the figures to compare (``a`` is the reference side).
        alpha: two-sided significance for the Welch's t-test on means.
        tolerance: combined absolute/relative tolerance for points
            without noise estimates, drop rates, and quantiles.
        series: restrict the comparison to these labels (a label missing
            from either figure is a structural finding).
        left, right: display names for the two sides (file paths).
    """
    if alpha <= 0 or alpha >= 1:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    issues: list[str] = []
    if a.figure_id != b.figure_id:
        issues.append(f"figure id mismatch: {a.figure_id!r} vs "
                      f"{b.figure_id!r}")

    labels_a = [s.label for s in a.series]
    labels_b = [s.label for s in b.series]
    if series is not None:
        requested = list(series)
        for label in requested:
            for name, labels in ((left, labels_a), (right, labels_b)):
                if label not in labels:
                    issues.append(f"requested series {label!r} missing "
                                  f"from {name}")
        shared = [label for label in requested
                  if label in labels_a and label in labels_b]
    else:
        shared = [label for label in labels_a if label in labels_b]
        for label in labels_a:
            if label not in labels_b:
                issues.append(f"series {label!r} missing from {right}")
        for label in labels_b:
            if label not in labels_a:
                issues.append(f"series {label!r} missing from {left}")

    compared = [
        _compare_series(a.series_by_label(label), b.series_by_label(label),
                        alpha, tolerance)
        for label in shared
    ]
    return FigureComparison(
        left=left, right=right, alpha=alpha, tolerance=tolerance,
        issues=issues,
        manifest_diff=diff_manifests(a.manifest, b.manifest),
        series=compared,
    )


def compare_files(path_a, path_b, *, alpha: float = DEFAULT_ALPHA,
                  tolerance: float = DEFAULT_TOLERANCE,
                  series: Optional[Sequence[str]] = None,
                  ) -> FigureComparison:
    """Load and compare two figure JSON files.

    Load failures (missing file, bad JSON, truncated series) raise
    ``OSError``/``ValueError`` with the path prepended; the CLI maps
    them to exit code 2.
    """
    def load(path) -> FigureResult:
        try:
            return load_figure(path)
        except ValueError as exc:
            raise ValueError(f"{path}: {exc}") from exc

    figure_a, figure_b = load(path_a), load(path_b)
    return compare_figures(figure_a, figure_b, alpha=alpha,
                           tolerance=tolerance, series=series,
                           left=str(path_a), right=str(path_b))
