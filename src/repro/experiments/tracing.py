"""Trace capture for sweeps: engine runs into pluggable trace formats.

Figure sweeps can attach a trace to their representative points
(``repro-broadcast figures --trace DIR``), and the ``trace`` subcommand
captures a single configured run.  Both paths meet here: one helper per
record table that builds the right sink for the requested format
("jsonl" or "columnar", or "auto" to pick by the output path's suffix),
runs the chosen engine with the tracer attached, and closes the sink
even when the run raises.

Paper-scale sweeps should opt into ``columnar``: the resulting ``.npy``
memory-maps back in milliseconds and feeds the vectorized analytics in
:mod:`repro.obs.columnar`, where a million-record JSONL readback takes
tens of seconds.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.core.config import SystemConfig
from repro.obs.columnar import ColumnarSink
from repro.obs.requests import RequestTracer
from repro.obs.trace import JsonlSink, SlotTracer, TraceSink

__all__ = [
    "TRACE_FORMATS",
    "open_trace_sink",
    "trace_path_for",
    "trace_representative",
    "write_request_trace",
    "write_slot_trace",
]

#: Selectable on-disk trace formats ("auto" resolves by path suffix).
TRACE_FORMATS: tuple[str, ...] = ("auto", "jsonl", "columnar")


def _resolve_format(path: Path, fmt: str) -> str:
    if fmt not in TRACE_FORMATS:
        raise ValueError(
            f"unknown trace format {fmt!r} (expected one of {TRACE_FORMATS})")
    if fmt == "auto":
        return "columnar" if path.suffix == ".npy" else "jsonl"
    return fmt


def trace_path_for(directory: Path, stem: str, fmt: str) -> Path:
    """The conventional trace filename for ``stem`` in ``fmt``."""
    suffix = ".npy" if fmt == "columnar" else ".jsonl"
    return Path(directory) / f"{stem}{suffix}"


def open_trace_sink(path: Union[str, Path], fmt: str = "auto",
                    table: str = "slot") -> TraceSink:
    """A writing sink for ``path``: JSONL or columnar by ``fmt``.

    Creates parent directories.  ``table`` ("slot" / "request") pins the
    columnar record table so even an empty run persists a typed file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if _resolve_format(path, fmt) == "columnar":
        return ColumnarSink(path, table=table)
    return JsonlSink(path)


def _engine_class(engine: str):
    if engine == "reference":
        from repro.core.simulation import ReferenceEngine
        return ReferenceEngine
    from repro.core.fast import FastEngine
    return FastEngine


def write_slot_trace(config: SystemConfig, path: Union[str, Path],
                     engine: str = "fast", fmt: str = "auto") -> int:
    """Run ``config`` with a slot tracer; returns the record count."""
    with open_trace_sink(path, fmt, table="slot") as sink:
        tracer = SlotTracer(sink)
        _engine_class(engine)(config, tracer=tracer).run()
        return sink.emitted


def write_request_trace(config: SystemConfig, path: Union[str, Path],
                        engine: str = "fast", fmt: str = "auto",
                        sampling=None) -> RequestTracer:
    """Run ``config`` with a request tracer writing to ``path``.

    ``sampling`` is an optional
    :class:`~repro.obs.sampling.SamplingPolicy`; sampled records carry
    inverse-probability weights in the returned tracer's aggregates.
    The tracer is closed — not just the sink — before returning, so a
    deferring (reservoir) policy has flushed its records into the file.

    Returns the tracer (its sink already closed), so callers can render
    the in-memory breakdown and quantiles without re-reading the trace.
    """
    sink = open_trace_sink(path, fmt, table="request")
    tracer = RequestTracer(sink, sampling=sampling)
    try:
        _engine_class(engine)(config, request_tracer=tracer).run()
    finally:
        tracer.close()
    return tracer


def trace_representative(fig_id: str, profile, out_dir: Union[str, Path],
                         fmt: str = "jsonl", engine: str = "fast"
                         ) -> tuple[Path, int]:
    """Slot-trace a figure's representative sweep point into ``out_dir``.

    Returns ``(path, emitted)``; the filename is ``trace_<fig_id>`` with
    the format's suffix, so JSONL and columnar captures can coexist.
    """
    from repro.experiments.points import representative_config

    resolved = "jsonl" if fmt == "auto" else fmt
    config = profile.apply(representative_config(fig_id), profile.base_seed)
    path = trace_path_for(Path(out_dir), f"trace_{fig_id}", resolved)
    emitted = write_slot_trace(config, path, engine=engine, fmt=resolved)
    return path, emitted
