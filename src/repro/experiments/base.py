"""Sweep infrastructure shared by every experiment.

A figure is a set of *series*; a series is a curve of (x, y) points; each
point aggregates one or more seeded simulation runs.  Runs are independent,
so sweeps optionally fan out over a process pool — every input is a plain
dataclass and every output a :class:`~repro.core.metrics.RunResult`, both
picklable by construction.
"""

from __future__ import annotations

import math
import os
import statistics
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Iterator,
    Mapping,
    Optional,
    Protocol,
    Sequence,
)

from repro.core.config import SystemConfig
from repro.core.fast import FastEngine
from repro.core.metrics import RunResult

__all__ = [
    "Profile",
    "QUICK",
    "FULL",
    "PointStats",
    "FigureSeries",
    "FigureResult",
    "FIGURE_SCHEMA_VERSION",
    "SweepProgress",
    "figure_from_dict",
    "load_figure",
    "run_replicated",
    "run_sweep",
    "sweep_progress",
    "sweep_series",
    "sweep_series_multi",
    "PAPER_TTRS",
]

#: Version of the ``results/figure_*.json`` layout.  Version 2 added
#: ``schema_version`` itself, the provenance ``manifest``, and per-series
#: ``stddev`` / ``replicates`` / quantile arrays; version-1 files (no
#: ``schema_version`` key) are still loadable via :func:`figure_from_dict`.
FIGURE_SCHEMA_VERSION = 2

#: Table 3's ThinkTimeRatio grid.
PAPER_TTRS: tuple[int, ...] = (10, 25, 50, 100, 250)


@dataclass(frozen=True)
class Profile:
    """Run-scale knobs applied uniformly across a figure's sweeps."""

    #: MC accesses between cache-full and measurement.
    settle_accesses: int
    #: MC accesses measured.
    measure_accesses: int
    #: Independent seeded replicates averaged per point.
    replicates: int
    #: Process-pool width (None = sequential).
    workers: Optional[int] = None
    #: Base seed; replicate ``r`` of a point uses ``base_seed + r``.
    base_seed: int = 42
    #: Cap for warm-up runs (broadcast units).
    max_slots: int = 50_000_000

    def apply(self, config: SystemConfig, seed: int) -> SystemConfig:
        """Stamp run-scale settings and a seed onto ``config``."""
        return config.with_(
            run__settle_accesses=self.settle_accesses,
            run__measure_accesses=self.measure_accesses,
            run__seed=seed,
            run__max_slots=self.max_slots,
        )


#: Fast shape-check profile (used by the benchmark suite).
QUICK = Profile(settle_accesses=500, measure_accesses=800, replicates=1)
#: Paper-scale profile (used by ``repro-broadcast figures --full``).
#: Paper-scale sweeps are embarrassingly parallel, so the default is the
#: full process pool; pass ``workers=1`` (or ``--workers 1``) to force
#: sequential runs.
FULL = Profile(settle_accesses=4000, measure_accesses=5000, replicates=3,
               workers=os.cpu_count())


@dataclass(frozen=True)
class PointStats:
    """Aggregate of one sweep point's replicates."""

    mean: float
    stddev: float
    replicates: int
    #: Mean server drop rate across replicates.
    drop_rate: float
    #: Mean response-time quantiles across replicates (None when the
    #: underlying runs carried no quantiles, e.g. warm-up sweeps or
    #: points loaded from pre-quantile archives).
    p50: Optional[float] = None
    p90: Optional[float] = None
    p99: Optional[float] = None
    #: The raw per-replicate results (kept for diagnostics).
    results: tuple[RunResult, ...] = field(repr=False, default=())

    @classmethod
    def of(cls, results: Sequence[RunResult],
           metric: Callable[[RunResult], float]) -> "PointStats":
        """Aggregate ``results`` under ``metric``.

        Raises :class:`ValueError` on an empty sequence (a sweep point
        with zero replicates has no statistics to aggregate).
        """
        if not results:
            raise ValueError(
                "PointStats.of: empty results sequence (a point needs at "
                "least one replicate)")
        values = [metric(r) for r in results]

        def stdev(marks: Sequence[float]) -> float:
            if len(marks) < 2:
                return 0.0
            # statistics.stdev on NaN inputs raises (an AttributeError,
            # even) on some Python versions; propagate NaN instead so the
            # sweep-level guard can name the failing field.
            if any(math.isnan(mark) for mark in marks):
                return math.nan
            return statistics.stdev(marks)

        def mean_quantile(name: str) -> Optional[float]:
            marks = [getattr(r.response_miss, name) for r in results]
            if any(mark is None for mark in marks):
                return None
            return statistics.fmean(marks)

        return cls(
            mean=statistics.fmean(values),
            stddev=stdev(values),
            replicates=len(values),
            drop_rate=statistics.fmean(r.drop_rate for r in results),
            p50=mean_quantile("p50"),
            p90=mean_quantile("p90"),
            p99=mean_quantile("p99"),
            results=tuple(results),
        )


@dataclass
class FigureSeries:
    """One labelled curve of a figure."""

    label: str
    x: list[float]
    points: list[PointStats]

    @property
    def y(self) -> list[float]:
        """The curve's y values (point means)."""
        return [p.mean for p in self.points]


@dataclass
class FigureResult:
    """A regenerated figure: the same series the paper plots."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: list[FigureSeries]
    notes: list[str] = field(default_factory=list)
    #: Sweep provenance (:func:`repro.obs.manifest.sweep_manifest`).
    manifest: Optional[dict[str, Any]] = None

    def series_by_label(self, label: str) -> FigureSeries:
        """Find a series by its label (raises KeyError if absent)."""
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(label)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form of the figure (schema version 2).

        Quantile arrays are emitted only when the series carries them, so
        warm-up figures keep the exact historic key set plus the version
        and provenance fields.
        """
        def series_dict(s: FigureSeries) -> dict[str, Any]:
            data: dict[str, Any] = {
                "label": s.label,
                "x": list(s.x),
                "y": list(s.y),
                "drop_rate": [p.drop_rate for p in s.points],
                "stddev": [p.stddev for p in s.points],
                "replicates": [p.replicates for p in s.points],
            }
            for name in ("p50", "p90", "p99"):
                marks = [getattr(p, name) for p in s.points]
                if any(mark is not None for mark in marks):
                    data[name] = marks
            return data

        return {
            "schema_version": FIGURE_SCHEMA_VERSION,
            "figure": self.figure_id,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "notes": list(self.notes),
            "manifest": self.manifest,
            "series": [series_dict(s) for s in self.series],
        }


def _required(data: dict[str, Any], key: str, context: str) -> Any:
    """Fetch a mandatory figure-JSON key or raise a naming ValueError."""
    try:
        return data[key]
    except KeyError:
        raise ValueError(f"{context}: missing field {key!r}") from None


def figure_from_dict(data: dict[str, Any]) -> FigureResult:
    """Rebuild a :class:`FigureResult` from its :meth:`~FigureResult.to_dict`.

    Accepts both schema version 2 and the version-1 layout (no
    ``schema_version`` key, no stddev/replicates/quantiles/manifest) that
    pre-provenance archives under ``results/`` use.  Loaded points carry
    no raw :class:`~repro.core.metrics.RunResult` objects.

    Truncated or malformed input never surfaces as a bare
    ``IndexError``/``KeyError``: every series array is checked against
    the length of its ``x`` grid and a :class:`ValueError` naming the
    series and the offending field is raised instead (the ``compare``
    harness relies on this to classify bad files as load errors).
    """
    version = data.get("schema_version", 1)
    if not isinstance(version, int) or not 1 <= version <= FIGURE_SCHEMA_VERSION:
        raise ValueError(f"unsupported figure schema_version {version!r}")
    series = []
    for position, s in enumerate(_required(data, "series", "figure JSON")):
        label = s.get("label")
        if not isinstance(label, str):
            raise ValueError(f"figure series #{position}: missing or "
                             f"non-string field 'label'")
        context = f"figure series {label!r}"
        x = _required(s, "x", context)
        count = len(x)
        y = _required(s, "y", context)
        drop_rate = _required(s, "drop_rate", context)
        stddev = s.get("stddev", [0.0] * count)
        replicates = s.get("replicates", [0] * count)
        quantiles = {name: s.get(name, [None] * count)
                     for name in ("p50", "p90", "p99")}
        arrays: dict[str, Sequence[Any]] = {
            "y": y, "drop_rate": drop_rate, "stddev": stddev,
            "replicates": replicates, **quantiles,
        }
        for name, values in arrays.items():
            if len(values) != count:
                raise ValueError(
                    f"{context}: field {name!r} has {len(values)} values, "
                    f"expected {count} (the length of 'x')")
        points = [
            PointStats(mean=y[i], stddev=stddev[i],
                       replicates=replicates[i],
                       drop_rate=drop_rate[i],
                       p50=quantiles["p50"][i], p90=quantiles["p90"][i],
                       p99=quantiles["p99"][i])
            for i in range(count)
        ]
        series.append(FigureSeries(label=label, x=list(x), points=points))
    return FigureResult(
        figure_id=_required(data, "figure", "figure JSON"),
        title=_required(data, "title", "figure JSON"),
        x_label=_required(data, "x_label", "figure JSON"),
        y_label=_required(data, "y_label", "figure JSON"),
        series=series,
        notes=list(data.get("notes", [])),
        manifest=data.get("manifest"),
    )


def load_figure(path) -> FigureResult:
    """Load a saved ``results/figure_*.json`` (any schema version)."""
    import json
    from pathlib import Path

    return figure_from_dict(json.loads(Path(path).read_text()))


def _execute(task: tuple[SystemConfig, bool]) -> RunResult:
    """Process-pool entry point: run one configured simulation."""
    config, warmup = task
    engine = FastEngine(config)
    return engine.run_warmup() if warmup else engine.run()


class SweepProgress(Protocol):
    """What :func:`run_sweep` tells a live-telemetry observer.

    Implemented by :class:`repro.obs.dashboard.SweepMonitor`; any object
    with these two methods works (duck typing — the Protocol is
    documentation, not a registration requirement).
    """

    def sweep_started(self, total: int, label: Optional[str]) -> None:
        """A sweep of ``total`` replicate runs is beginning."""

    def replicate_done(self, index: int, result: RunResult) -> None:
        """The replicate at position ``index`` completed (completion
        order under a process pool, not submission order)."""


#: The ambient progress observer installed by :func:`sweep_progress`.
_AMBIENT_PROGRESS: Optional[SweepProgress] = None


@contextmanager
def sweep_progress(monitor: SweepProgress) -> Iterator[SweepProgress]:
    """Route every :func:`run_sweep` in this context through ``monitor``.

    The figure functions take only a :class:`Profile`, so a CLI that
    wants live sweep telemetry has no parameter to thread an observer
    through; this context manager installs one ambiently instead::

        with sweep_progress(SweepMonitor(dashboard=Dashboard())):
            figure = ALL_FIGURES["3a"](profile)

    Nested contexts shadow (and then restore) the outer observer.  The
    ambient observer lives in the parent process only — worker processes
    never see it, so it needs no pickling.
    """
    global _AMBIENT_PROGRESS
    previous = _AMBIENT_PROGRESS
    _AMBIENT_PROGRESS = monitor
    try:
        yield monitor
    finally:
        _AMBIENT_PROGRESS = previous


def run_sweep(configs: Sequence[SystemConfig], warmup: bool = False,
              workers: Optional[int] = None,
              progress: Optional[SweepProgress] = None,
              label: Optional[str] = None) -> list[RunResult]:
    """Run many independent simulations, optionally on a process pool.

    Results come back in ``configs`` order regardless of completion
    order.  Pooled runs are submitted individually and consumed as they
    complete (``submit`` + ``as_completed`` rather than a buffered
    ``pool.map``), which buys three things: a failing replicate raises
    as soon as *it* finishes instead of after everything queued before
    it; Ctrl-C cancels the queued tail immediately instead of stalling
    behind the full map; and per-replicate completions can stream into a
    ``progress`` observer (or the ambient one installed by
    :func:`sweep_progress`) for live telemetry.
    """
    tasks = [(config, warmup) for config in configs]
    monitor = progress if progress is not None else _AMBIENT_PROGRESS
    if monitor is not None:
        monitor.sweep_started(len(tasks), label)
    if workers is None or workers <= 1 or len(tasks) <= 1:
        results = []
        for index, task in enumerate(tasks):
            result = _execute(task)
            if monitor is not None:
                monitor.replicate_done(index, result)
            results.append(result)
        return results
    ordered: list[Optional[RunResult]] = [None] * len(tasks)
    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        futures = {pool.submit(_execute, task): index
                   for index, task in enumerate(tasks)}
        for future in as_completed(futures):
            index = futures[future]
            result = future.result()
            ordered[index] = result
            if monitor is not None:
                monitor.replicate_done(index, result)
    except BaseException:
        # Includes KeyboardInterrupt and a replicate's own exception:
        # drop everything still queued so the pool exits promptly.
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=True)
    return ordered  # type: ignore[return-value]  # every slot is filled


def _checked(stats: PointStats, config: SystemConfig) -> PointStats:
    """Reject sweep points whose aggregates went NaN.

    A NaN mean, stddev, *or* drop rate silently poisons every downstream
    consumer (saved figures, charts, the compare harness), so all three
    are inspected and the failing fields are named.
    """
    bad = [name for name in ("mean", "stddev", "drop_rate")
           if math.isnan(getattr(stats, name))]
    if bad:
        raise RuntimeError(
            f"sweep point produced NaN {'/'.join(bad)}: {config}")
    return stats


def run_replicated(config: SystemConfig, profile: Profile,
                   warmup: bool = False,
                   metric: Callable[[RunResult], float] | None = None,
                   label: Optional[str] = None) -> PointStats:
    """Run one sweep point's replicates and aggregate them."""
    if metric is None:
        metric = lambda r: r.response_miss.mean  # noqa: E731
    configs = [profile.apply(config, profile.base_seed + r)
               for r in range(profile.replicates)]
    results = run_sweep(configs, warmup=warmup, workers=profile.workers,
                        label=label)
    return _checked(PointStats.of(results, metric), config)


def sweep_series(label: str, configs: Sequence[SystemConfig],
                 xs: Sequence[float], profile: Profile,
                 warmup: bool = False,
                 metric: Callable[[RunResult], float] | None = None,
                 ) -> FigureSeries:
    """Run a whole curve: one replicated point per (x, config) pair."""
    if len(configs) != len(xs):
        raise ValueError("configs and xs must align")
    if metric is None:
        metric = lambda r: r.response_miss.mean  # noqa: E731
    # Flatten (point, replicate) so a process pool can chew the whole curve.
    flat: list[SystemConfig] = []
    for config in configs:
        flat.extend(profile.apply(config, profile.base_seed + r)
                    for r in range(profile.replicates))
    results = run_sweep(flat, warmup=warmup, workers=profile.workers,
                        label=label)
    points = []
    for i, config in enumerate(configs):
        chunk = results[i * profile.replicates:(i + 1) * profile.replicates]
        points.append(_checked(PointStats.of(chunk, metric), config))
    return FigureSeries(label=label, x=list(xs), points=points)


def sweep_series_multi(metrics: Mapping[str, Callable[[RunResult], float]],
                       configs: Sequence[SystemConfig],
                       xs: Sequence[float], profile: Profile,
                       label: Optional[str] = None,
                       ) -> list[FigureSeries]:
    """Run one curve's simulations once, aggregate many metrics from them.

    The fleet sweeps plot five statistics of the *same* runs (mean /
    min / max / p99 user wait plus Jain's index); re-simulating per
    metric would multiply the cost five-fold for identical results.
    Returns one :class:`FigureSeries` per ``metrics`` entry, in mapping
    order, all sharing the underlying replicate runs.
    """
    if len(configs) != len(xs):
        raise ValueError("configs and xs must align")
    if not metrics:
        raise ValueError("metrics must not be empty")
    flat: list[SystemConfig] = []
    for config in configs:
        flat.extend(profile.apply(config, profile.base_seed + r)
                    for r in range(profile.replicates))
    results = run_sweep(flat, workers=profile.workers, label=label)
    series = []
    for series_label, metric in metrics.items():
        points = []
        for i, config in enumerate(configs):
            chunk = results[i * profile.replicates:
                            (i + 1) * profile.replicates]
            points.append(_checked(PointStats.of(chunk, metric), config))
        series.append(FigureSeries(label=series_label, x=list(xs),
                                   points=points))
    return series
