"""Sweep infrastructure shared by every experiment.

A figure is a set of *series*; a series is a curve of (x, y) points; each
point aggregates one or more seeded simulation runs.  Runs are independent,
so sweeps optionally fan out over a process pool — every input is a plain
dataclass and every output a :class:`~repro.core.metrics.RunResult`, both
picklable by construction.
"""

from __future__ import annotations

import math
import os
import statistics
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.core.config import SystemConfig
from repro.core.fast import FastEngine
from repro.core.metrics import RunResult

__all__ = [
    "Profile",
    "QUICK",
    "FULL",
    "PointStats",
    "FigureSeries",
    "FigureResult",
    "run_replicated",
    "run_sweep",
    "PAPER_TTRS",
]

#: Table 3's ThinkTimeRatio grid.
PAPER_TTRS: tuple[int, ...] = (10, 25, 50, 100, 250)


@dataclass(frozen=True)
class Profile:
    """Run-scale knobs applied uniformly across a figure's sweeps."""

    #: MC accesses between cache-full and measurement.
    settle_accesses: int
    #: MC accesses measured.
    measure_accesses: int
    #: Independent seeded replicates averaged per point.
    replicates: int
    #: Process-pool width (None = sequential).
    workers: Optional[int] = None
    #: Base seed; replicate ``r`` of a point uses ``base_seed + r``.
    base_seed: int = 42
    #: Cap for warm-up runs (broadcast units).
    max_slots: int = 50_000_000

    def apply(self, config: SystemConfig, seed: int) -> SystemConfig:
        """Stamp run-scale settings and a seed onto ``config``."""
        return config.with_(
            run__settle_accesses=self.settle_accesses,
            run__measure_accesses=self.measure_accesses,
            run__seed=seed,
            run__max_slots=self.max_slots,
        )


#: Fast shape-check profile (used by the benchmark suite).
QUICK = Profile(settle_accesses=500, measure_accesses=800, replicates=1)
#: Paper-scale profile (used by ``repro-broadcast figures --full``).
#: Paper-scale sweeps are embarrassingly parallel, so the default is the
#: full process pool; pass ``workers=1`` (or ``--workers 1``) to force
#: sequential runs.
FULL = Profile(settle_accesses=4000, measure_accesses=5000, replicates=3,
               workers=os.cpu_count())


@dataclass(frozen=True)
class PointStats:
    """Aggregate of one sweep point's replicates."""

    mean: float
    stddev: float
    replicates: int
    #: Mean server drop rate across replicates.
    drop_rate: float
    #: The raw per-replicate results (kept for diagnostics).
    results: tuple[RunResult, ...] = field(repr=False, default=())

    @classmethod
    def of(cls, results: Sequence[RunResult],
           metric: Callable[[RunResult], float]) -> "PointStats":
        """Aggregate ``results`` under ``metric``."""
        values = [metric(r) for r in results]
        return cls(
            mean=statistics.fmean(values),
            stddev=(statistics.stdev(values) if len(values) > 1 else 0.0),
            replicates=len(values),
            drop_rate=statistics.fmean(r.drop_rate for r in results),
            results=tuple(results),
        )


@dataclass
class FigureSeries:
    """One labelled curve of a figure."""

    label: str
    x: list[float]
    points: list[PointStats]

    @property
    def y(self) -> list[float]:
        """The curve's y values (point means)."""
        return [p.mean for p in self.points]


@dataclass
class FigureResult:
    """A regenerated figure: the same series the paper plots."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: list[FigureSeries]
    notes: list[str] = field(default_factory=list)

    def series_by_label(self, label: str) -> FigureSeries:
        """Find a series by its label (raises KeyError if absent)."""
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(label)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form of the figure."""
        return {
            "figure": self.figure_id,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "notes": list(self.notes),
            "series": [
                {
                    "label": s.label,
                    "x": list(s.x),
                    "y": list(s.y),
                    "drop_rate": [p.drop_rate for p in s.points],
                }
                for s in self.series
            ],
        }


def _execute(task: tuple[SystemConfig, bool]) -> RunResult:
    """Process-pool entry point: run one configured simulation."""
    config, warmup = task
    engine = FastEngine(config)
    return engine.run_warmup() if warmup else engine.run()


def run_sweep(configs: Sequence[SystemConfig], warmup: bool = False,
              workers: Optional[int] = None) -> list[RunResult]:
    """Run many independent simulations, optionally on a process pool."""
    tasks = [(config, warmup) for config in configs]
    if workers is None or workers <= 1 or len(tasks) <= 1:
        return [_execute(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_execute, tasks))


def run_replicated(config: SystemConfig, profile: Profile,
                   warmup: bool = False,
                   metric: Callable[[RunResult], float] | None = None,
                   ) -> PointStats:
    """Run one sweep point's replicates and aggregate them."""
    if metric is None:
        metric = lambda r: r.response_miss.mean  # noqa: E731
    configs = [profile.apply(config, profile.base_seed + r)
               for r in range(profile.replicates)]
    results = run_sweep(configs, warmup=warmup, workers=profile.workers)
    stats = PointStats.of(results, metric)
    if any(math.isnan(v) for v in (stats.mean,)):
        raise RuntimeError(f"sweep point produced NaN: {config}")
    return stats


def sweep_series(label: str, configs: Sequence[SystemConfig],
                 xs: Sequence[float], profile: Profile,
                 warmup: bool = False,
                 metric: Callable[[RunResult], float] | None = None,
                 ) -> FigureSeries:
    """Run a whole curve: one replicated point per (x, config) pair."""
    if len(configs) != len(xs):
        raise ValueError("configs and xs must align")
    if metric is None:
        metric = lambda r: r.response_miss.mean  # noqa: E731
    # Flatten (point, replicate) so a process pool can chew the whole curve.
    flat: list[SystemConfig] = []
    for config in configs:
        flat.extend(profile.apply(config, profile.base_seed + r)
                    for r in range(profile.replicates))
    results = run_sweep(flat, warmup=warmup, workers=profile.workers)
    points = []
    for i in range(len(configs)):
        chunk = results[i * profile.replicates:(i + 1) * profile.replicates]
        points.append(PointStats.of(chunk, metric))
    return FigureSeries(label=label, x=list(xs), points=points)
