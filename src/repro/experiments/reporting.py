"""Render regenerated figures as tables and terminal-friendly charts."""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Sequence

from repro.experiments.base import FigureResult, PointStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.experiments.compare import FigureComparison

__all__ = [
    "format_table",
    "render_compare",
    "render_figure",
    "render_ascii_chart",
    "render_manifest",
    "render_quantiles",
]


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Plain monospace table with right-aligned numeric columns."""
    def cell(value: object) -> str:
        if isinstance(value, float):
            if math.isnan(value):
                return "-"
            return f"{value:,.1f}" if abs(value) >= 10 else f"{value:.2f}"
        return str(value)

    grid = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in grid))
        if grid else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(str(h).rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in grid:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def render_figure(figure: FigureResult, show_drop_rates: bool = False) -> str:
    """Render a figure as '<x> | <series...>' rows, paper-style.

    Series are aligned by x *value*, not by position: the union of all
    series' x grids forms the rows, and a series with no point at some x
    shows a dash.  (Positional indexing printed means against the wrong
    x whenever grids differed.)  A note flags mismatched grids.
    """
    by_x = [dict(zip(s.x, s.points)) for s in figure.series]
    xs = sorted({x for s in figure.series for x in s.x})
    headers = [figure.x_label] + [s.label for s in figure.series]

    def table(metric: Callable[[PointStats], float]) -> str:
        rows = []
        for x in xs:
            row: list[object] = [x]
            for lookup in by_x:
                point = lookup.get(x)
                row.append(metric(point) if point is not None else math.nan)
            rows.append(row)
        return format_table(headers, rows)

    parts = [
        f"Figure {figure.figure_id}: {figure.title}",
        f"(y = {figure.y_label})",
        table(lambda p: p.mean),
    ]
    if show_drop_rates:
        parts.append("Server drop rates (%):")
        parts.append(table(lambda p: p.drop_rate * 100.0))
    if len({tuple(s.x) for s in figure.series}) > 1:
        parts.append("note: series x grids differ; '-' marks series with "
                     "no point at that x")
    if figure.notes:
        parts.extend(f"note: {note}" for note in figure.notes)
    return "\n".join(parts)


def render_quantiles(figure: FigureResult) -> str:
    """Per-series response-time quantile table (p50/p90/p99 at each x).

    Returns an explanatory one-liner when the figure carries no quantiles
    (warm-up figures, or archives saved before schema version 2).
    """
    rows = []
    for series in figure.series:
        for i, x in enumerate(series.x):
            point = series.points[i]
            if point.p50 is None and point.p90 is None and point.p99 is None:
                continue
            rows.append((series.label, x, point.mean,
                         _mark(point.p50), _mark(point.p90), _mark(point.p99)))
    if not rows:
        return "(no quantile data — saved before schema version 2?)"
    headers = ("series", figure.x_label, "mean", "p50", "p90", "p99")
    return format_table(headers, rows)


def _mark(value) -> float:
    return math.nan if value is None else value


def render_manifest(manifest) -> str:
    """Summarize a run/sweep provenance manifest as 'key: value' lines.

    The (large) embedded config dict is reduced to its top-level keys;
    ``repro-broadcast report`` prints this under the figure tables.
    """
    if not manifest:
        return "(no manifest — saved before schema version 2?)"
    lines = []
    order = ("created_utc", "engine", "seed", "package", "package_version",
             "python_version", "numpy_version", "elapsed_seconds",
             "manifest_version")
    for key in order:
        if key in manifest:
            value = manifest[key]
            if key == "elapsed_seconds":
                value = f"{value:.2f}s"
            lines.append(f"  {key}: {value}")
    config = manifest.get("config")
    if isinstance(config, dict):
        summary = ", ".join(f"{k}={v}" for k, v in config.items()
                            if not isinstance(v, (dict, list)))
        nested = [k for k, v in config.items() if isinstance(v, (dict, list))]
        if summary:
            lines.append(f"  config: {summary}")
        if nested:
            lines.append(f"  config sections: {', '.join(nested)}")
    return "provenance:\n" + "\n".join(lines)


def render_compare(comparison: "FigureComparison") -> str:
    """Render a cross-run comparison as a drift report.

    Layout: header with the verdict and knobs, structural findings and
    manifest deltas first (they explain *why* point diffs may be
    meaningless), then a per-series verdict table and, when there is
    drift, a per-point drift table.
    """
    lines = [
        f"compare: {comparison.left}  vs  {comparison.right}",
        f"verdict: {comparison.verdict}  (alpha={comparison.alpha:g}, "
        f"tolerance={comparison.tolerance:g})",
    ]
    if comparison.issues:
        lines.append("structural:")
        lines.extend(f"  {issue}" for issue in comparison.issues)
    if comparison.manifest_diff:
        lines.append("manifest deltas (informational):")
        lines.extend(
            f"  {key}: {left!r} -> {right!r}"
            for key, (left, right) in comparison.manifest_diff.items())
    if comparison.series:
        rows = []
        for series in comparison.series:
            notes = "; ".join(series.issues + series.skipped)
            rows.append((series.label, series.verdict,
                         series.points_compared, len(series.drifts), notes))
        lines.append("")
        lines.append(format_table(
            ("series", "verdict", "points", "drifting", "notes"), rows))
    drifts = comparison.drifts
    if drifts:
        rows = []
        for drift in drifts:
            evidence = (f"p={drift.p_value:.2e}"
                        if drift.p_value is not None else "tolerance")
            rows.append((drift.series, drift.x, drift.metric, drift.left,
                         drift.right, drift.delta, evidence))
        lines.append("")
        lines.append(format_table(
            ("series", "x", "metric", "left", "right", "delta", "evidence"),
            rows))
    return "\n".join(lines)


#: Plot glyphs cycled across series.
_MARKS = "*o+x#@%&"


def render_ascii_chart(figure: FigureResult, width: int = 68,
                       height: int = 18) -> str:
    """Plot a figure as an ASCII scatter chart (series share the canvas).

    X positions use the index of each x value (the paper's load axes are
    log-ish grids, so index spacing reads better than linear scaling);
    the y axis is linear from 0 to the maximum plotted value.
    """
    if width < 16 or height < 4:
        raise ValueError("chart must be at least 16x4")
    xs = figure.series[0].x if figure.series else []
    if not xs:
        return "(empty figure)"
    # NaN points are skipped when plotting, so they must not poison the
    # axis scale either (max() with a NaN argument is NaN).
    finite = [value for series in figure.series for value in series.y
              if not math.isnan(value)]
    y_max = max(finite, default=0.0)
    if y_max <= 0:
        y_max = 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, series in enumerate(figure.series):
        mark = _MARKS[index % len(_MARKS)]
        for position, value in enumerate(series.y):
            if math.isnan(value):
                continue
            col = (position * (width - 1) // max(len(series.y) - 1, 1))
            row = height - 1 - round(value / y_max * (height - 1))
            grid[row][col] = mark
    lines = [f"Figure {figure.figure_id} — {figure.y_label} "
             f"(y max {y_max:,.0f})"]
    for row_index, row in enumerate(grid):
        label = f"{y_max * (height - 1 - row_index) / (height - 1):>9,.0f} |"
        lines.append(label + "".join(row))
    axis = " " * 10 + "+" + "-" * (width - 1)
    lines.append(axis)
    tick_line = [" "] * (width + 11)
    for position, x in enumerate(xs):
        col = 11 + position * (width - 1) // max(len(xs) - 1, 1)
        text = f"{x:g}"
        # Slide the final label left so it is never truncated.
        col = min(col, len(tick_line) - len(text))
        for offset, char in enumerate(text):
            tick_line[col + offset] = char
    lines.append("".join(tick_line).rstrip())
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]}={series.label}"
        for i, series in enumerate(figure.series))
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
